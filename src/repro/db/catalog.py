"""A persistent catalog: named heaps and B-trees that survive restarts.

The catalog is one record (slot 0 of a designated page) holding the
object directory and the page allocator's high-water mark plus free
list.  Because it lives behind the transactional record API, creating
and dropping objects is atomic with the rest of the transaction and
recovers like everything else: a crash mid-``create_btree`` rolls the
allocation back; after restart, :meth:`Catalog.open` finds exactly the
committed objects.

Works in record-logging mode (the page/record APIs the objects
themselves need).
"""

from __future__ import annotations

import json

from ..errors import ReproError
from .btree import BTree
from .heap import HeapFile


class CatalogError(ReproError):
    """Catalog-level failures (duplicate names, space exhaustion...)."""


class Catalog:
    """The object directory of one database.

    Args:
        db: a record-logging database.
        catalog_page: the page holding the directory record (default 0;
            object pages are allocated after it).
    """

    def __init__(self, db, catalog_page: int = 0) -> None:
        if not db.config.record_logging:
            raise CatalogError("the catalog needs record-logging mode")
        self.db = db
        self.catalog_page = catalog_page

    # -- directory record ---------------------------------------------------------

    @classmethod
    def create(cls, db, txn_id: int, catalog_page: int = 0) -> "Catalog":
        """Initialize an empty catalog (run once, then commit)."""
        catalog = cls(db, catalog_page)
        doc = {"objects": {}, "next_free": catalog_page + 1, "free": []}
        slot = db.insert_record(txn_id, catalog_page,
                                catalog._serialize(doc))
        if slot != 0:
            raise CatalogError(f"page {catalog_page} was not empty")
        return catalog

    @staticmethod
    def _serialize(doc: dict) -> bytes:
        return json.dumps(doc, separators=(",", ":")).encode("ascii")

    def _load(self, txn_id: int) -> dict:
        try:
            blob = self.db.read_record(txn_id, self.catalog_page, 0)
        except KeyError:
            raise CatalogError("no catalog on this database; call "
                               "Catalog.create first") from None
        return json.loads(blob.decode("ascii"))

    def _store(self, txn_id: int, doc: dict) -> None:
        self.db.update_record(txn_id, self.catalog_page, 0,
                              self._serialize(doc))

    # -- allocation ----------------------------------------------------------------

    def _allocate(self, doc: dict, pages: int) -> list:
        allocated = []
        while doc["free"] and len(allocated) < pages:
            allocated.append(doc["free"].pop())
        while len(allocated) < pages:
            page = doc["next_free"]
            if page >= self.db.num_data_pages:
                raise CatalogError("database out of pages")
            doc["next_free"] = page + 1
            allocated.append(page)
        return sorted(allocated)

    # -- objects --------------------------------------------------------------------

    def list_objects(self, txn_id: int) -> dict:
        """``{name: kind}`` of every catalogued object."""
        doc = self._load(txn_id)
        return {name: meta["kind"] for name, meta in doc["objects"].items()}

    def _register(self, txn_id: int, name: str, kind: str,
                  pages: int) -> list:
        doc = self._load(txn_id)
        if name in doc["objects"]:
            raise CatalogError(f"object {name!r} already exists")
        allocated = self._allocate(doc, pages)
        doc["objects"][name] = {"kind": kind, "pages": allocated}
        self._store(txn_id, doc)
        return allocated

    def create_heap(self, txn_id: int, name: str, pages: int) -> HeapFile:
        """Allocate and register a heap file."""
        allocated = self._register(txn_id, name, "heap", pages)
        return HeapFile(self.db, allocated)

    def create_btree(self, txn_id: int, name: str, pages: int) -> BTree:
        """Allocate, register, and initialize a B-tree."""
        allocated = self._register(txn_id, name, "btree", pages)
        return BTree(self.db, allocated, txn_id=txn_id, create=True)

    def open(self, txn_id: int, name: str):
        """Open a catalogued object by name (a HeapFile or BTree)."""
        doc = self._load(txn_id)
        meta = doc["objects"].get(name)
        if meta is None:
            raise CatalogError(f"no object named {name!r}")
        if meta["kind"] == "heap":
            return HeapFile(self.db, meta["pages"])
        return BTree(self.db, meta["pages"])

    def drop(self, txn_id: int, name: str) -> None:
        """Remove an object; its pages return to the free list.

        The pages' contents are left for later reuse (record pages parse
        as empty only when zeroed, so reallocation clears them —
        see :meth:`_allocate` users like :meth:`create_btree`, which
        insert fresh records over whatever is there after a
        :class:`~repro.db.heap.HeapFile` user clears its records).
        """
        doc = self._load(txn_id)
        meta = doc["objects"].pop(name, None)
        if meta is None:
            raise CatalogError(f"no object named {name!r}")
        # clear the pages now, within the transaction, so reuse starts blank
        from .slotted_page import SlottedPage
        for page in meta["pages"]:
            sp = SlottedPage.from_bytes(self.db.buffer.get_page(page))
            for slot in sp.slots():
                self.db.delete_record(txn_id, page, slot)
        doc["free"].extend(meta["pages"])
        self._store(txn_id, doc)
