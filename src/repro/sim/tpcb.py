"""A TPC-B / DebitCredit workload over the record API.

The OLTP profile this literature was written against (Gray's
parity-striping paper benchmarks exactly this shape): each transaction
updates one account, its teller, its branch, and appends a history
record.  Balances obey a conservation law — the sum of account deltas
equals the teller and branch sums — which doubles as a whole-system
correctness check across aborts, crashes, and media failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..db.heap import HeapFile
from ..errors import ModelError


@dataclass(frozen=True)
class TPCBConfig:
    """Scaled-down TPC-B shape.

    Attributes:
        branches: number of branches.
        tellers_per_branch / accounts_per_branch: fan-out per branch.
        abort_probability: fraction of transactions rolled back by the
            client after doing their updates.
    """

    branches: int = 2
    tellers_per_branch: int = 3
    accounts_per_branch: int = 15
    abort_probability: float = 0.05

    def __post_init__(self) -> None:
        if min(self.branches, self.tellers_per_branch,
               self.accounts_per_branch) < 1:
            raise ModelError("TPC-B fan-outs must be positive")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise ModelError("abort_probability must be in [0, 1]")


def _encode(balance: int) -> bytes:
    return b"%+013d" % balance


def _decode(record: bytes) -> int:
    return int(record)


class TPCB:
    """The workload: setup, per-transaction profile, conservation check."""

    def __init__(self, db, config: TPCBConfig | None = None,
                 seed: int = 0) -> None:
        if not db.config.record_logging:
            raise ModelError("TPC-B needs a record-logging configuration")
        self.db = db
        self.config = config if config is not None else TPCBConfig()
        self.rng = random.Random(seed)
        self._accounts: list = []
        self._tellers: list = []
        self._branches: list = []
        self._history: HeapFile | None = None
        self.committed = 0
        self.aborted = 0

    # -- setup -----------------------------------------------------------------

    def setup(self) -> None:
        """Format pages and load the branch/teller/account records."""
        cfg = self.config
        total_pages = self.db.num_data_pages
        quarter = max(1, total_pages // 4)
        account_pages = range(0, 2 * quarter)
        teller_pages = range(2 * quarter, 3 * quarter)
        history_pages = range(3 * quarter, total_pages)
        self.db.format_record_pages(range(total_pages))
        txn = self.db.begin()
        accounts = HeapFile(self.db, account_pages)
        tellers = HeapFile(self.db, teller_pages)
        for branch in range(cfg.branches):
            self._branches.append(tellers.insert(txn, _encode(0)))
            for _ in range(cfg.tellers_per_branch):
                self._tellers.append((branch, tellers.insert(txn, _encode(0))))
            for _ in range(cfg.accounts_per_branch):
                self._accounts.append(
                    (branch, accounts.insert(txn, _encode(0))))
        self._history = HeapFile(self.db, history_pages)
        self.db.commit(txn)

    # -- one transaction ------------------------------------------------------------

    def transaction(self) -> bool:
        """One debit/credit; returns True if it committed."""
        if self._history is None:
            raise ModelError("call setup() first")
        branch, account_rid = self.rng.choice(self._accounts)
        teller_rid = self.rng.choice(
            [rid for b, rid in self._tellers if b == branch])
        branch_rid = self._branches[branch]
        delta = self.rng.randrange(-999, 1000)

        txn = self.db.begin()
        for rid in (account_rid, teller_rid, branch_rid):
            page, slot = rid
            balance = _decode(self.db.read_record(txn, page, slot))
            self.db.update_record(txn, page, slot, _encode(balance + delta))
        self._history.insert(
            txn, b"h:%d:%+d" % (branch, delta))
        if self.rng.random() < self.config.abort_probability:
            self.db.abort(txn)
            self.aborted += 1
            return False
        self.db.commit(txn)
        self.committed += 1
        return True

    def run(self, transactions: int, crash_every: int | None = None) -> dict:
        """Run ``transactions``; optionally crash+recover periodically.

        Returns counters including the page transfers consumed.
        """
        start = self.db.stats.total
        crashes = 0
        for index in range(transactions):
            self.transaction()
            if crash_every and (index + 1) % crash_every == 0:
                self.db.crash()
                self.db.recover()
                crashes += 1
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "crashes": crashes,
            "page_transfers": self.db.stats.total - start,
        }

    # -- the conservation law ------------------------------------------------------------

    def totals(self) -> dict:
        """Sum of balances per entity class plus the history sum."""
        txn = self.db.begin()
        accounts = sum(_decode(self.db.read_record(txn, p, s))
                       for _, (p, s) in self._accounts)
        tellers = sum(_decode(self.db.read_record(txn, p, s))
                      for _, (p, s) in self._tellers)
        branches = sum(_decode(self.db.read_record(txn, p, s))
                       for (p, s) in self._branches)
        history = sum(int(record.rsplit(b":", 1)[1])
                      for _, record in self._history.scan(txn))
        self.db.commit(txn)
        return {"accounts": accounts, "tellers": tellers,
                "branches": branches, "history": history}

    def conserved(self) -> bool:
        """True when every view of the money agrees (TPC-B's invariant)."""
        totals = self.totals()
        return (totals["accounts"] == totals["tellers"]
                == totals["branches"] == totals["history"])
