"""Recovery policies: the paper's three configuration axes as strategies.

Each of the eight configurations of Section 5 is the composition of
three independent choices, and each choice is one strategy object here:

* :class:`LoggingPolicy` — **page vs record** logging: what undo/redo
  records carry, how a steal's undo information is made durable, what
  commit appends, and how an abort rolls the transaction back.
* :class:`CommitDiscipline` — **FORCE+TOC vs ¬FORCE+ACC**: how the
  log(s) are arranged, what commit flushes, whether restart needs a
  REDO pass, and what log trimming may discard.
* :class:`StealProtection` — **RDA vs classical WAL**: how a stolen
  uncommitted page is protected (parity twins vs durable before-image),
  plus the matching restart phase (parity undo vs write-hole resync)
  and media recovery.

A composed :class:`RecoveryPolicy` is what :class:`~repro.db.database.
Database` and :class:`~repro.db.recovery.RecoveryManager` consult —
they contain no ``if config.force`` / ``if config.rda`` branching of
their own.  The strategies are stateless singletons (all state lives on
the database), so one policy instance is safely shared by every shard
of a :class:`~repro.db.sharded.ShardedDatabase`.
"""

from __future__ import annotations

from ..core import ACCCheckpointer, RDAManager
from ..errors import RecoveryError
from ..wal import (CheckpointRecord, PageAfterImage, PageBeforeImage,
                   RecordAfterEntry, RecordBeforeEntry)
from .slotted_page import SlottedPage


class BatchWriteItem:
    """One page of a commit-window write-back run (batched hot path).

    ``kind`` is ``"steal"`` (unlogged first steal or re-steal by
    ``txn``) or ``"committed"`` (clean-group committed write-back);
    ``old`` is the buffered before-image or None.
    """

    __slots__ = ("kind", "page", "group", "payload", "old", "txn")

    def __init__(self, kind, page, group, payload, old, txn):
        self.kind = kind
        self.page = page
        self.group = group
        self.payload = payload
        self.old = old
        self.txn = txn


def apply_record_image(page_bytes: bytes, slot: int, image: bytes) -> bytes:
    """Set ``slot`` of a slotted page to ``image`` (empty = delete)."""
    sp = SlottedPage.from_bytes(page_bytes)
    if image == b"":
        try:
            sp.delete(slot)
        except KeyError:
            pass                      # undoing an insert that never landed
    else:
        sp.place(slot, image)
    return sp.to_bytes()


# ==================== axis 1: logging granularity ====================


class PageLogging:
    """Page-granularity logging: before/after images of whole pages."""

    name = "page"
    record_granularity = False

    def append_steal_undo(self, db, txn_id: int, page: int) -> bool:
        """Log the before-image covering one modifier of a stolen page
        (once per (txn, page)); returns True if anything was appended."""
        key = (txn_id, page)
        if key in db._undo_logged:
            return False
        image = db._before_images.get(key)
        if image is None:
            return False
        db.undo_log.append(PageBeforeImage(txn_id=txn_id, page_id=page,
                                           image=image))
        db._undo_logged.add(key)
        db.counters.before_images_logged += 1
        return True

    def append_commit_images(self, db, txn) -> None:
        """Page-mode REDO: append each written page's after-image."""
        txn_id = txn.txn_id
        db.redo_log.append_batch([
            PageAfterImage(txn_id=txn_id, page_id=page,
                           image=db._after_image(txn_id, page))
            for page in sorted(txn.pages_written)])

    def rollback(self, db, txn) -> None:
        """Abort: parity undo, then restore logged steals from
        before-images, then discard the transaction's buffered frames."""
        txn_id = txn.txn_id
        restored = db.policy.protection.parity_undo_for_abort(db, txn_id)

        logged_pages = sorted(page for (t, page) in db._logged_stolen
                              if t == txn_id and page not in restored)
        if logged_pages:
            chain = db.undo_log.records_of(txn_id)
            db.undo_log.charge_read(chain)
            images = {r.page_id: r.image for r in chain
                      if isinstance(r, PageBeforeImage)}
            for page in logged_pages:
                if page not in images:
                    raise RecoveryError(
                        f"no before-image for stolen page {page} of "
                        f"transaction {txn_id}")
                db._write_committed(page, images[page],
                                    old_data=db._last_stolen.get((txn_id, page)))

        for page in sorted(txn.pages_written):
            if page not in db.buffer:
                continue
            keep_residue = page in db._residue
            before = db._before_images.get((txn_id, page))
            db.buffer.invalidate(page)
            if keep_residue and before is not None:
                # the frame held committed-but-unflushed data under the
                # transaction's changes; disk lacks it, so rebuild the
                # frame from the captured pre-transaction image
                db.buffer.put_page(page, before, None)
                db._residue.add(page)


class RecordLogging:
    """Record-granularity logging: per-slot before/after entries."""

    name = "record"
    record_granularity = True

    def append_steal_undo(self, db, txn_id: int, page: int) -> bool:
        """Flush this modifier's deferred record before-entries for the
        stolen page; returns True if anything was appended."""
        pending = db._pending_undo.get(txn_id, [])
        keep, flush = [], []
        for entry in pending:
            (flush if entry.page_id == page else keep).append(entry)
        if not flush:
            return False
        for entry in flush:
            db.undo_log.append(entry)
            db.counters.before_images_logged += 1
        db._pending_undo[txn_id] = keep
        return True

    def append_commit_images(self, db, txn) -> None:
        """Record-mode REDO entries were appended at modification time."""

    def rollback(self, db, txn) -> None:
        """Abort: parity undo, then re-apply record before-entries
        (logged + still-pending) backward, flushing corrected pages."""
        txn_id = txn.txn_id
        restored = db.policy.protection.parity_undo_for_abort(db, txn_id)
        for page in restored:
            if page in db.buffer:
                # single-modifier invariant: only this transaction's
                # changes were buffered for an unlogged stolen page
                db.buffer.invalidate(page)

        chain = db.undo_log.records_of(txn_id)
        db.undo_log.charge_read(chain)
        logged = [r for r in reversed(chain)
                  if isinstance(r, (RecordBeforeEntry, PageBeforeImage))]
        pending = list(db._pending_undo.get(txn_id, ()))
        ordered = logged + pending      # forward order; pending is newest

        touched = {}
        for entry in reversed(ordered):
            page = entry.page_id
            if isinstance(entry, PageBeforeImage):
                touched[page] = entry.image
                continue
            payload = touched.get(page)
            if payload is None:
                payload = db.buffer.get_page(page)
            touched[page] = apply_record_image(payload, entry.slot, entry.image)

        # The abort record that follows asserts "undo is durable", so the
        # corrected pages must reach disk now even under ¬FORCE —
        # otherwise a crash after the abort would resurrect the aborted
        # values (aborted transactions are excluded from restart undo).
        for page in sorted(touched):
            # another transaction's unlogged steal may be outstanding on
            # this page (record locking shares pages); the committed
            # write below would silently invalidate its parity-undo
            # baseline, so promote that steal to logged undo first
            db.policy.protection.maybe_promote(db, page, txn_id)
            db.buffer.invalidate(page)
            db.buffer.put_page(page, touched[page], None)
            db.buffer.flush_page(page)


# ==================== axis 2: commit discipline ====================


class ForceToc:
    """FORCE + TOC: commit flushes the transaction's pages; no
    checkpoints, no restart REDO."""

    name = "force-toc"
    forces_at_commit = True

    def build_logs(self, db, log_factory) -> tuple:
        """Separate undo and redo logs, no checkpointer."""
        return log_factory(db, "undo"), log_factory(db, "redo"), None

    def flush_at_commit(self, db, txn_id: int) -> None:
        db.buffer.flush_pages_of(txn_id)

    def note_commit_residue(self, db, txn) -> None:
        """FORCE leaves nothing dirty behind a commit."""

    def restart_redo(self, db, winners, cache, page_base, fault) -> int:
        """TOC: committed work is on disk already; nothing to redo."""
        return 0

    def trim_log(self, db, candidates: list, archive_floor) -> int:
        # FORCE/TOC: the undo log only needs active transactions'
        # records.  Dropping a finished transaction's BOT is always safe
        # (it simply stops being a loser *candidate*).
        dropped = db.undo_log.truncate_before(min(candidates))
        # The redo log is cross-referenced by restart analysis: a BOT
        # surviving in the undo log whose commit record was trimmed here
        # would be misclassified as a loser.  Only a *quiescent* trim
        # (no active transactions, hence no surviving BOTs) avoids the
        # coupling; it is bounded by the archive roll-forward floor.
        if archive_floor is not None and not db.txns.active_transactions():
            dropped += db.redo_log.truncate_before(archive_floor + 1)
        return dropped


class NoForceAcc:
    """¬FORCE + ACC: commit forces only the log; ACC checkpoints bound
    the restart REDO pass."""

    name = "noforce-acc"
    forces_at_commit = False

    def build_logs(self, db, log_factory) -> tuple:
        """One combined log plus the ACC checkpointer."""
        combined = log_factory(db, "log")
        checkpointer = ACCCheckpointer(
            db.buffer.flush_all_dirty, db._append_and_force_redo,
            lambda: [t.txn_id for t in db.txns.active_transactions()],
            interval=db.config.checkpoint_interval,
            tracer=db.tracer, stats=db.stats, metrics=db.metrics,
            on_checkpoint=db._on_checkpoint)
        return combined, combined, checkpointer

    def flush_at_commit(self, db, txn_id: int) -> None:
        """¬FORCE: the transaction's pages stay dirty in the buffer."""

    def note_commit_residue(self, db, txn) -> None:
        for page in txn.pages_written:
            if db.buffer.is_dirty(page):
                db._residue.add(page)

    def restart_redo(self, db, winners, cache, page_base, fault) -> int:
        """Replay committed after-images since the last ACC checkpoint."""
        redone = 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="redo") as span:
            start = 0
            for record in db.redo_log.scan(CheckpointRecord):
                start = record.lsn
            replay = [r for r in db.redo_log.records() if r.lsn > start]
            db.redo_log.charge_read(replay)
            for record in replay:
                if record.txn_id not in winners:
                    continue
                if isinstance(record, PageAfterImage):
                    cache[record.page_id] = record.image
                    redone += 1
                elif isinstance(record, RecordAfterEntry):
                    cache[record.page_id] = apply_record_image(
                        page_base(record.page_id), record.slot,
                        record.image)
                    redone += 1
            span.set(applied=redone)
        return redone

    def trim_log(self, db, candidates: list, archive_floor) -> int:
        checkpoint_lsn = None
        for record in db.redo_log.scan(CheckpointRecord):
            checkpoint_lsn = record.lsn
        if checkpoint_lsn is None:
            return 0        # committed data may exist only in the log
        candidates.append(checkpoint_lsn)
        return db.undo_log.truncate_before(min(candidates))


# ==================== axis 3: steal protection ====================


class RdaProtection:
    """RDA: steals ride the parity twins whenever the Figure 3 rule
    allows; undo comes from ``P_w ⊕ P_c ⊕ D_new``."""

    name = "rda"
    uses_twins = True

    def make_rda(self, db):
        return RDAManager(db.array)

    def covers_unlogged_steal(self, db, page: int, single,
                              was_residue: bool) -> bool:
        return (single is not None and not was_residue
                and not db.rda.needs_undo_log(page, single))

    def write_stolen_unlogged(self, db, page: int, payload: bytes, single,
                              old) -> None:
        db.rda.write_uncommitted(page, payload, single, old_data=old)

    def note_forced_undo(self, db, page: int, single,
                         was_residue: bool) -> None:
        # why the twins could not cover this steal (the complement of
        # the model's 1 - p_l)
        if single is None:
            reason = "multi_modifier"
        elif was_residue:
            reason = "residue"
        else:
            reason = "dirty_group"
        if db.tracer.enabled:
            db.tracer.emit("wal.forced_undo", page=page, reason=reason)
        if db.metrics is not None:
            cache = getattr(db, "_forced_undo_children", None)
            if cache is None:
                cache = db._forced_undo_children = {}
            child = cache.get(reason)
            if child is None:
                child = cache[reason] = db.metrics.counter(
                    "rda.forced_undo").labels(reason=reason)
            child.inc()

    def write_stolen_logged(self, db, page: int, payload: bytes, modifiers,
                            single, old) -> None:
        owner = single if single is not None else next(iter(modifiers))
        db.rda.write_uncommitted(page, payload, owner, old_data=old,
                                 logged=True)

    def write_committed(self, db, page: int, payload: bytes,
                        old_data=None) -> None:
        db.rda.write_committed(page, payload, old_data=old_data)

    def stage_record_undo(self, db, txn_id: int, undo) -> None:
        """Defer the before-entry: it only reaches the log if the page
        is stolen while the group cannot absorb it."""
        db._pending_undo.setdefault(txn_id, []).append(undo)

    def maybe_promote(self, db, page: int, txn_id: int) -> None:
        """If another transaction's unlogged stolen page is about to be
        shared, materialize its before-image into the log first."""
        group = db.array.geometry.group_of(page)
        entry = db.rda.dirty_set.get(group)
        if entry is None or entry.page_id != page or entry.txn_id == txn_id:
            return

        if db.policy.logging.record_granularity:
            # Record mode: a page-level parity image must NOT reach the
            # log — undoing it would restore the whole page and trample
            # slots other transactions commit in between.  Flush the
            # owner's per-slot before-entries instead; rollback then
            # re-places exactly the owner's slots on the current page.
            def log_fn(owner, page_id, image):
                db.policy.logging.append_steal_undo(db, owner, page_id)
                db.undo_log.force()
                db._undo_logged.add((owner, page_id))
                db._logged_stolen.add((owner, page_id))
        else:
            def log_fn(owner, page_id, image):
                db.undo_log.append(PageBeforeImage(
                    txn_id=owner, page_id=page_id, image=image))
                db.undo_log.force()
                db._undo_logged.add((owner, page_id))
                db._logged_stolen.add((owner, page_id))

        db.rda.promote_to_logged(group, log_fn)
        db.counters.promotions += 1

    def commit_flips(self, db, txn_id: int):
        """Flip the transaction's dirty groups' twins (zero I/O)."""
        return db.rda.commit_txn(txn_id)

    def lose_memory(self, db) -> None:
        db.rda.lose_memory()

    def parity_undo_for_abort(self, db, txn_id: int) -> dict:
        """Rewind the transaction's unlogged stolen pages via the twins."""
        buffered = {}
        for group in db.rda.dirty_set.groups_of(txn_id):
            entry = db.rda.dirty_set.entry(group)
            known = db._last_stolen.get((txn_id, entry.page_id))
            if known is not None:
                buffered[entry.page_id] = known
        return db.rda.abort_txn(txn_id, buffered=buffered)

    def write_back_run(self, db, run: list) -> None:
        """Execute one batched run of :class:`BatchWriteItem`.

        The parity math is vectorized across the run (see
        :meth:`~repro.core.rda.RDAManager.write_batch`); the per-page
        bookkeeping below runs from the array's per-op callback, after
        that page's writes and ``twin_write`` barrier, so counters,
        history events and invariant probes fire in exactly the legacy
        order.
        """
        def on_page(i):
            item = run[i]
            if item.kind == "steal":
                txn = item.txn
                db.counters.unlogged_steals += 1
                db.txns.get(txn).note_steal(item.page)
                db._last_stolen[(txn, item.page)] = item.payload
                db._h("steal", txn=txn, page=item.page, logged=False)
                db._barrier("steal", page=item.page, txns=frozenset({txn}),
                            logged=False)
            else:
                db._residue.discard(item.page)
                db.counters.committed_writebacks += 1
            db.buffer.mark_clean(item.page)

        db.rda.write_batch(run, on_page=on_page)
        if db._m_steals_unlogged is not None:
            steals = sum(1 for item in run if item.kind == "steal")
            if steals:
                db._m_steals_unlogged.inc(steals)

    def restart_parity_phase(self, db, winners: set, losers: set,
                             fault) -> tuple:
        """Parity undo of unlogged stolen pages (must precede log
        writes); the twin array needs no write-hole resync — interrupted
        writes are resolved through the headers here."""
        parity_undone = 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="parity_undo") as span:
            for entry in db.rda.crash_scan(winners):
                losers.add(entry.txn_id)
                fault(f"parity-undo group {entry.group}")
                db.rda.undo_group(entry.group)
                parity_undone += 1
            span.set(pages=parity_undone)
        return 0, parity_undone

    def media_recover(self, db, disk_id: int, on_lost_undo: str):
        report, must_commit = db.rda.rebuild_disk(
            disk_id, on_lost_undo=on_lost_undo)
        for txn_id in must_commit:
            db.txns.get(txn_id).must_commit = True
        return report


class WalProtection:
    """Classical WAL: every steal pays for a durable before-image."""

    name = "wal"
    uses_twins = False

    def make_rda(self, db):
        return None

    def covers_unlogged_steal(self, db, page: int, single,
                              was_residue: bool) -> bool:
        return False

    def write_stolen_unlogged(self, db, page: int, payload: bytes, single,
                              old) -> None:
        raise AssertionError("WAL never steals without logging")

    def note_forced_undo(self, db, page: int, single,
                         was_residue: bool) -> None:
        """Under plain WAL a logged steal is the only kind; nothing to
        explain."""

    def write_stolen_logged(self, db, page: int, payload: bytes, modifiers,
                            single, old) -> None:
        db.array.write_page(page, payload, old_data=old)

    def write_committed(self, db, page: int, payload: bytes,
                        old_data=None) -> None:
        db.array.write_page(page, payload, old_data=old_data)

    def stage_record_undo(self, db, txn_id: int, undo) -> None:
        db.undo_log.append(undo)
        db.counters.before_images_logged += 1

    def maybe_promote(self, db, page: int, txn_id: int) -> None:
        """No unlogged steals exist, so there is nothing to promote."""

    def commit_flips(self, db, txn_id: int):
        return ()

    def lose_memory(self, db) -> None:
        """No Dirty_Set to lose."""

    def parity_undo_for_abort(self, db, txn_id: int) -> dict:
        return {}

    def restart_parity_phase(self, db, winners: set, losers: set,
                             fault) -> tuple:
        """RAID write-hole resync: a crash between a small-write's data
        and parity transfers leaves the parity stale; recovery's own
        small writes assume it is current, so recompute it first.

        Detection uses uncounted peeks (the restart scrub); the repair
        writes are counted.  Clean restarts skip the phase entirely.
        """
        stale = db.array.scrub()
        if not stale:
            return 0, 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="parity_resync") as span:
            for group in stale:
                fault(f"parity resync group {group}")
                data = [db.array.read_page(p)
                        for p in db.array.geometry.group_pages(group)]
                db.array.rewrite_parity(group, data)
            span.set(groups=len(stale))
        return len(stale), 0

    def media_recover(self, db, disk_id: int, on_lost_undo: str):
        return db.array.rebuild_disk(disk_id)


# ==================== the composed policy ====================

PAGE_LOGGING = PageLogging()
RECORD_LOGGING = RecordLogging()
FORCE_TOC = ForceToc()
NOFORCE_ACC = NoForceAcc()
RDA_PROTECTION = RdaProtection()
WAL_PROTECTION = WalProtection()


class RecoveryPolicy:
    """One of the paper's eight configurations as a strategy triple."""

    def __init__(self, logging, discipline, protection) -> None:
        self.logging = logging
        self.discipline = discipline
        self.protection = protection

    @classmethod
    def for_config(cls, config) -> "RecoveryPolicy":
        return cls(
            RECORD_LOGGING if config.record_logging else PAGE_LOGGING,
            FORCE_TOC if config.force else NOFORCE_ACC,
            RDA_PROTECTION if config.rda else WAL_PROTECTION,
        )

    @property
    def name(self) -> str:
        return (f"{self.logging.name}-{self.discipline.name}-"
                f"{self.protection.name}")

    @property
    def log_page_undo_at_first_write(self) -> bool:
        """Classical ¬FORCE WAL logs a page's before-image eagerly at
        first modification (RDA defers; FORCE can always abort from the
        buffer + logged steals)."""
        return (not self.protection.uses_twins
                and not self.discipline.forces_at_commit)

    def writeback(self, db, page: int, payload: bytes,
                  modifiers: frozenset) -> None:
        """The paper's decision point: every steal either rides the
        parity twins or pays for a durable before-image first (the WAL
        rule is enforced here)."""
        if not modifiers:
            db._residue.discard(page)
            db.counters.committed_writebacks += 1
            db._write_committed(page, payload)
            return
        single = next(iter(modifiers)) if len(modifiers) == 1 else None
        old = db._old_disk_version(single, page)
        was_residue = page in db._residue
        db._residue.discard(page)
        if self.protection.covers_unlogged_steal(db, page, single,
                                                 was_residue):
            self.protection.write_stolen_unlogged(db, page, payload, single,
                                                  old)
            db.counters.unlogged_steals += 1
            if db.metrics is not None:
                db.metrics.counter("db.steals").labels(mode="unlogged").inc()
            db.txns.get(single).note_steal(page)
            db._last_stolen[(single, page)] = payload
            db._h("steal", txn=single, page=page, logged=False)
            db._barrier("steal", page=page, txns=frozenset({single}),
                        logged=False)
            return
        # logged steal: WAL — undo information durable before the write
        self.protection.note_forced_undo(db, page, single, was_residue)
        if db.metrics is not None:
            db.metrics.counter("db.steals").labels(mode="logged").inc()
        db._ensure_undo_durable(page, modifiers)
        self.protection.write_stolen_logged(db, page, payload, modifiers,
                                            single, old)
        db.counters.logged_steals += 1
        for txn_id in modifiers:
            db.txns.get(txn_id).note_steal(page)
            db._logged_stolen.add((txn_id, page))
            db._last_stolen[(txn_id, page)] = payload
            db._h("steal", txn=txn_id, page=page, logged=True)
        db._barrier("steal", page=page, txns=frozenset(modifiers),
                    logged=True)

    def writeback_batch(self, db, entries: list) -> None:
        """Write back a commit window of dirty pages, batching what the
        Figure 3 rule allows.

        ``entries`` is ``[(page, payload, modifiers), ...]`` in the
        buffer's frame order (the legacy flush order).  Consecutive
        pages that are unlogged steals or clean-group committed writes
        into *distinct* parity groups accumulate into a run executed by
        one vectorized array call; anything else — a group collision,
        a logged steal, a dirty-group committed write, a degraded array
        — flushes the pending run and takes the per-page path.  Either
        way the disk write schedule, transfer counts and history events
        are byte-identical to calling :meth:`writeback` per page; each
        page's buffer frame is marked clean right after its write-back,
        as on the legacy path.
        """
        protection = self.protection
        buffer = db.buffer
        if (db.rda is None or not protection.uses_twins
                or db.array.any_failed):
            for page, payload, modifiers in entries:
                self.writeback(db, page, payload, modifiers)
                buffer.mark_clean(page)
            return
        geometry = db.array.geometry
        dirty_set = db.rda.dirty_set
        run = []
        run_groups = set()

        def flush_run():
            protection.write_back_run(db, run)
            run.clear()
            run_groups.clear()

        for page, payload, modifiers in entries:
            group = geometry.group_of(page)
            if group in run_groups:
                flush_run()
            if not modifiers:
                if dirty_set.get(group) is None:
                    run.append(BatchWriteItem("committed", page, group,
                                              payload, None, None))
                    run_groups.add(group)
                    continue
                # dirty-group committed write: updates both twins
            else:
                single = (next(iter(modifiers)) if len(modifiers) == 1
                          else None)
                was_residue = page in db._residue
                if protection.covers_unlogged_steal(db, page, single,
                                                    was_residue):
                    old = db._old_disk_version(single, page)
                    db._residue.discard(page)
                    run.append(BatchWriteItem("steal", page, group, payload,
                                              old, single))
                    run_groups.add(group)
                    continue
            if run:
                flush_run()
            self.writeback(db, page, payload, modifiers)
            buffer.mark_clean(page)
        if run:
            flush_run()
