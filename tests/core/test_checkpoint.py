"""Tests for the ACC checkpointer."""

from repro.core import ACCCheckpointer
from repro.wal.records import CheckpointRecord


class Harness:
    def __init__(self):
        self.flushes = 0
        self.records = []
        self.active = [3, 4]
        self.lsn = 0

    def flush(self):
        self.flushes += 1
        return [10, 11]

    def append_and_force(self, record):
        self.lsn += 1
        record.lsn = self.lsn
        self.records.append(record)
        return self.lsn

    def active_ids(self):
        return list(self.active)

    def make(self, interval=None):
        return ACCCheckpointer(self.flush, self.append_and_force,
                               self.active_ids, interval=interval)


class TestCheckpoint:
    def test_checkpoint_flushes_and_logs(self):
        h = Harness()
        cp = h.make()
        lsn = cp.checkpoint()
        assert h.flushes == 1
        assert lsn == 1
        record = h.records[0]
        assert isinstance(record, CheckpointRecord)
        assert record.active_txns == (3, 4)
        assert record.flushed_pages == (10, 11)
        assert cp.checkpoints_taken == 1
        assert cp.last_checkpoint_lsn == 1

    def test_interval_triggering(self):
        h = Harness()
        cp = h.make(interval=100)
        cp.note_work(60)
        assert cp.maybe_checkpoint() is None
        cp.note_work(50)
        assert cp.maybe_checkpoint() == 1
        # counter reset after the checkpoint
        assert cp.maybe_checkpoint() is None

    def test_disabled_interval_never_fires(self):
        h = Harness()
        cp = h.make(interval=None)
        cp.note_work(1e9)
        assert cp.maybe_checkpoint() is None

    def test_manual_checkpoint_resets_counter(self):
        h = Harness()
        cp = h.make(interval=100)
        cp.note_work(90)
        cp.checkpoint()
        cp.note_work(90)
        assert cp.maybe_checkpoint() is None
