"""Command-line interface.

    python -m repro figures [--figure 9..13]
    python -m repro simulate --preset page-force-rda --transactions 200
    python -m repro simulate --preset page-force-log --backend raid6
    python -m repro simulate --shards 4 --group-commit 8
    python -m repro simulate --trace-out run.jsonl --metrics-out run.json
    python -m repro inspect-trace run.jsonl
    python -m repro export-trace run.jsonl --out run.perfetto.json
    python -m repro drift-check run.jsonl [--tolerance 0.05]
    python -m repro check [--presets all] [--extended] [--crash-every 10]
    python -m repro reliability [--disks 200] [--mttr 24]
    python -m repro demo

``figures`` regenerates the paper's evaluation tables, ``simulate``
drives the live system (optionally recording a structured event trace
and a metrics snapshot; with ``--crash-every`` it also reports the
per-phase recovery breakdown and MTTR, and ``--drift-check`` watches
measured costs against the analytical model live), ``inspect-trace``
aggregates a recorded trace into the per-event-type cost table of the
paper's model, ``export-trace`` converts a trace to Chrome
trace-event/Perfetto JSON, ``drift-check`` replays a recorded trace
through the model-drift detector, ``check`` runs the conformance suite
(online invariants, differential oracle, serializability analysis)
across configuration presets, ``reliability`` prints the Section 1
motivation numbers, and ``demo`` walks the three recovery scenarios.
"""

from __future__ import annotations

import argparse
import json

from .db import (Database, ShardedDatabase, all_preset_names,
                 extended_preset_names, make_sharded, preset)
from .errors import ModelError
from .model import figures as figure_module
from .model.reliability import paper_motivation_table
from .obs import (BufferedJsonlSink, DriftDetector, MetricsRegistry,
                  NullSink, Tracer, aggregate_trace_file, check_events,
                  export_trace_file, format_cost_table,
                  format_recovery_profile, load_trace)
from .sim import Simulator, WorkloadSpec
from .storage import backend_names, make_page


def _build_engine(config, args, tracer=None, metrics=None):
    """One engine for the CLI: a :class:`Database`, or a K-way
    :class:`ShardedDatabase` when ``--shards`` asks for more than one
    (worker-process shards with ``--workers`` or ``REPRO_WORKERS``)."""
    if args.shards > 1:
        return make_sharded(config, shards=args.shards,
                            flush_horizon=args.group_commit,
                            tracer=tracer, metrics=metrics,
                            workers=getattr(args, "workers", None))
    return Database(config, tracer=tracer, metrics=metrics)


def _close_engine(db) -> None:
    """Reap worker processes when the engine has any (idempotent)."""
    if hasattr(db, "close"):
        db.close()


def _cmd_figures(args) -> int:
    wanted = args.figure
    for figure in figure_module.all_figures():
        number = int(figure.name.replace("figure", ""))
        if wanted is not None and number != wanted:
            continue
        print(figure.to_csv() if args.csv else figure.format_table())
        print()
    return 0


def _preset_blurb(config) -> str:
    """One-line description of a preset's recovery scheme."""
    if config.redo_only and config.rda:
        return ("RDA+REDO hybrid: twin-parity undo for losers, "
                "per-page redo chains for winners")
    if config.redo_only:
        return ("REDO-only: no undo log; write-behind gate, "
                "chain replay at restart")
    logging = ("record before-images" if config.record_logging
               else "page before-images")
    discipline = ("FORCE/TOC (force dirty pages at commit)" if config.force
                  else "¬FORCE/ACC (checkpointed write-back)")
    undo = ("twin-parity undo" if config.rda else "log undo")
    return f"{logging}, {discipline}, {undo}"


def _cmd_list_presets() -> int:
    """``--list-presets``: the preset x backend x shards matrix."""
    paper = set(all_preset_names())
    rows = []
    for name in extended_preset_names():
        config = preset(name)
        tier = "paper" if name in paper else "extended"
        backends = ("twin" if config.rda
                    else "single, raid6" if config.backend is None
                    else config.backend)
        rows.append((name, tier, backends, _preset_blurb(config)))
    width = max(len(row[0]) for row in rows)
    print(f"{'preset':<{width}}  {'tier':<8}  {'backends':<13}  description")
    for name, tier, backends, blurb in rows:
        print(f"{name:<{width}}  {tier:<8}  {backends:<13}  {blurb}")
    print(f"\n{len(rows)} presets; every cell also runs K-way sharded "
          "(--shards K, worker processes with --workers) and, under "
          "simulate, on any listed backend via --backend.")
    return 0


def _cmd_simulate(args) -> int:
    if args.list_presets:
        return _cmd_list_presets()
    overrides = dict(group_size=args.group_size, num_groups=args.num_groups,
                     buffer_capacity=args.buffer)
    if "noforce" in args.preset:
        overrides["checkpoint_interval"] = args.checkpoint_interval
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.fault_sweep:
        return _cmd_fault_sweep(args, overrides)
    if args.trace_out is not None:
        tracer = Tracer(BufferedJsonlSink(args.trace_out))
    elif args.crash_every is not None or args.drift_check:
        # recovery profiling and drift detection are tracer observers:
        # events must be *built* but need not be recorded, so an
        # unrecorded run still gets its MTTR breakdown / drift verdict
        tracer = Tracer(NullSink())
    else:
        tracer = None
    metrics = (MetricsRegistry()
               if args.metrics_out is not None or args.trace_out is not None
               or args.drift_check
               else None)
    try:
        db = _build_engine(preset(args.preset, **overrides), args,
                           tracer=tracer, metrics=metrics)
    except ModelError as error:
        print(f"simulate: {error}")
        return 2
    spec = WorkloadSpec(concurrency=args.concurrency,
                        pages_per_txn=args.pages_per_txn,
                        update_txn_fraction=args.update_fraction,
                        update_probability=args.update_probability,
                        abort_probability=args.abort_probability,
                        communality=args.communality)
    simulator = Simulator(db, spec, seed=args.seed)
    drift = None
    if args.drift_check:
        drift = DriftDetector(tolerance=args.drift_tolerance,
                              metrics=metrics, tracer=tracer).attach(tracer)
    if simulator.record_mode:
        simulator.seed_records()
    if args.profile is not None:
        import cProfile
        import pstats
        import sys as _sys
        profiler = cProfile.Profile()
        profiler.enable()
        report = simulator.run(args.transactions,
                               crash_every=args.crash_every)
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=_sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(20)
        print(f"profile       : stats -> {args.profile}")
    else:
        report = simulator.run(args.transactions,
                               crash_every=args.crash_every)
    print(f"configuration : {db.config.algorithm_name}")
    if args.shards > 1:
        stats = db.statistics()
        print(f"shards        : {args.shards} "
              f"(group commit H={args.group_commit}, "
              f"{stats['deferred_forces']} forces deferred, "
              f"{stats['batched_flushes']} batched flushes)")
    print(f"result        : {report.summary()}")
    print(f"throughput    : {report.throughput():.0f} txns per 5e6 transfers")
    if report.crashes:
        print(f"crashes       : {report.crashes} "
              f"({report.recovery_transfers} recovery transfers)")
    profile_doc = report.extra.get("recovery_profile")
    if profile_doc:
        print("recovery      : " + format_recovery_profile(profile_doc)
              .replace("\n", "\n" + " " * 2))
    if drift is not None:
        if drift.clean:
            checked = len(drift.summary()["checked"])
            print(f"drift check   : clean "
                  f"({checked} op classes within model bands)")
        else:
            print(f"drift check   : {len(drift.alarms)} alarm(s)")
            for alarm in drift.alarms:
                print(f"  {alarm.describe()}")
    if tracer is not None:
        tracer.close()
        if args.trace_out is not None:
            print(f"trace         : {tracer.events_emitted} events "
                  f"-> {args.trace_out}")
    if args.metrics_out is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(metrics.snapshot(), handle, indent=2, sort_keys=True)
        print(f"metrics       : {args.metrics_out}")
    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report        : {args.report_out}")
    bad = db.verify_parity()
    print(f"parity scrub  : {'clean' if not bad else bad}")
    _close_engine(db)
    if bad:
        return 1
    return 1 if drift is not None and not drift.clean else 0


def _cmd_fault_sweep(args, overrides) -> int:
    """Exhaustive crash-point enumeration (``simulate --fault-sweep``)."""
    from .sim import default_fault_workload, run_sweep
    from .sim.faultplan import (record_fault_setup, record_fault_workload,
                                shard_aligned_fault_workload)

    config = preset(args.preset, **overrides)
    if config.record_logging and args.shards > 1:
        print("fault-sweep: the sharded script drives write_page; "
              "record-logging presets sweep at --shards 1")
        return 2
    if getattr(args, "workers", None):
        print("fault-sweep: recovery fault hooks cannot cross the worker "
              "pipe; running the sweep in-process")
    args.workers = False
    modes = tuple(m.strip() for m in args.fault_modes.split(",") if m.strip())
    setup = None
    if args.shards > 1:
        ops = shard_aligned_fault_workload(
            args.shards, transactions=args.fault_transactions,
            group_size=config.group_size)
    elif config.record_logging:
        ops = record_fault_workload(transactions=args.fault_transactions,
                                    group_size=config.group_size)
        setup = record_fault_setup(ops)
    else:
        ops = default_fault_workload(transactions=args.fault_transactions,
                                     group_size=config.group_size)
    tracer = (Tracer(BufferedJsonlSink(args.trace_out))
              if args.trace_out is not None else None)

    def make_db():
        return _build_engine(preset(args.preset, **overrides), args)

    try:
        probe = make_db()
    except ModelError as error:
        print(f"fault-sweep: {error}")
        return 2
    needed = max(op[2] for op in ops if op[0] in ("write", "update")) + 1
    if needed > probe.num_data_pages:
        print(f"fault-sweep: workload needs {needed} pages; raise "
              f"--num-groups (have {probe.num_data_pages})")
        return 2

    report = run_sweep(make_db, ops, modes=modes, tracer=tracer, setup=setup)
    counts = report.counts
    print(f"configuration : {config.algorithm_name}")
    if config.redo_only and not any(w.kind == "data" for w in report.schedule):
        print("note          : the write-behind gate held every data write "
              "in this script; lower --buffer / --checkpoint-interval to "
              "sweep data-page crash points too")
    if args.shards > 1:
        print(f"shards        : {args.shards} "
              f"(group commit H={args.group_commit})")
    print(f"fault sweep   : {len(report.schedule)} crash points "
          f"x {len(modes)} modes = {len(report.results)} schedules")
    print(f"outcomes      : {counts['recovered']} recovered, "
          f"{counts['detected']} detected, "
          f"{counts['violation']} violations")
    recovery = report.recovery_summary()
    if recovery.get("recovered_runs"):
        mttr = recovery["mttr_ms"]
        print(f"recovery      : MTTR mean {mttr['mean']} ms / "
              f"max {mttr['max']} ms over {recovery['recovered_runs']} "
              f"recovered runs, {recovery['page_transfers']} transfers")
    if not report.clean:
        for kind, count in sorted(report.violations_by_kind().items()):
            print(f"  {kind}: {count}")
        for result in report.results:
            if result.violations:
                print(f"  crash_after={result.plan.crash_after} "
                      f"mode={result.plan.mode}: "
                      f"{result.violations[0]}")
    if tracer is not None:
        tracer.close()
        print(f"trace         : {tracer.events_emitted} events "
              f"-> {args.trace_out}")
    if args.fault_report is not None:
        with open(args.fault_report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(indent=2))
        print(f"report        : {args.fault_report}")
    return 0 if report.clean else 1


def _cmd_check(args) -> int:
    """Conformance suite across presets (``repro check``)."""
    from .check import conformance_matrix

    if args.list_presets:
        return _cmd_list_presets()
    if args.presets == "all":
        presets = None
    else:
        presets = [name.strip() for name in args.presets.split(",")
                   if name.strip()]
        unknown = [name for name in presets
                   if name not in extended_preset_names()]
        if unknown:
            print(f"check: unknown presets {unknown}; "
                  f"choose from {extended_preset_names()}")
            return 2
    runs = conformance_matrix(transactions=args.transactions,
                              seed=args.seed,
                              crash_every=args.crash_every,
                              presets=presets,
                              extended=args.extended,
                              shards=args.shards,
                              workers=args.workers)
    for run in runs:
        verdict = "clean" if run.clean else \
            f"{len(run.violations)} violations"
        ser = run.serializability
        print(f"{run.cell:>22} : {verdict:>14} | "
              f"{len(run.history)} events, {run.reads_checked} reads "
              f"checked | serializable={ser.serializable} "
              f"strict={ser.strict}")
        for violation in run.violations[:5]:
            print(f"{'':>22}   {violation.kind}: {violation.detail}")
    if args.history_out is not None:
        with open(args.history_out, "w", encoding="utf-8") as handle:
            for run in runs:
                for row in run.history.to_dicts():
                    row["preset"] = run.cell
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"history       : {args.history_out}")
    if args.report_out is not None:
        payload = {"clean": all(run.clean for run in runs),
                   "runs": [run.to_dict() for run in runs]}
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"verdict       : {args.report_out}")
    return 0 if all(run.clean for run in runs) else 1


def _cmd_stress(args) -> int:
    """Nemesis-driven continuous chaos (``repro stress``)."""
    from .stress import (PROFILES, StressOptions, default_matrix,
                         format_stress_report, matrix_to_dict,
                         run_stress_matrix)

    if args.nemesis_profile not in PROFILES:
        print(f"stress: unknown nemesis profile {args.nemesis_profile!r}; "
              f"choose from {sorted(PROFILES)}")
        return 2
    ops = args.ops
    if ops is None and args.duration is None:
        ops = 64    # CI smoke default: deterministic, ~8 ticks per cell
    common = dict(ops=ops, duration_s=args.duration,
                  batch_size=args.batch, seed=args.seed,
                  nemesis_profile=args.nemesis_profile,
                  flush_horizon=args.group_commit,
                  baseline=not args.no_baseline,
                  drift_check=args.drift_check,
                  workers=args.workers)
    try:
        if args.preset is not None:
            if args.preset not in extended_preset_names():
                print(f"stress: unknown preset {args.preset!r}; "
                      f"choose from {extended_preset_names()}")
                return 2
            cells = [StressOptions(preset=args.preset, shards=args.shards,
                                   **common)]
        else:
            # the acceptance matrix: every recovery class at K=1 plus a
            # K=2 group-commit cell (--shards applies to --preset runs)
            cells = default_matrix(**common)
    except ModelError as error:
        print(f"stress: {error}")
        return 2
    reports = run_stress_matrix(cells)
    print(format_stress_report(reports))
    payload = matrix_to_dict(reports)
    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nstress report : {args.report_out}")
    totals = payload["totals"]
    print(f"\nfaults        : {totals['faults_survived']}/"
          f"{totals['faults_injected']} survived across "
          f"{totals['distinct_fault_kinds']} kinds "
          f"({totals['faults_survived_per_hour']}/hour)")
    return 0 if payload["clean"] else 1


def _cmd_inspect_trace(args) -> int:
    try:
        rows = aggregate_trace_file(args.trace)
    except (OSError, ModelError) as error:
        print(f"inspect-trace: {error}")
        return 1
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_cost_table(rows))
    return 0


def _cmd_export_trace(args) -> int:
    out = args.out
    if out is None:
        out = f"{args.trace}.perfetto.json"
    try:
        count = export_trace_file(args.trace, out,
                                  counters=not args.no_counters)
    except (OSError, ModelError) as error:
        print(f"export-trace: {error}")
        return 1
    print(f"export-trace  : {count} events -> {out} "
          f"(open in https://ui.perfetto.dev)")
    return 0


def _cmd_drift_check(args) -> int:
    try:
        events = load_trace(args.trace)
    except (OSError, ModelError) as error:
        print(f"drift-check: {error}")
        return 1
    detector = check_events(events, tolerance=args.tolerance,
                            min_count=args.min_count)
    summary = detector.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for key, row in summary["checked"].items():
            lo, hi = row["band"]
            band = f"{lo:g}" if lo == hi else f"{lo:g}..{hi:g}"
            print(f"{key:<48} {row['count']:>7} ops, "
                  f"mean {row['mean_transfers']:>7.3f}, model {band}")
        if detector.clean:
            print(f"drift-check   : clean ({len(summary['checked'])} op "
                  f"classes within model bands)")
        else:
            print(f"drift-check   : {len(detector.alarms)} alarm(s)")
            for alarm in detector.alarms:
                print(f"  {alarm.describe()}")
    return 0 if detector.clean else 1


def _cmd_reliability(args) -> int:
    print(f"{'scheme':>20} | {'MTTDL (days)':>14} | {'overhead':>8}")
    for scheme, mttdl, overhead in paper_motivation_table(
            disks=args.disks, mttr_hours=args.mttr,
            group_size=args.group_size):
        print(f"{scheme:>20} | {mttdl / 24:14.0f} | {overhead:8.1%}")
    return 0


def _cmd_demo(args) -> int:
    db = Database(preset("page-force-rda", group_size=4, num_groups=16,
                         buffer_capacity=8))
    print("1) commit, steal an uncommitted page, abort via parity twins")
    t = db.begin()
    db.write_page(t, 0, make_page(b"committed"))
    db.commit(t)
    loser = db.begin()
    db.write_page(loser, 0, make_page(b"scribble"))
    db.buffer.flush_pages_of(loser)
    print(f"   on disk while active: {db.disk_page(0)[:9]!r}, "
          f"undo records: {db.counters.before_images_logged}")
    db.abort(loser)
    print(f"   after abort        : {db.disk_page(0)[:9]!r}")
    print("2) crash with a loser in flight")
    loser = db.begin()
    db.write_page(loser, 1, make_page(b"doomed"))
    db.crash()
    stats = db.recover()
    print(f"   recovery: losers={stats['losers']} "
          f"transfers={stats['page_transfers']}")
    print("3) media failure")
    db.media_failure(2)
    report = db.media_recover(2)
    print(f"   rebuilt {report.slots_rebuilt} slots; "
          f"scrub: {db.verify_parity() or 'clean'}")
    return 0


def _add_worker_flags(sub) -> None:
    """``--workers``/``--no-workers`` (default: the REPRO_WORKERS env)."""
    group = sub.add_mutually_exclusive_group()
    group.add_argument("--workers", dest="workers", action="store_true",
                       default=None,
                       help="run each shard in its own worker process "
                            "(sharded engines only; default honours "
                            "REPRO_WORKERS=on)")
    group.add_argument("--no-workers", dest="workers", action="store_false",
                       help="force the in-process sharded engine even when "
                            "REPRO_WORKERS=on")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Database recovery using redundant disk arrays "
                    "(ICDE 1992) - reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures 9-13")
    figures.add_argument("--figure", type=int, choices=range(9, 14),
                         help="only this figure")
    figures.add_argument("--csv", action="store_true",
                         help="emit CSV instead of a table")
    figures.set_defaults(func=_cmd_figures)

    simulate = sub.add_parser("simulate", help="drive the live system")
    simulate.add_argument("--preset", choices=extended_preset_names(),
                          default="page-force-rda")
    simulate.add_argument("--backend", choices=backend_names(), default=None,
                          help="override the preset's storage backend")
    simulate.add_argument("--shards", type=int, default=1,
                          help="K-way sharded engine (1 = single engine)")
    simulate.add_argument("--group-commit", type=int, default=1,
                          metavar="H",
                          help="group-commit flush horizon (commits per "
                               "batched log force; needs --shards > 1)")
    _add_worker_flags(simulate)
    simulate.add_argument("--transactions", type=int, default=200)
    simulate.add_argument("--concurrency", type=int, default=4)
    simulate.add_argument("--pages-per-txn", type=int, default=6)
    simulate.add_argument("--update-fraction", type=float, default=0.8)
    simulate.add_argument("--update-probability", type=float, default=0.9)
    simulate.add_argument("--abort-probability", type=float, default=0.01)
    simulate.add_argument("--communality", type=float, default=0.6)
    simulate.add_argument("--group-size", type=int, default=5)
    simulate.add_argument("--num-groups", type=int, default=30)
    simulate.add_argument("--buffer", type=int, default=40)
    simulate.add_argument("--checkpoint-interval", type=float, default=400)
    simulate.add_argument("--crash-every", type=int, default=None)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--profile", metavar="FILE", nargs="?",
                          const="simulate.prof", default=None,
                          help="profile the run with cProfile: dump stats "
                               "to FILE (default simulate.prof) and print "
                               "the top 20 cumulative entries")
    simulate.add_argument("--trace-out", metavar="FILE", default=None,
                          help="record a JSONL event trace to FILE")
    simulate.add_argument("--metrics-out", metavar="FILE", default=None,
                          help="write a metrics snapshot (JSON) to FILE")
    simulate.add_argument("--report-out", metavar="FILE", default=None,
                          help="write the simulation report (JSON, "
                               "including the recovery profile) to FILE")
    simulate.add_argument("--drift-check", action="store_true",
                          help="watch measured per-operation transfer "
                               "costs against the analytical model and "
                               "fail the run on drift")
    simulate.add_argument("--drift-tolerance", type=float, default=0.05,
                          help="allowed relative excursion outside a "
                               "model band before a drift alarm")
    simulate.add_argument("--fault-sweep", action="store_true",
                          help="enumerate every crash point of a scripted "
                               "workload instead of running the simulator")
    simulate.add_argument("--fault-transactions", type=int, default=2,
                          help="transactions in the fault-sweep script")
    simulate.add_argument("--fault-modes", default="clean,torn,latent",
                          help="comma-separated crash-point perturbations")
    simulate.add_argument("--fault-report", metavar="FILE", default=None,
                          help="write the FaultSweepReport (JSON) to FILE")
    simulate.add_argument("--list-presets", action="store_true",
                          help="print the preset x backend x shards matrix "
                               "with one-line descriptions and exit")
    simulate.set_defaults(func=_cmd_simulate)

    check = sub.add_parser(
        "check",
        help="conformance suite: invariants, differential oracle, "
             "serializability")
    check.add_argument("--presets", default="all",
                       help="'all' or a comma-separated preset list")
    check.add_argument("--extended", action="store_true",
                       help="run the extended matrix: RAID-6 presets plus "
                            "sharded cells at K=2 and K=4")
    check.add_argument("--shards", type=int, default=1,
                       help="run every (non-extended) cell on a K-way "
                            "sharded engine")
    _add_worker_flags(check)
    check.add_argument("--transactions", type=int, default=40)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--crash-every", type=int, default=None,
                       help="crash + recover every N finished transactions")
    check.add_argument("--history-out", metavar="FILE", default=None,
                       help="write recorded histories (JSONL) to FILE")
    check.add_argument("--report-out", metavar="FILE", default=None,
                       help="write the verdict (JSON) to FILE")
    check.add_argument("--list-presets", action="store_true",
                       help="print the preset x backend x shards matrix "
                            "with one-line descriptions and exit")
    check.set_defaults(func=_cmd_check)

    stress = sub.add_parser(
        "stress",
        help="nemesis-driven continuous chaos with live judging")
    stress.add_argument("--preset", default=None,
                        help="run one cell (default: the acceptance matrix "
                             "of all five recovery classes at K=1 plus "
                             "K=2 cells)")
    stress.add_argument("--shards", type=int, default=1,
                        help="K for a --preset run (matrix mode sets its "
                             "own K per cell)")
    stress.add_argument("--group-commit", type=int, default=2,
                        metavar="H", help="flush horizon for sharded cells")
    _add_worker_flags(stress)
    stress.add_argument("--ops", type=int, default=None,
                        help="completed transactions per cell "
                             "(default 64: the deterministic CI smoke)")
    stress.add_argument("--duration", type=float, default=None, metavar="SEC",
                        help="wall-clock budget per cell (soak mode; "
                             "combine with --ops for whichever trips first)")
    stress.add_argument("--batch", type=int, default=8,
                        help="transactions per batch between nemesis ticks")
    stress.add_argument("--seed", type=int, default=0)
    stress.add_argument("--nemesis-profile", default="default",
                        help="fault mix: default, aggressive, media-heavy, "
                             "crash-only, mutation")
    stress.add_argument("--no-baseline", action="store_true",
                        help="skip the fault-free baseline pass "
                             "(no chaos-ratio in the report)")
    stress.add_argument("--drift-check", action="store_true",
                        help="watch measured costs against the analytical "
                             "model during chaos (alarms fail the run)")
    stress.add_argument("--report-out", metavar="FILE", default=None,
                        help="write the stress report (JSON) to FILE")
    stress.set_defaults(func=_cmd_stress)

    inspect_trace = sub.add_parser(
        "inspect-trace",
        help="aggregate a recorded trace into the per-event cost table")
    inspect_trace.add_argument("trace", help="JSONL trace file to aggregate")
    inspect_trace.add_argument("--json", action="store_true",
                               help="emit JSON instead of a table")
    inspect_trace.set_defaults(func=_cmd_inspect_trace)

    export_trace = sub.add_parser(
        "export-trace",
        help="convert a JSONL trace to Chrome trace-event/Perfetto JSON")
    export_trace.add_argument("trace", help="JSONL trace file to convert")
    export_trace.add_argument("--out", metavar="FILE", default=None,
                              help="output path (default: "
                                   "<trace>.perfetto.json)")
    export_trace.add_argument("--no-counters", action="store_true",
                              help="skip the cumulative transfer counter "
                                   "track")
    export_trace.set_defaults(func=_cmd_export_trace)

    drift_check = sub.add_parser(
        "drift-check",
        help="replay a recorded trace through the model-drift detector")
    drift_check.add_argument("trace", help="JSONL trace file to check")
    drift_check.add_argument("--tolerance", type=float, default=0.05,
                             help="allowed relative excursion outside a "
                                  "model band")
    drift_check.add_argument("--min-count", type=int, default=4,
                             help="observations required before a variant "
                                  "is judged")
    drift_check.add_argument("--json", action="store_true",
                             help="emit the full summary as JSON")
    drift_check.set_defaults(func=_cmd_drift_check)

    reliability = sub.add_parser("reliability",
                                 help="Section 1 motivation numbers")
    reliability.add_argument("--disks", type=int, default=200)
    reliability.add_argument("--mttr", type=float, default=24.0)
    reliability.add_argument("--group-size", type=int, default=10)
    reliability.set_defaults(func=_cmd_reliability)

    demo = sub.add_parser("demo", help="walk the three recovery scenarios")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
