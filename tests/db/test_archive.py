"""Tests for archive-based media recovery (the classical baseline)."""

import pytest

from repro.db import Database, preset
from repro.db.archive import ArchiveManager
from repro.errors import RecoveryError
from repro.storage import make_page


def make_db(name="page-force-log", **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    if db.config.record_logging:
        db.format_record_pages(range(db.num_data_pages))
    return db


class TestDump:
    def test_dump_covers_all_pages(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"v"))
        db.commit(t)
        copy = ArchiveManager(db).dump()
        assert len(copy.pages) == db.num_data_pages
        assert copy.pages[0] == make_page(b"v")
        assert copy.transfers >= db.num_data_pages

    def test_dump_is_action_consistent(self):
        """¬FORCE leaves committed data only in the buffer; the dump
        must flush it first."""
        db = make_db("page-noforce-log")
        t = db.begin()
        db.write_page(t, 0, make_page(b"lazy"))
        db.commit(t)
        copy = ArchiveManager(db).dump()
        assert copy.pages[0] == make_page(b"lazy")


class TestRestore:
    def test_restore_without_dump_rejected(self):
        db = make_db()
        db.media_failure(0)
        with pytest.raises(RecoveryError):
            ArchiveManager(db).restore_failed_disk(0)

    def test_restore_rejected_on_rda_database(self):
        db = make_db("page-force-rda")
        manager = ArchiveManager(db)
        manager.dump()
        with pytest.raises(RecoveryError):
            manager.restore_failed_disk(0)

    def test_restore_from_archive_alone(self):
        db = make_db()
        payloads = {}
        for page in range(0, db.num_data_pages, 2):
            t = db.begin()
            payloads[page] = make_page(bytes([page % 250 + 1]))
            db.write_page(t, page, payloads[page])
            db.commit(t)
        manager = ArchiveManager(db)
        manager.dump()
        db.media_failure(1)
        manager.restore_failed_disk(1)
        for page, payload in payloads.items():
            assert db.disk_page(page) == payload
        assert db.verify_parity() == []

    def test_restore_rolls_forward_from_log(self):
        """Updates committed AFTER the dump come back via the redo log."""
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"old"))
        db.commit(t)
        manager = ArchiveManager(db)
        manager.dump()
        t = db.begin()
        db.write_page(t, 0, make_page(b"new"))
        db.commit(t)
        victim = db.array.geometry.data_address(0).disk
        db.media_failure(victim)
        manager.restore_failed_disk(victim)
        assert db.disk_page(0) == make_page(b"new")
        assert db.verify_parity() == []

    def test_uncommitted_post_dump_changes_not_restored(self):
        db = make_db()
        manager = ArchiveManager(db)
        manager.dump()
        loser = db.begin()
        db.write_page(loser, 0, make_page(b"loser"))
        db.buffer.flush_pages_of(loser)       # stolen to disk
        victim = db.array.geometry.data_address(0).disk
        db.media_failure(victim)
        manager.restore_failed_disk(victim)
        # archive restore resurrects the committed (pre-loser) state for
        # the lost disk; the loser's change survives only in the log
        assert db.disk_page(0) == bytes(512)

    def test_record_mode_roll_forward(self):
        db = make_db("record-force-log")
        t = db.begin()
        slot = db.insert_record(t, 0, b"v0")
        db.commit(t)
        manager = ArchiveManager(db)
        manager.dump()
        t = db.begin()
        db.update_record(t, 0, slot, b"v1")
        db.commit(t)
        victim = db.array.geometry.data_address(0).disk
        db.media_failure(victim)
        manager.restore_failed_disk(victim)
        t = db.begin()
        assert db.read_record(t, 0, slot) == b"v1"

    def test_restore_counts_transfers(self):
        db = make_db()
        manager = ArchiveManager(db)
        manager.dump()
        db.media_failure(0)
        transfers = manager.restore_failed_disk(0)
        assert transfers > 0
