"""Tests for the TPC-B / DebitCredit workload."""

import pytest

from repro.db import Database, preset, verify_database
from repro.errors import ModelError
from repro.sim import TPCB, TPCBConfig


def make_tpcb(name="record-noforce-rda", seed=1, **kw):
    defaults = dict(group_size=5, num_groups=16, buffer_capacity=20,
                    checkpoint_interval=300)
    if "force" in name and "noforce" not in name:
        defaults.pop("checkpoint_interval")
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    workload = TPCB(db, seed=seed)
    workload.setup()
    return db, workload


class TestSetup:
    def test_record_mode_required(self):
        db = Database(preset("page-force-rda"))
        with pytest.raises(ModelError):
            TPCB(db)

    def test_config_validation(self):
        with pytest.raises(ModelError):
            TPCBConfig(branches=0)
        with pytest.raises(ModelError):
            TPCBConfig(abort_probability=2.0)

    def test_initial_conservation(self):
        _, workload = make_tpcb()
        assert workload.conserved()
        totals = workload.totals()
        assert totals["accounts"] == 0

    def test_transaction_before_setup_rejected(self):
        db = Database(preset("record-force-rda", group_size=5, num_groups=16,
                             buffer_capacity=20))
        with pytest.raises(ModelError):
            TPCB(db).transaction()


class TestConservation:
    @pytest.mark.parametrize("name", ["record-force-rda", "record-force-log",
                                      "record-noforce-rda",
                                      "record-noforce-log"])
    def test_conserved_under_load(self, name):
        db, workload = make_tpcb(name)
        report = workload.run(40)
        assert report["committed"] > 0
        assert workload.conserved(), workload.totals()
        assert verify_database(db) == []

    def test_conserved_across_crashes(self):
        db, workload = make_tpcb("record-noforce-rda", seed=3)
        report = workload.run(45, crash_every=15)
        assert report["crashes"] == 3
        assert workload.conserved(), workload.totals()
        assert verify_database(db) == []

    def test_conserved_across_media_failure(self):
        db, workload = make_tpcb("record-force-rda", seed=4)
        workload.run(20)
        db.media_failure(2)
        db.media_recover(2, on_lost_undo="adopt")
        workload.run(10)
        assert workload.conserved(), workload.totals()

    def test_aborts_happen_and_preserve_money(self):
        db, workload = make_tpcb(seed=7)
        workload.config = TPCBConfig(abort_probability=0.5)
        workload.run(30)
        assert workload.aborted > 3
        assert workload.conserved()

    def test_deterministic_given_seed(self):
        _, a = make_tpcb(seed=11)
        _, b = make_tpcb(seed=11)
        a.run(25)
        b.run(25)
        assert a.totals() == b.totals()
