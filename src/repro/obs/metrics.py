"""Metrics: counters, gauges and histograms with labeled children.

A :class:`MetricsRegistry` is the numeric half of the observability
layer: where the tracer records *what happened*, the registry records
*how often and how much*.  All instruments are plain-Python and cheap —
a counter increment is one dict-free integer add — so they stay enabled
even when tracing is off.

Labeled children follow the Prometheus idiom::

    wal = registry.counter("wal.records")
    wal.labels(type="CommitRecord").inc()

``snapshot()`` renders everything as a JSON-friendly dict, with child
series keyed ``name{k=v,...}`` (label keys sorted).
"""

from __future__ import annotations


def _series_key(name: str, labels: dict) -> str:
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, transfers, records)."""

    __slots__ = ("name", "value", "_children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._children: dict = {}

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def labels(self, **labels) -> "Counter":
        """The child counter for one label combination (created lazily)."""
        key = _series_key(self.name, labels)
        child = self._children.get(key)
        if child is None:
            child = Counter(key)
            self._children[key] = child
        return child

    def collect(self, out: dict) -> None:
        out[self.name] = self.value
        for child in self._children.values():
            child.collect(out)


class Gauge:
    """A value that goes up and down (dirty groups, live transactions)."""

    __slots__ = ("name", "value", "_children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._children: dict = {}

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def labels(self, **labels) -> "Gauge":
        key = _series_key(self.name, labels)
        child = self._children.get(key)
        if child is None:
            child = Gauge(key)
            self._children[key] = child
        return child

    def collect(self, out: dict) -> None:
        out[self.name] = self.value
        for child in self._children.values():
            child.collect(out)


DEFAULT_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 12, 16, 32, 64, 128)
"""Histogram bucket upper bounds, tuned for per-operation transfer
counts (the interesting values are small integers: 3, 4, 5...)."""


class Histogram:
    """Distribution of an observed value (per-operation transfers,
    span durations)."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "_children")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +inf
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._children: dict = {}

    def observe(self, value) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def labels(self, **labels) -> "Histogram":
        key = _series_key(self.name, labels)
        child = self._children.get(key)
        if child is None:
            child = Histogram(key, self.buckets)
            self._children[key] = child
        return child

    def collect(self, out: dict) -> None:
        doc = {
            "count": self.count,
            "sum": self.total,
            "mean": round(self.mean, 4),
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{bound}": count
                   for bound, count in zip(self.buckets, self.bucket_counts)},
                "le_inf": self.bucket_counts[-1],
            },
        }
        out[self.name] = doc
        for child in self._children.values():
            child.collect(out)


class MetricsRegistry:
    """Names a family of instruments; the single export point.

    The same name always returns the same instrument (get-or-create),
    so call sites need no coordination — ``registry.counter("x")`` in
    two modules shares one counter.
    """

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name, buckets)
            self._histograms[name] = instrument
        return instrument

    def snapshot(self) -> dict:
        """Everything, as a JSON-friendly dict::

            {"counters": {name: value, ...},
             "gauges": {name: value, ...},
             "histograms": {name: {count, sum, mean, min, max, buckets}}}
        """
        counters: dict = {}
        for instrument in self._counters.values():
            instrument.collect(counters)
        gauges: dict = {}
        for instrument in self._gauges.values():
            instrument.collect(gauges)
        histograms: dict = {}
        for instrument in self._histograms.values():
            instrument.collect(histograms)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
