#!/usr/bin/env python3
"""A tour of the recovery schemes the paper positions RDA against.

Runs the same episode — update a page inside a transaction, then abort —
under four schemes and prints what each one paid:

* WAL            — classical undo logging (before-image to the log);
* shadow paging  — ATOMIC page-table swap (Lorie);
* TWIST          — twin data pages (Wu & Fuchs, the paper's ref. [12]);
* RDA            — twin *parity* pages (this paper).

Run:  python examples/recovery_schemes_tour.py
"""

from repro.core import RDAManager
from repro.db import Database, preset
from repro.shadow import ShadowPagedStore
from repro.storage import make_page, make_raid5, make_twin_raid5
from repro.twist import TwistStore


def wal_episode():
    db = Database(preset("page-force-log", group_size=5, num_groups=8,
                         buffer_capacity=4, log_transfers_per_page=4))
    db.load_pages({0: make_page(b"base")})
    with db.stats.window() as window:
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"oops"))
        db.buffer.flush_pages_of(txn)
        db.abort(txn)
    assert db.disk_page(0) == make_page(b"base")
    return window.total, 1 / 6


def shadow_episode():
    store = ShadowPagedStore(make_raid5(5, 8), logical_pages=20)
    store.begin()
    store.write(0, make_page(b"base"))
    store.commit()
    with store.array.stats.window() as window:
        store.begin()
        store.write(0, make_page(b"oops"))
        store.abort()
    assert store.read(0) == make_page(b"base")
    return window.total, 1 / 6


def twist_episode():
    store = TwistStore(num_pages=20, num_disks=6)
    store.load({0: make_page(b"base")})
    with store.stats.window() as window:
        store.write(0, make_page(b"oops"), txn_id=1)
        store.abort(1)
    assert store.read(0) == make_page(b"base")
    return window.total, 0.5


def rda_episode():
    array = make_twin_raid5(5, 8)
    array.full_stripe_write(0, [make_page(b"base")] + [make_page(i + 1)
                                                       for i in range(4)])
    rda = RDAManager(array)
    with array.stats.window() as window:
        rda.write_uncommitted(0, make_page(b"oops"), txn_id=1)
        rda.abort_txn(1)
    assert array.read_page(0) == make_page(b"base")
    return window.total, 2 / 7


def main():
    episodes = [("WAL (undo logging)", wal_episode),
                ("shadow paging", shadow_episode),
                ("TWIST (twin data pages)", twist_episode),
                ("RDA (twin parity pages)", rda_episode)]
    print("one update-then-abort episode, apples to apples:\n")
    print(f"{'scheme':>26} | {'transfers':>9} | {'storage overhead':>16}")
    print("-" * 60)
    for name, fn in episodes:
        transfers, overhead = fn()
        print(f"{name:>26} | {transfers:9d} | {overhead:16.1%}")
    print("\nTWIST gets free undo by doubling storage; RDA keeps most of "
          "the\nundo savings at roughly (100/N)% extra storage — the "
          "paper's pitch.")


if __name__ == "__main__":
    main()
