"""X3: end-to-end recovery costs in the live system.

Pins the paper's qualitative recovery claims with the executable
database:

* aborting via the parity twins consumes fewer page transfers than
  aborting via logged before-images;
* crash-recovery cost scales with the losers' footprint;
* media rebuild restores the array byte-exactly.

The **recovery-class sweep** at the bottom drives the same seeded
workload through one representative preset of each of the five
recovery classes (page/record x FORCE/¬FORCE plus REDO-only) and
measures **log transfers per committed transaction** — the quantity
the REDO-only class exists to shrink: no before-images means roughly
half the page-mode log volume, and the RDA+REDO hybrid logs only
record-sized after-entries while the parity twins cover the losers.
Acceptance: the hybrid spends fewer log transfers per commit than
every other preset, and pure REDO-only beats both page-mode
before-image presets.

Results go to ``benchmarks/results/recovery_classes.json`` and are
mirrored to ``BENCH_recovery.json`` at the repository root.

Run standalone (``python benchmarks/bench_recovery.py [--quick]``) or
via pytest (``pytest benchmarks/bench_recovery.py``).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.db import Database, preset                          # noqa: E402
from repro.sim import Simulator, WorkloadSpec                  # noqa: E402
from repro.storage import make_page                            # noqa: E402

try:
    from .conftest import write_table
except ImportError:     # standalone: python benchmarks/bench_recovery.py
    write_table = None

SIZES = dict(group_size=5, num_groups=16, buffer_capacity=8)


def steal_one_uncommitted_page(db):
    """Begin a txn, dirty page 0, force it to disk via buffer pressure.

    The spill transaction touches one page per parity group (the
    model's random-access assumption); clustering them into one group
    would make every write pay the dirty-group both-twins tax, which the
    paper's p_l says is rare at S/N = 500 groups.
    """
    txn = db.begin()
    db.write_page(txn, 0, make_page(b"uncommitted"))
    spill = db.begin()
    geometry = db.array.geometry
    for group in range(2, 14):
        page = geometry.group_pages(group)[1]
        db.write_page(spill, page, make_page(bytes([group])))
    db.commit(spill)
    return txn


def steal_and_abort_transfers(name: str, log_cost: int) -> int:
    """Total transfers for the whole episode: dirty one page, have it
    stolen, abort.  ``log_cost`` is the page transfers charged per log
    page per mirror copy — the paper prices it at 4 (the logs live on a
    RAID and pay the small-write protocol)."""
    db = Database(preset(name, log_transfers_per_page=log_cost, **SIZES))
    db.load_pages({0: make_page(b"base")})
    with db.stats.window() as window:
        txn = steal_one_uncommitted_page(db)
        db.abort(txn)
    assert db.disk_page(0) == make_page(b"base")
    return window.total


def test_abort_via_parity_vs_log(benchmark, results_dir):
    """Under the paper's log costing (4 transfers per log page), the
    whole steal-then-abort episode is cheaper with RDA: the forward path
    skips the durable before-images.  With a cheap dedicated sequential
    log (1 transfer per page) the advantage shrinks or inverts — an
    ablation the paper does not explore, reported alongside."""

    def measure():
        return {
            "rda_paper_log": steal_and_abort_transfers("page-force-rda", 4),
            "wal_paper_log": steal_and_abort_transfers("page-force-log", 4),
            "rda_cheap_log": steal_and_abort_transfers("page-force-rda", 1),
            "wal_cheap_log": steal_and_abort_transfers("page-force-log", 1),
        }

    r = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert r["rda_paper_log"] < r["wal_paper_log"]
    write_table(results_dir, "recovery_abort",
                "X3: steal-then-abort episode cost (page transfers)\n"
                f"paper log costing (4/page): RDA {r['rda_paper_log']}  "
                f"vs WAL {r['wal_paper_log']}\n"
                f"cheap log ablation (1/page): RDA {r['rda_cheap_log']}  "
                f"vs WAL {r['wal_cheap_log']}")
    benchmark.extra_info.update(r)


def test_abort_latency_rda(benchmark):
    def cycle():
        db = Database(preset("page-force-rda", **SIZES))
        txn = steal_one_uncommitted_page(db)
        db.abort(txn)

    benchmark.pedantic(cycle, rounds=5, iterations=1)


def test_abort_latency_log(benchmark):
    def cycle():
        db = Database(preset("page-force-log", **SIZES))
        txn = steal_one_uncommitted_page(db)
        db.abort(txn)

    benchmark.pedantic(cycle, rounds=5, iterations=1)


def test_crash_recovery_scales_with_losers(benchmark, results_dir):
    def recovery_transfers(loser_pages: int) -> int:
        db = Database(preset("page-force-rda", group_size=5, num_groups=16,
                             buffer_capacity=loser_pages + 4))
        loser = db.begin()
        geometry = db.array.geometry
        for g in range(loser_pages):            # one page per group
            db.write_page(loser, geometry.group_pages(g)[0],
                          make_page(bytes([g + 1])))
        db.buffer.flush_pages_of(loser)         # steal them all
        db.crash()
        stats = db.recover()
        assert len(stats["losers"]) == 1
        return stats["page_transfers"]

    def measure():
        return [recovery_transfers(n) for n in (1, 4, 8)]

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert series == sorted(series)
    write_table(results_dir, "recovery_crash",
                "X3: crash-recovery transfers vs loser footprint\n"
                + "\n".join(f"{n} stolen pages: {t} transfers"
                            for n, t in zip((1, 4, 8), series)))
    benchmark.extra_info["transfers"] = series


def test_media_rebuild_end_to_end(benchmark):
    def cycle():
        db = Database(preset("page-force-rda", **SIZES))
        expected = {}
        for page in range(0, db.num_data_pages, 2):
            txn = db.begin()
            payload = make_page(bytes([page % 250 + 1]))
            db.write_page(txn, page, payload)
            db.commit(txn)
            expected[page] = payload
        db.media_failure(1)
        db.media_recover(1)
        for page, payload in expected.items():
            assert db.disk_page(page) == payload
        return db.verify_parity()

    bad = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert bad == []


# ---------------------------------------------------------------------------
# Recovery-class sweep: log transfers per commit across all five classes
# ---------------------------------------------------------------------------

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "recovery_classes.json")
ROOT_TRAJECTORY_PATH = (pathlib.Path(__file__).parent.parent
                        / "BENCH_recovery.json")

# the paper's eight presets plus the two REDO-only cells; the RAID-6
# extended presets share their base preset's logging behavior and would
# only duplicate rows here
SWEEP_PRESETS = (
    "page-force-log", "page-force-rda",
    "page-noforce-log", "page-noforce-rda",
    "record-force-log", "record-force-rda",
    "record-noforce-log", "record-noforce-rda",
    "page-noforce-redo", "record-noforce-rda-redo",
)
HYBRID = "record-noforce-rda-redo"
PURE_REDO = "page-noforce-redo"

SWEEP_TRANSACTIONS = 300
SWEEP_QUICK_TRANSACTIONS = 120

# small buffer = real steal pressure; 12 groups x 4 data pages = 48
# pages with communality 0.6 = shared hot pages, so the hybrid's
# un-steal / residue machinery actually runs
SWEEP_OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=10)

SWEEP_SPEC = WorkloadSpec(concurrency=4, pages_per_txn=4,
                          update_txn_fraction=0.9, update_probability=0.9,
                          abort_probability=0.05, communality=0.6)


def run_class_cell(preset_name: str, transactions: int) -> dict:
    """Drive the seeded workload through one preset; measure the log."""
    db = Database(preset(preset_name, **SWEEP_OVERRIDES))
    simulator = Simulator(db, SWEEP_SPEC, seed=11)
    if simulator.record_mode:
        simulator.seed_records()
    log_base = db.stats.log_transfers
    total_base = db.stats.total
    started = time.perf_counter()
    report = simulator.run(transactions)
    elapsed = time.perf_counter() - started
    committed = max(1, report.committed)
    log_transfers = db.stats.log_transfers - log_base
    total_transfers = db.stats.total - total_base

    # restart leg: crash at the end of the run and time the recovery
    db.crash()
    before = db.stats.total
    recovery = db.recover()
    recovery_transfers = db.stats.total - before

    return {
        "preset": preset_name,
        "algorithm": db.config.algorithm_name,
        "redo_only": db.config.redo_only,
        "committed": report.committed,
        "aborted": report.aborted,
        "log_transfers": log_transfers,
        "log_transfers_per_commit": round(log_transfers / committed, 3),
        "total_transfers": total_transfers,
        "transfers_per_commit": round(total_transfers / committed, 3),
        "recovery_transfers": recovery_transfers,
        "recovery_losers": len(recovery.get("losers", [])),
        "wall_seconds": round(elapsed, 4),
    }


def run(quick: bool = False) -> dict:
    transactions = (SWEEP_QUICK_TRANSACTIONS if quick
                    else SWEEP_TRANSACTIONS)
    cells = [run_class_cell(name, transactions) for name in SWEEP_PRESETS]
    by_preset = {c["preset"]: c for c in cells}
    hybrid_cost = by_preset[HYBRID]["log_transfers_per_commit"]
    hybrid_wins = {
        name: hybrid_cost < cell["log_transfers_per_commit"]
        for name, cell in by_preset.items() if name != HYBRID
    }
    pure_cost = by_preset[PURE_REDO]["log_transfers_per_commit"]
    pure_beats_page_noforce = all(
        pure_cost < by_preset[name]["log_transfers_per_commit"]
        for name in ("page-noforce-log", "page-noforce-rda"))
    return {
        "benchmark": "recovery classes: log transfers per committed txn",
        "overrides": SWEEP_OVERRIDES,
        "transactions": transactions,
        "seed": 11,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cells": cells,
        "acceptance": {
            "criterion": "the RDA+REDO hybrid spends fewer log transfers "
                         "per committed transaction than every other "
                         "preset, and pure REDO-only beats both page-mode "
                         "before-image NOFORCE presets",
            "hybrid_log_transfers_per_commit": hybrid_cost,
            "hybrid_beats": hybrid_wins,
            "pure_redo_beats_page_noforce": pure_beats_page_noforce,
            "ok": all(hybrid_wins.values()) and pure_beats_page_noforce,
        },
    }


def write_results(doc: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    for path in (RESULTS_PATH, ROOT_TRAJECTORY_PATH):
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_redo_hybrid_minimizes_log_transfers():
    """pytest entry: quick sweep, still enforcing the headline — the
    hybrid's log is the cheapest of all ten presets."""
    doc = run(quick=True)
    write_results(doc)
    assert doc["acceptance"]["ok"], (
        "recovery-class bench acceptance failed (hybrid not cheapest, or "
        f"pure REDO-only not under page NOFORCE): {doc['acceptance']}")


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    doc = run(quick=quick)
    write_results(doc)
    print(json.dumps(doc, indent=2))
    print(f"\n[written to {RESULTS_PATH} and {ROOT_TRAJECTORY_PATH}]")
    if not doc["acceptance"]["ok"]:
        print("FAIL: the hybrid did not minimize log transfers per commit",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
