"""Legacy setup shim.

The environment has setuptools 65 without the ``wheel`` package and no
network, so PEP 660 editable installs fail with "invalid command
'bdist_wheel'".  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``pip install -e .`` on newer
toolchains) work everywhere.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
