"""Unit tests for trace aggregation and the cost table."""

import pytest

from repro.errors import ModelError
from repro.obs import (aggregate_events, aggregate_trace_file, event_key,
                       format_cost_table, load_trace, model_expectation)


def test_event_key_splits_variants_in_fixed_order():
    assert event_key("a", {}) == "a"
    assert event_key("array.small_write",
                     {"twins": 1, "buffered": False, "page": 9}) == \
        "array.small_write[buffered=False,twins=1]"


def test_model_expectation_prefix_match():
    assert model_expectation("array.small_write[buffered=False,twins=1]") == "4"
    assert model_expectation("rda.commit") == "0"
    assert model_expectation("rda.commit[foo=bar]") == "0"
    assert model_expectation("something.unknown") == ""


def test_aggregate_sums_and_means_costed_events():
    events = [
        {"name": "w", "attrs": {"buffered": True, "reads": 1, "writes": 2,
                                "transfers": 3}},
        {"name": "w", "attrs": {"buffered": True, "reads": 1, "writes": 2,
                                "transfers": 3}},
        {"name": "marker", "attrs": {"page": 1}},
    ]
    rows = aggregate_events(events)
    assert rows["w[buffered=True]"]["count"] == 2
    assert rows["w[buffered=True]"]["mean_transfers"] == 3.0
    assert rows["w[buffered=True]"]["reads"] == 2
    # pure markers keep None cost fields, not zero
    assert rows["marker"]["mean_transfers"] is None


def test_load_trace_rejects_malformed_lines(tmp_path):
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"name": "ok"}\n{not json\n')
    with pytest.raises(ModelError):
        load_trace(bad_json)

    not_event = tmp_path / "notevent.jsonl"
    not_event.write_text('[1, 2, 3]\n')
    with pytest.raises(ModelError):
        load_trace(not_event)

    no_name = tmp_path / "noname.jsonl"
    no_name.write_text('{"attrs": {}}\n')
    with pytest.raises(ModelError):
        load_trace(no_name)


def test_aggregate_trace_file_and_table_render(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"name":"rda.commit","attrs":{"reads":0,"writes":0,"transfers":0}}\n'
        '{"name":"array.small_write","attrs":{"buffered":false,"twins":1,'
        '"reads":2,"writes":2,"transfers":4}}\n')
    rows = aggregate_trace_file(path)
    table = format_cost_table(rows)
    assert "rda.commit" in table
    assert "array.small_write[buffered=False,twins=1]" in table
    assert "4" in table       # the model column
