"""Unit tests for the event tracer, spans, and sinks."""

import json

import pytest

from repro.obs import (NULL_TRACER, JsonlSink, RingBufferSink, Tracer,
                       load_trace)
from repro.storage.iostats import IOStats


def test_disabled_tracer_emits_nothing():
    tracer = Tracer(None)
    tracer.emit("x", a=1)
    with tracer.span("y") as span:
        span.set(b=2)
    assert tracer.events_emitted == 0
    assert not tracer.enabled


def test_null_tracer_is_shared_and_disabled():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything")
    # the stateless no-op span: same object every time, ignores set()
    assert NULL_TRACER.span("other") is span
    span.set(a=1).finish()
    assert NULL_TRACER.start_span("z") is span


def test_emit_records_name_attrs_and_sequence():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    tracer.emit("first", page=3)
    tracer.emit("second")
    events = sink.events()
    assert [e["name"] for e in events] == ["first", "second"]
    assert events[0]["attrs"] == {"page": 3}
    assert events[0]["seq"] == 1 and events[1]["seq"] == 2
    assert events[0]["ts"] <= events[1]["ts"]


def test_emit_costed_attaches_transfer_counts():
    stats = IOStats()
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with stats.window() as window:
        stats.record_read(0, 2)
        stats.record_write(1, 1)
    tracer.emit_costed("op", window, page=9)
    (event,) = sink.events()
    assert event["attrs"] == {"page": 9, "reads": 2, "writes": 1,
                              "transfers": 3}


def test_span_carries_duration_and_io_delta():
    stats = IOStats()
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with tracer.span("work", stats=stats, disk=1) as span:
        stats.record_read(0, 4)
        span.set(extra="yes")
    (event,) = sink.events()
    assert event["name"] == "work"
    assert event["attrs"]["reads"] == 4
    assert event["attrs"]["writes"] == 0
    assert event["attrs"]["transfers"] == 4
    assert event["attrs"]["extra"] == "yes"
    assert event["attrs"]["dur_ms"] >= 0
    assert event["span"] == 1


def test_nested_spans_link_parent_and_children():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with tracer.span("outer"):
        tracer.emit("inside")
        with tracer.span("inner"):
            pass
    inside, inner, outer = sink.events()
    assert inside["span"] == outer["span"]        # event inside outer
    assert inner["parent"] == outer["span"]
    assert "parent" not in outer


def test_detached_span_finishes_from_another_frame():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    span = tracer.start_span("txn", txn=7)
    tracer.emit("unrelated")
    span.finish(outcome="committed")
    span.finish(outcome="twice")      # idempotent: second finish ignored
    events = sink.events()
    assert len(events) == 2
    assert events[-1]["attrs"]["outcome"] == "committed"


def test_span_records_error_attribute_on_exception():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    (event,) = sink.events()
    assert event["attrs"]["error"] == "ValueError"


def test_ring_buffer_sink_caps_capacity():
    sink = RingBufferSink(capacity=3)
    tracer = Tracer(sink)
    for i in range(10):
        tracer.emit("e", i=i)
    kept = [e["attrs"]["i"] for e in sink.events()]
    assert kept == [7, 8, 9]


def test_jsonl_sink_round_trips_through_load_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(JsonlSink(path)) as tracer:
        tracer.emit("a", n=1)
        with tracer.span("b"):
            pass
    events = load_trace(path)
    assert [e["name"] for e in events] == ["a", "b"]
    # each line is standalone JSON
    lines = path.read_text().strip().splitlines()
    assert all(json.loads(line)["name"] for line in lines)


def test_buffered_sink_context_manager_flushes(tmp_path):
    path = tmp_path / "trace.jsonl"
    from repro.obs import BufferedJsonlSink

    with BufferedJsonlSink(path, flush_every=1000) as sink:
        tracer = Tracer(sink)
        for i in range(10):
            tracer.emit("e", i=i)
        # nothing flushed yet: well under flush_every
        assert path.read_text() == ""
    assert len(load_trace(path)) == 10


def test_observers_see_every_event_and_can_detach():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    seen = []
    tracer.add_observer(seen.append)
    tracer.emit("plain", n=1)
    with tracer.span("spanned"):
        pass
    assert [e["name"] for e in seen] == ["plain", "spanned"]
    # observers receive the same dicts the sink records
    assert seen == sink.events()
    tracer.remove_observer(seen.append)
    tracer.emit("after")
    assert len(seen) == 2


def test_observers_only_fire_while_enabled():
    tracer = Tracer(None)
    seen = []
    tracer.add_observer(seen.append)
    tracer.emit("dropped")
    assert seen == []


def test_labelled_tracer_delegates_observers():
    from repro.obs import LabelledTracer

    sink = RingBufferSink()
    tracer = Tracer(sink)
    seen = []
    labelled = LabelledTracer(tracer, shard=3)
    labelled.add_observer(seen.append)
    labelled.emit("op")
    assert seen[0]["attrs"] == {"shard": 3}
    labelled.remove_observer(seen.append)


def test_atexit_flushes_buffered_sink_on_sys_exit(tmp_path):
    """Satellite guarantee: a run killed mid-flight (sys.exit without
    tracer.close()) still leaves a parseable, complete trace — the
    atexit hook drains the buffered sink's pending tail."""
    import subprocess
    import sys

    path = tmp_path / "killed.jsonl"
    script = (
        "import sys\n"
        "from repro.obs import BufferedJsonlSink, Tracer\n"
        f"tracer = Tracer(BufferedJsonlSink({str(path)!r}, "
        "flush_every=10_000))\n"
        "for i in range(123):\n"
        "    tracer.emit('e', i=i)\n"
        "sys.exit(3)  # no tracer.close(): the atexit hook must flush\n"
    )
    result = subprocess.run([sys.executable, "-c", script],
                            capture_output=True, text=True)
    assert result.returncode == 3, result.stderr
    events = load_trace(path)
    assert len(events) == 123
    assert [e["attrs"]["i"] for e in events] == list(range(123))


def test_close_all_is_idempotent_and_scoped_to_live_tracers(tmp_path):
    from repro.obs import BufferedJsonlSink, close_all

    path = tmp_path / "t.jsonl"
    tracer = Tracer(BufferedJsonlSink(path, flush_every=1000))
    tracer.emit("x")
    close_all()
    assert len(load_trace(path)) == 1
    close_all()                       # second call: nothing left to close
    assert Tracer.close_all is close_all


def test_span_log_split_separates_log_transfers():
    stats = IOStats()
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with tracer.span("recovery.phase", stats=stats, log_split=True,
                     phase="redo"):
        stats.record_read(0, 2)       # array disk
        stats.record_read(-1, 3)      # log device (negative id)
        stats.record_write(-1, 1)
    (event,) = sink.events()
    assert event["attrs"]["transfers"] == 6
    assert event["attrs"]["log_transfers"] == 4
    # without log_split the attribute is absent (hot-path spans skip
    # the per-device summation)
    with tracer.span("op", stats=stats):
        stats.record_read(-1, 1)
    assert "log_transfers" not in sink.events()[-1]["attrs"]
