"""Unit tests for the simulated disk."""

import pytest

from repro.errors import AddressError, DiskFailedError
from repro.storage.disk import SimulatedDisk
from repro.storage.iostats import IOStats
from repro.storage.page import ZERO_PAGE, ParityHeader, TwinState, make_page


@pytest.fixture
def disk():
    return SimulatedDisk(disk_id=3, capacity=16)


class TestBasicIO:
    def test_unwritten_slot_reads_zero(self, disk):
        assert disk.read(0) == ZERO_PAGE

    def test_write_read_roundtrip(self, disk):
        page = make_page(b"payload")
        disk.write(5, page)
        assert disk.read(5) == page

    def test_overwrite(self, disk):
        disk.write(5, make_page(1))
        disk.write(5, make_page(2))
        assert disk.read(5) == make_page(2)

    def test_wrong_payload_size_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.write(0, b"short")

    def test_out_of_range_slot(self, disk):
        with pytest.raises(AddressError):
            disk.read(16)
        with pytest.raises(AddressError):
            disk.write(-1, make_page())

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDisk(0, 0)

    def test_written_slots_sorted(self, disk):
        disk.write(9, make_page(1))
        disk.write(2, make_page(2))
        assert disk.written_slots() == [2, 9]


class TestHeaders:
    def test_default_header(self, disk):
        assert disk.read_header(0) == ParityHeader()

    def test_header_roundtrip(self, disk):
        header = ParityHeader(timestamp=4, state=TwinState.COMMITTED)
        disk.write_header(7, header)
        assert disk.read_header(7) == header

    def test_write_with_header_single_transfer(self, disk):
        before = disk.stats.total
        disk.write_with_header(0, make_page(1), ParityHeader(timestamp=1))
        assert disk.stats.total - before == 1

    def test_read_with_header_single_transfer(self, disk):
        disk.write_with_header(0, make_page(1), ParityHeader(timestamp=1))
        before = disk.stats.total
        payload, header = disk.read_with_header(0)
        assert disk.stats.total - before == 1
        assert payload == make_page(1)
        assert header.timestamp == 1


class TestFailureInjection:
    def test_fail_blocks_all_io(self, disk):
        disk.write(0, make_page(1))
        disk.fail()
        assert disk.failed
        with pytest.raises(DiskFailedError):
            disk.read(0)
        with pytest.raises(DiskFailedError):
            disk.write(0, make_page(2))
        with pytest.raises(DiskFailedError):
            disk.read_header(0)
        with pytest.raises(DiskFailedError):
            disk.write_header(0, ParityHeader())

    def test_replace_blanks_contents(self, disk):
        disk.write(0, make_page(1))
        disk.write_header(0, ParityHeader(timestamp=3))
        disk.fail()
        disk.replace()
        assert not disk.failed
        assert disk.read(0) == ZERO_PAGE
        assert disk.read_header(0) == ParityHeader()

    def test_revive_keeps_contents(self, disk):
        disk.write(0, make_page(1))
        disk.fail()
        disk.revive()
        assert disk.read(0) == make_page(1)

    def test_error_carries_disk_id(self, disk):
        disk.fail()
        with pytest.raises(DiskFailedError) as info:
            disk.read(0)
        assert info.value.disk_id == 3

    def test_peek_ignores_failure(self, disk):
        disk.write(0, make_page(1))
        disk.fail()
        assert disk.peek(0) == make_page(1)


class TestAccounting:
    def test_shared_stats(self):
        stats = IOStats()
        d0 = SimulatedDisk(0, 4, stats)
        d1 = SimulatedDisk(1, 4, stats)
        d0.write(0, make_page(1))
        d1.read(0)
        d1.read(1)
        assert stats.writes == 1
        assert stats.reads == 2
        assert stats.per_disk_writes == {0: 1}
        assert stats.per_disk_reads == {1: 2}

    def test_local_counters(self, disk):
        disk.write(0, make_page(1))
        disk.read(0)
        disk.read(0)
        assert disk.write_count == 1
        assert disk.read_count == 2
