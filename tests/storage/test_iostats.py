"""Unit tests for page-transfer accounting."""

from repro.storage.iostats import IOStats, TransferCounts


class TestCounters:
    def test_empty(self):
        stats = IOStats()
        assert stats.total == 0
        assert stats.busiest_disk() is None
        assert stats.imbalance() == 1.0

    def test_record_and_total(self):
        stats = IOStats()
        stats.record_read(0)
        stats.record_write(1, pages=3)
        assert stats.reads == 1
        assert stats.writes == 3
        assert stats.total == 4

    def test_reset(self):
        stats = IOStats()
        stats.record_read(0)
        stats.reset()
        assert stats.total == 0
        assert stats.per_disk_reads == {}

    def test_snapshot_difference(self):
        stats = IOStats()
        stats.record_read(0)
        before = stats.snapshot()
        stats.record_write(0)
        stats.record_read(1)
        delta = stats.snapshot() - before
        assert delta == TransferCounts(reads=1, writes=1)
        assert delta.total == 2


class TestWindow:
    def test_window_counts_inner_transfers(self):
        stats = IOStats()
        stats.record_read(0)
        with stats.window() as w:
            stats.record_read(0)
            stats.record_write(1)
        assert (w.reads, w.writes, w.total) == (1, 1, 2)

    def test_window_filled_even_on_exception(self):
        stats = IOStats()
        try:
            with stats.window() as w:
                stats.record_write(0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert w.writes == 1


class TestBalance:
    def test_busiest_disk(self):
        stats = IOStats()
        stats.record_read(0)
        stats.record_write(2)
        stats.record_write(2)
        assert stats.busiest_disk() == 2

    def test_imbalance_uniform(self):
        stats = IOStats()
        for disk in range(4):
            stats.record_read(disk)
        assert stats.imbalance() == 1.0

    def test_imbalance_skewed(self):
        stats = IOStats()
        stats.record_read(0, pages=9)
        stats.record_read(1, pages=1)
        assert stats.imbalance() == 1.8
