"""Buffer frames.

A :class:`Frame` is one page-sized slot of the buffer pool.  Besides the
payload it tracks what the recovery protocols need to know:

* ``dirty`` — the in-buffer copy differs from the on-disk copy;
* ``modifiers`` — ids of transactions with *uncommitted* modifications
  to this page (one under page locking; possibly several under record
  locking, where the paper notes concurrent transactions share pages);
* ``pin_count`` — pinned frames are never evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Frame:
    """One buffer slot.

    Attributes:
        page_id: logical page held, or None when the frame is free.
        payload: current in-buffer page contents.
        dirty: True when the payload differs from the on-disk copy.
        pin_count: number of outstanding pins; evictable only at zero.
        modifiers: ids of transactions with uncommitted changes here.
    """

    page_id: int | None = None
    payload: bytes = b""
    dirty: bool = False
    pin_count: int = 0
    modifiers: set = field(default_factory=set)

    @property
    def in_use(self) -> bool:
        """True when the frame holds a page."""
        return self.page_id is not None

    @property
    def uncommitted(self) -> bool:
        """True when some active transaction has modified this page."""
        return bool(self.modifiers)

    def clear(self) -> None:
        """Return the frame to the free state."""
        self.page_id = None
        self.payload = b""
        self.dirty = False
        self.pin_count = 0
        self.modifiers.clear()
