"""Synthetic workloads matching the paper's model parameters.

The analytical model (Section 5) characterizes load with:

* ``P``  — concurrent transactions,
* ``s``  — pages referenced per transaction,
* ``f_u`` — fraction of update transactions,
* ``p_u`` — probability an accessed page is modified (update txns),
* ``p_b`` — probability a transaction aborts,
* ``C``  — *communality*: the probability a referenced page is already
  in the database buffer.

:class:`WorkloadGenerator` draws transaction scripts from those knobs.
Communality is induced directly: with probability ``C`` the next
reference is drawn from the currently-buffered pages, otherwise
uniformly from the whole database (which can still hit the buffer, so
the measured hit ratio comes out slightly above ``C`` — the same
direction Reuter's model rounds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ModelError
from ..storage.page import PAGE_SIZE


@dataclass(frozen=True)
class WorkloadSpec:
    """The paper's workload knobs (defaults = high-update environment).

    The two environments evaluated in Figures 9-12:

    * high update:    ``s=10, f_u=0.8, p_u=0.9``
    * high retrieval: ``s=40, f_u=0.1, p_u=0.3``

    with ``P=6`` and ``p_b=0.01`` in both.
    """

    concurrency: int = 6          # P
    pages_per_txn: int = 10       # s
    update_txn_fraction: float = 0.8   # f_u
    update_probability: float = 0.9    # p_u
    abort_probability: float = 0.01    # p_b
    communality: float = 0.5           # C
    skew: float = 0.0             # Zipf exponent for page popularity

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ModelError("concurrency (P) must be >= 1")
        if self.pages_per_txn < 1:
            raise ModelError("pages_per_txn (s) must be >= 1")
        if self.skew < 0.0:
            raise ModelError("skew must be non-negative")
        for name in ("update_txn_fraction", "update_probability",
                     "abort_probability", "communality"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value}")


HIGH_UPDATE = WorkloadSpec(pages_per_txn=10, update_txn_fraction=0.8,
                           update_probability=0.9)
"""The paper's high-update-frequency environment."""

HIGH_RETRIEVAL = WorkloadSpec(pages_per_txn=40, update_txn_fraction=0.1,
                              update_probability=0.3)
"""The paper's high-retrieval-frequency environment."""


@dataclass(frozen=True)
class Access:
    """One page reference in a transaction script."""

    page: int
    update: bool


@dataclass
class TransactionScript:
    """A planned transaction: its accesses and its fate.

    Attributes:
        accesses: page references in order.
        is_update: whether this is an update transaction (f_u draw).
        wants_abort: the p_b draw — the driver aborts it at the end.
    """

    accesses: list = field(default_factory=list)
    is_update: bool = False
    wants_abort: bool = False

    @property
    def update_pages(self) -> set:
        """Distinct pages this script modifies."""
        return {a.page for a in self.accesses if a.update}


class WorkloadGenerator:
    """Draws :class:`TransactionScript` objects for a database.

    Args:
        spec: the workload knobs.
        num_pages: S, the database size in pages.
        seed: RNG seed (scripts are deterministic given the seed and the
            sequence of ``buffered_pages`` snapshots passed in).
    """

    def __init__(self, spec: WorkloadSpec, num_pages: int,
                 seed: int = 0) -> None:
        if num_pages < 1:
            raise ModelError("num_pages must be >= 1")
        self.spec = spec
        self.num_pages = num_pages
        self.rng = random.Random(seed)
        self._zipf_cdf = None
        if spec.skew > 0.0:
            weights = [1.0 / (rank + 1) ** spec.skew
                       for rank in range(num_pages)]
            total = sum(weights)
            cumulative, running = [], 0.0
            for weight in weights:
                running += weight / total
                cumulative.append(running)
            self._zipf_cdf = cumulative

    def _zipf_page(self) -> int:
        """Draw from the Zipf popularity distribution (page id = rank)."""
        from bisect import bisect_left
        return min(self.num_pages - 1,
                   bisect_left(self._zipf_cdf, self.rng.random()))

    def _draw_page(self, buffered) -> int:
        if buffered and self.rng.random() < self.spec.communality:
            return self.rng.choice(buffered)
        if self._zipf_cdf is not None:
            return self._zipf_page()
        return self.rng.randrange(self.num_pages)

    def next_script(self, buffered_pages=()) -> TransactionScript:
        """Draw one transaction script.

        Args:
            buffered_pages: snapshot of currently-buffered page ids, used
                to realize the communality ``C``.
        """
        spec = self.spec
        buffered = list(buffered_pages)
        is_update = self.rng.random() < spec.update_txn_fraction
        accesses = []
        for _ in range(spec.pages_per_txn):
            page = self._draw_page(buffered)
            update = is_update and self.rng.random() < spec.update_probability
            accesses.append(Access(page=page, update=update))
        wants_abort = is_update and self.rng.random() < spec.abort_probability
        return TransactionScript(accesses=accesses, is_update=is_update,
                                 wants_abort=wants_abort)

    def payload_for(self, page: int, version: int) -> bytes:
        """Page payload for an update: a pure function of (page,
        version), so a recorded trace replays to identical bytes.

        Inlines :func:`~repro.storage.page.make_page`'s repeat-to-fill
        (same bytes) — this runs once per simulated update."""
        pattern = f"p{page}v{version}.".encode("ascii")
        reps = -(-PAGE_SIZE // len(pattern))
        return (pattern * reps)[:PAGE_SIZE]
