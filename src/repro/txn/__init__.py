"""Transactions and locking."""

from .locks import Grant, LockManager, LockMode
from .manager import TransactionManager
from .transaction import Transaction, TxnState

__all__ = [
    "Grant",
    "LockManager",
    "LockMode",
    "TransactionManager",
    "Transaction",
    "TxnState",
]
