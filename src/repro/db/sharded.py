"""K-way sharded engine: hash-partitioned parity domains + group commit.

A :class:`ShardedDatabase` splits the page space across ``K``
independent :class:`~repro.db.database.Database` engines ("shards"),
each owning its own disk array (a private parity domain), buffer pool,
lock table, and WAL.  Pages route by ``page mod K``; a global
transaction keeps one id on every shard it touches, so the facade
exposes exactly the single-engine API and the simulator, conformance
harness, and fault injector drive it unchanged.

Why shard a *recovery* model?  Two of the paper's costs scale with the
domain, not the database:

* **Media rebuild** reads every surviving disk of the failed disk's
  array.  K parity domains make the rebuild unit ``1/K`` of the data.
* **The Figure 3 rule** (one unlogged uncommitted page per parity
  group) serializes unlogged steals per group; independent domains
  multiply the groups and spread the dirty set.

The price is commit: a transaction spanning shards must force several
logs.  The shared :class:`~repro.wal.group_commit.GroupCommitCoordinator`
batches those forces — every log force requested while a commit runs is
deferred, and one batched flush covers every ``flush_horizon`` commits,
so H commits' records ride the same log-page transfers.

**Crash contract (cross-shard atomicity).**  Classical two-phase commit
cannot be retrofitted here: RDA commit processing flips parity twins,
which destroys the undo information, so a shard cannot "prepare" and
later roll back.  Instead the model adopts the group-commit durability
contract: :meth:`ShardedDatabase.crash` first drains the coordinator
(the semantics of a battery-backed log buffer), so every acknowledged
commit is durable on every shard before main memory is lost.  Each
shard then restarts independently; :meth:`recover` cross-checks that no
globally committed transaction surfaced as a loser on any shard.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..errors import ModelError, RecoveryError, TransactionError
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, LabelledTracer
from ..storage import IOStats
from ..wal import CommitRecord, GroupCommitCoordinator, GroupCommitLog
from .config import DBConfig
from .database import Database


class ShardScheduler:
    """Deterministic round-robin order for cross-shard operations.

    Each call to :meth:`order` yields every shard exactly once,
    starting one past where the previous call started, so multi-shard
    work (commit processing, checkpoints) spreads evenly instead of
    always hammering shard 0 first.  Purely counter-driven — the
    schedule is a function of the operation count, never of wall time.
    """

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self._start = 0

    def order(self) -> list:
        """Shard indices for the next cross-shard operation."""
        start = self._start
        self._start = (self._start + 1) % self.num_shards
        return [(start + i) % self.num_shards
                for i in range(self.num_shards)]


def shard_config(config: DBConfig, shards: int) -> DBConfig:
    """The per-shard configuration: groups and buffer split K ways.

    Each shard gets ``ceil(G / K)`` parity groups (so the union covers
    at least the requested S pages) and a proportional slice of the
    buffer, floored at the 2-frame minimum a pool needs to make
    progress.
    """
    return replace(config,
                   num_groups=max(1, math.ceil(config.num_groups / shards)),
                   buffer_capacity=max(2, math.ceil(
                       config.buffer_capacity / shards)))


# ---------------------------------------------------------------- facade views


class _StatsView:
    """Read-only aggregate of every shard's IOStats plus the commit log's."""

    def __init__(self, parts: list) -> None:
        self._parts = parts

    @property
    def reads(self) -> int:
        return sum(p.reads for p in self._parts)

    @property
    def writes(self) -> int:
        return sum(p.writes for p in self._parts)

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def log_transfers(self) -> int:
        return sum(p.log_transfers for p in self._parts)

    def snapshot(self):
        from ..storage.iostats import TransferCounts
        return TransferCounts(self.reads, self.writes)


class _BufferStatsView:
    """Summed :class:`~repro.buffer.pool.BufferStats` across shards."""

    def __init__(self, shards: list) -> None:
        self._shards = shards

    def _sum(self, attr: str) -> int:
        return sum(getattr(s.buffer.stats, attr) for s in self._shards)

    hits = property(lambda self: self._sum("hits"))
    misses = property(lambda self: self._sum("misses"))
    evictions = property(lambda self: self._sum("evictions"))
    dirty_evictions = property(lambda self: self._sum("dirty_evictions"))
    steals = property(lambda self: self._sum("steals"))

    @property
    def references(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.references == 0:
            return 0.0
        return self.hits / self.references


class _BufferFacade:
    """The slice of the BufferPool API drivers use, globalized."""

    def __init__(self, owner: "ShardedDatabase") -> None:
        self._owner = owner
        self.stats = _BufferStatsView(owner.shards)

    def resident_pages(self) -> list:
        """Sorted *global* ids of pages buffered on any shard."""
        owner = self._owner
        pages = [local * owner.num_shards + i
                 for i, shard in enumerate(owner.shards)
                 for local in shard.buffer.resident_pages()]
        return sorted(pages)

    def __contains__(self, page: int) -> bool:
        shard, local = self._owner._route(page)
        return local in self._owner.shards[shard].buffer


class _TxnView:
    """One global transaction, seen across its shards."""

    def __init__(self, owner: "ShardedDatabase", txn_id: int) -> None:
        self._owner = owner
        self.txn_id = txn_id

    def _parts(self) -> list:
        return [shard.txns.get(self.txn_id) for shard in self._owner.shards]

    @property
    def must_commit(self) -> bool:
        """Pinned if any shard lost this transaction's undo to media."""
        return any(t.must_commit for t in self._parts())

    @property
    def is_active(self) -> bool:
        return self._parts()[0].is_active

    @property
    def state(self):
        return self._parts()[0].state

    @property
    def is_update_transaction(self) -> bool:
        return any(t.is_update_transaction for t in self._parts())


class _TxnFacade:
    """Registry view: ids are global, state is the union of shards."""

    def __init__(self, owner: "ShardedDatabase") -> None:
        self._owner = owner

    def get(self, txn_id: int) -> _TxnView:
        self._owner.shards[0].txns.get(txn_id)      # raise on unknown id
        return _TxnView(self._owner, txn_id)

    def active_transactions(self) -> list:
        # every shard registers every global txn, so shard 0 is canonical
        return [_TxnView(self._owner, t.txn_id)
                for t in self._owner.shards[0].txns.active_transactions()]


class _CountersView:
    """Summed :class:`~repro.db.database.WriteCounters` across shards."""

    def __init__(self, shards: list) -> None:
        self._shards = shards

    def _sum(self, attr: str) -> int:
        return sum(getattr(s.counters, attr) for s in self._shards)

    unlogged_steals = property(lambda self: self._sum("unlogged_steals"))
    logged_steals = property(lambda self: self._sum("logged_steals"))
    committed_writebacks = property(
        lambda self: self._sum("committed_writebacks"))
    before_images_logged = property(
        lambda self: self._sum("before_images_logged"))
    promotions = property(lambda self: self._sum("promotions"))

    @property
    def transactions_committed(self) -> int:
        # global commits are counted once by the facade, not per shard
        return self._shards[0].counters.transactions_committed

    @property
    def transactions_aborted(self) -> int:
        return self._shards[0].counters.transactions_aborted

    @property
    def steals(self) -> int:
        return self.unlogged_steals + self.logged_steals

    @property
    def unlogged_fraction(self) -> float:
        if self.steals == 0:
            return 0.0
        return self.unlogged_steals / self.steals


class _CheckpointerFacade:
    """Drives every shard's ACC checkpointer in lockstep."""

    def __init__(self, owner: "ShardedDatabase") -> None:
        self._owner = owner

    def note_work(self, cost: float) -> None:
        for shard in self._owner.shards:
            shard.checkpointer.note_work(cost)

    def maybe_checkpoint(self):
        """Returns the list of shard checkpoint LSNs, or None if no
        shard's interval elapsed (they share one interval, so normally
        all fire together)."""
        lsns = [shard.checkpointer.maybe_checkpoint()
                for shard in self._owner.shards]
        fired = [lsn for lsn in lsns if lsn is not None]
        return fired or None

    def checkpoint(self) -> list:
        return [shard.checkpointer.checkpoint()
                for shard in self._owner.shards]


class _ShardedMetrics:
    """Merged snapshot: the facade's own registry plus each shard's,
    re-keyed with a ``shard`` label so series never collide."""

    def __init__(self, own: MetricsRegistry, shard_registries: list) -> None:
        self._own = own
        self._shards = shard_registries

    @staticmethod
    def _relabel(key: str, shard: int) -> str:
        name, sep, rest = key.partition("{")
        labels = [f"shard={shard}"]
        if sep:
            labels.extend(rest[:-1].split(","))
        return name + "{" + ",".join(sorted(labels)) + "}"

    def snapshot(self) -> dict:
        merged = self._own.snapshot()
        for shard, registry in enumerate(self._shards):
            snap = registry.snapshot()
            for kind, series in snap.items():
                target = merged.setdefault(kind, {})
                for key, value in series.items():
                    target[self._relabel(key, shard)] = value
        return merged


# ---------------------------------------------------------------- the facade


class ShardedDatabase:
    """K independent engines behind the single-engine ``Database`` API.

    Args:
        config: the *global* configuration; groups and buffer frames
            are split across shards via :func:`shard_config`.
        shards: K, the number of parity domains / engines.
        flush_horizon: commits per batched group-commit flush (1 =
            classical per-commit forcing).
        tracer: shared tracer; each shard emits through a
            :class:`~repro.obs.tracer.LabelledTracer` stamped
            ``shard=i``, so one trace interleaves every shard.
        metrics: optional registry for facade-level series (group
            commit, commit log); shard series are kept in private
            registries and merged into :meth:`MetricsRegistry.snapshot`
            output with a ``shard`` label.
        history: optional :class:`~repro.check.history.HistoryRecorder`;
            records the *global* operation stream (global page ids).
    """

    def __init__(self, config: DBConfig, shards: int = 2,
                 flush_horizon: int = 1, tracer=None, metrics=None,
                 history=None) -> None:
        if shards < 1:
            raise ModelError("shards (K) must be at least 1")
        self.config = config
        self.num_shards = shards
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.history = history
        self.scheduler = ShardScheduler(shards)
        self.coordinator = GroupCommitCoordinator(
            flush_horizon=flush_horizon, metrics=metrics)

        self._own_metrics = metrics
        shard_registries = ([MetricsRegistry() for _ in range(shards)]
                            if metrics is not None else [None] * shards)
        self.metrics = (_ShardedMetrics(metrics, shard_registries)
                        if metrics is not None else None)

        per_shard = shard_config(config, shards)
        self.shards = [
            Database(per_shard,
                     tracer=(LabelledTracer(self.tracer, shard=i)
                             if self.tracer.enabled else self.tracer),
                     metrics=shard_registries[i],
                     log_factory=self._shard_log_factory)
            for i in range(shards)
        ]

        # the global commit log: one duplexed record stream of global
        # commit decisions, forced through the same coordinator
        self._commit_stats = IOStats()
        self.commit_log = GroupCommitLog(
            name="gcommit", page_size=config.log_page_size,
            transfers_per_log_page=config.log_transfers_per_page,
            stats=self._commit_stats, metrics=metrics,
            coordinator=self.coordinator)

        self.stats = _StatsView([s.stats for s in self.shards]
                                + [self._commit_stats])
        self.buffer = _BufferFacade(self)
        self.txns = _TxnFacade(self)
        self.counters = _CountersView(self.shards)
        self.checkpointer = (_CheckpointerFacade(self)
                             if self.shards[0].checkpointer is not None
                             else None)
        self._next_txn = 1

    # -- construction helpers ------------------------------------------------

    def _shard_log_factory(self, db: Database, name: str) -> GroupCommitLog:
        """Per-shard WALs that defer their forces to the coordinator."""
        return GroupCommitLog(
            name=name, page_size=db.config.log_page_size,
            transfers_per_log_page=db.config.log_transfers_per_page,
            stats=db.stats, metrics=db.metrics,
            coordinator=self.coordinator)

    # -- routing -------------------------------------------------------------

    def _route(self, page: int) -> tuple:
        """Global page id -> (shard index, shard-local page id)."""
        if not 0 <= page < self.num_data_pages:
            raise ModelError(f"page {page} outside 0..{self.num_data_pages - 1}")
        return page % self.num_shards, page // self.num_shards

    def global_page(self, shard: int, local: int) -> int:
        """Inverse of :meth:`_route`."""
        return local * self.num_shards + shard

    @property
    def num_data_pages(self) -> int:
        """S: logical pages across every shard."""
        return self.num_shards * self.shards[0].num_data_pages

    # -- history (global ids) ------------------------------------------------

    def _h(self, op: str, **attrs) -> None:
        if self.history is None:
            return
        event = self.history.record(op, **attrs)
        if self.tracer.enabled:
            row = event.to_dict()
            del row["op"]
            self.tracer.emit("history." + op, **row)

    # -- bulk loading --------------------------------------------------------

    def load_pages(self, payloads: dict) -> None:
        """Bulk-load initial contents (routed full-stripe writes)."""
        split: list = [{} for _ in range(self.num_shards)]
        for page, payload in payloads.items():
            shard, local = self._route(page)
            split[shard][local] = payload
        for shard, part in zip(self.shards, split):
            if part:
                shard.load_pages(part)

    def format_record_pages(self, pages) -> None:
        """Initialize the given global pages as empty slotted pages."""
        split: list = [[] for _ in range(self.num_shards)]
        for page in pages:
            shard, local = self._route(page)
            split[shard].append(local)
        for shard, part in zip(self.shards, split):
            if part:
                shard.format_record_pages(part)

    # -- transaction API -----------------------------------------------------

    def begin(self, txn_id: int | None = None) -> int:
        """Start a global transaction: one id, registered on every
        shard (a shard it never touches just finishes it read-only)."""
        if txn_id is None:
            txn_id = self._next_txn
        self._next_txn = max(self._next_txn, txn_id + 1)
        for shard in self.shards:
            shard.begin(txn_id=txn_id)
        self._h("begin", txn=txn_id)
        return txn_id

    def grants_for(self, txn_id: int) -> bool:
        """True when no shard holds a pending wait for the transaction."""
        return all(shard.grants_for(txn_id) for shard in self.shards)

    def read_page(self, txn_id: int, page: int) -> bytes:
        shard, local = self._route(page)
        value = self.shards[shard].read_page(txn_id, local)
        self._h("read", txn=txn_id, page=page)
        return value

    def write_page(self, txn_id: int, page: int, payload: bytes) -> None:
        shard, local = self._route(page)
        self.shards[shard].write_page(txn_id, local, payload)
        self._h("write", txn=txn_id, page=page)

    def read_record(self, txn_id: int, page: int, slot: int) -> bytes:
        shard, local = self._route(page)
        value = self.shards[shard].read_record(txn_id, local, slot)
        self._h("read", txn=txn_id, page=page, slot=slot)
        return value

    def update_record(self, txn_id: int, page: int, slot: int,
                      data: bytes) -> None:
        shard, local = self._route(page)
        self.shards[shard].update_record(txn_id, local, slot, data)
        self._h("write", txn=txn_id, page=page, slot=slot)

    def insert_record(self, txn_id: int, page: int, data: bytes) -> int:
        shard, local = self._route(page)
        slot = self.shards[shard].insert_record(txn_id, local, data)
        self._h("write", txn=txn_id, page=page, slot=slot)
        return slot

    def delete_record(self, txn_id: int, page: int, slot: int) -> bytes:
        shard, local = self._route(page)
        value = self.shards[shard].delete_record(txn_id, local, slot)
        self._h("write", txn=txn_id, page=page, slot=slot)
        return value

    # -- EOT -----------------------------------------------------------------

    def commit(self, txn_id: int) -> None:
        """Commit on every shard inside one group-commit window.

        Each shard runs its normal commit processing (FORCE flushes,
        EOT records, RDA twin flips); the log forces those request are
        absorbed by the coordinator, then the global commit record is
        appended and the whole batch rides the next horizon flush.
        """
        with self.coordinator.deferred():
            for i in self.scheduler.order():
                self.shards[i].commit(txn_id)
            self.commit_log.append(CommitRecord(txn_id=txn_id))
            self.commit_log.force()
        self.coordinator.note_commit()
        self._h("commit", txn=txn_id)

    def abort(self, txn_id: int) -> None:
        """Roll back on every shard.  Never deferred: abort undo must be
        durable before the facade acknowledges (the WAL rule)."""
        for i in self.scheduler.order():
            self.shards[i].abort(txn_id)
        self._h("abort", txn=txn_id)

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self) -> list:
        """Take an ACC checkpoint on every shard (¬FORCE only)."""
        if self.checkpointer is None:
            raise TransactionError(
                "FORCE/TOC configurations take no checkpoints")
        return self.checkpointer.checkpoint()

    def trim_log(self, archive_floor: int | None = None) -> int:
        """Trim every shard's log; returns total records discarded.

        The coordinator is drained first: trimming records whose force
        is still batch-deferred is safe only via the crash contract,
        and draining keeps every log's forced horizon pointing at
        bytes that actually exist."""
        self.coordinator.flush()
        return sum(shard.trim_log(archive_floor=archive_floor)
                   for shard in self.shards)

    # -- failures ------------------------------------------------------------

    def crash(self) -> None:
        """Lose main memory on every shard.

        The coordinator is drained *first* — the group-commit crash
        contract — so every acknowledged commit is durable everywhere
        before any log tail is truncated.
        """
        self.tracer.emit("db.crash")
        self._h("crash")
        self.coordinator.flush()
        for shard in self.shards:
            shard.crash()
        self.commit_log.crash()

    def recover(self, fault_hook=None) -> dict:
        """Restart every shard independently, then cross-check.

        Returns the aggregated recovery statistics with per-shard
        details under ``"shards"``.  Raises
        :class:`~repro.errors.RecoveryError` if a globally committed
        transaction surfaced as a loser on any shard — impossible under
        the crash contract, so it is checked, not handled.
        """
        # facade-level restart span: unlabeled (no shard attr), so MTTR
        # accounting sees one crash-to-ready interval covering all K
        # shard restarts (each shard emits its own labeled spans inside)
        with self.tracer.span("recovery.restart", stats=self.stats,
                              log_split=True, shards=self.num_shards):
            self.commit_log.after_crash()
            global_winners = {r.txn_id
                              for r in self.commit_log.scan(CommitRecord)}
            per_shard = []
            for i in self.scheduler.order():
                per_shard.append((i, self.shards[i].recover(
                    fault_hook=fault_hook)))
            per_shard.sort(key=lambda item: item[0])

            winners: set = set(global_winners)
            losers: set = set()
            totals = dict.fromkeys(
                ("sectors_repaired", "parity_resynced",
                 "parity_undone_pages", "redo_applied", "log_undo_applied",
                 "page_transfers"), 0)
            for i, stats in per_shard:
                winners.update(stats["winners"])
                losers.update(stats["losers"])
                for key in totals:
                    totals[key] += stats[key]
                torn = global_winners.intersection(stats["losers"])
                if torn:
                    raise RecoveryError(
                        f"shard {i} lost globally committed transaction(s) "
                        f"{sorted(torn)}: the group-commit crash contract "
                        "was violated")
            self._h("restart")
        return {
            "winners": sorted(winners),
            "losers": sorted(losers - winners),
            **totals,
            "shards": {i: stats for i, stats in per_shard},
        }

    @property
    def disks_per_shard(self) -> int:
        return len(self.shards[0].array.disks)

    @property
    def num_disks(self) -> int:
        """Disks across every shard (global disk-id space)."""
        return self.num_shards * self.disks_per_shard

    def _route_disk(self, disk_id: int) -> tuple:
        """Global disk id -> (shard index, shard-local disk id).

        Global ids enumerate shard 0's disks first, then shard 1's, …
        """
        if not 0 <= disk_id < self.num_disks:
            raise ModelError(
                f"disk {disk_id} outside 0..{self.num_disks - 1}")
        return divmod(disk_id, self.disks_per_shard)

    def media_failure(self, disk_id: int) -> None:
        """Fail-stop one disk (global disk id; see :meth:`_route_disk`)."""
        shard, local = self._route_disk(disk_id)
        self.shards[shard].media_failure(local)

    def media_recover(self, disk_id: int, on_lost_undo: str = "raise"):
        """Rebuild one failed disk within its shard's parity domain."""
        shard, local = self._route_disk(disk_id)
        return self.shards[shard].media_recover(local,
                                                on_lost_undo=on_lost_undo)

    # -- inspection ----------------------------------------------------------

    def disk_page(self, page: int) -> bytes:
        shard, local = self._route(page)
        return self.shards[shard].disk_page(local)

    def committed_view(self, page: int) -> bytes:
        shard, local = self._route(page)
        return self.shards[shard].committed_view(local)

    def verify_parity(self) -> list:
        """(shard, group) pairs whose parity disagrees (should be [])."""
        return [(i, group) for i, shard in enumerate(self.shards)
                for group in shard.verify_parity()]

    def statistics(self) -> dict:
        """Aggregated monitoring snapshot plus sharding/commit extras."""
        stats = {
            "page_transfers": self.stats.total,
            "reads": self.stats.reads,
            "writes": self.stats.writes,
            "buffer_hit_ratio": self.buffer.stats.hit_ratio,
            "buffer_steals": self.buffer.stats.steals,
            "unlogged_steals": self.counters.unlogged_steals,
            "logged_steals": self.counters.logged_steals,
            "before_images_logged": self.counters.before_images_logged,
            "promotions": self.counters.promotions,
            "transactions_committed": self.counters.transactions_committed,
            "transactions_aborted": self.counters.transactions_aborted,
            "active_transactions": len(self.txns.active_transactions()),
            "undo_log_bytes": sum(s.undo_log.size_bytes
                                  for s in self.shards),
            "redo_log_bytes": sum(s.redo_log.size_bytes
                                  for s in self.shards),
            "dirty_groups": sum(len(s.rda.dirty_set) for s in self.shards
                                if s.rda is not None),
            "shards": self.num_shards,
            "flush_horizon": self.coordinator.flush_horizon,
            "commit_log_bytes": self.commit_log.size_bytes,
            "deferred_forces": self.coordinator.deferred_forces,
            "batched_flushes": self.coordinator.flushes,
        }
        return stats
