"""Twin-parity disk array (paper Section 4.2, Figures 4-6).

Each parity group has **two** parity pages ("twins") on two distinct
disks.  At any moment one twin holds the parity of the group's last
*committed* state; when an uncommitted transaction's page is written
into the group, the *other* twin receives the new parity, leaving the
committed twin untouched so that

    D_old = P_working XOR P_committed XOR D_new

can undo the write without any UNDO log record.

This module provides the *mechanics* only: twin reads/writes with
headers, the combined small-write protocol, twin selection, and media
rebuild.  The *policy* — which twin to update when, group clean/dirty
state, the Dirty_Set table, commit/abort handling — lives in
:mod:`repro.core`.

Write-cost accounting matches the paper's model:

* updating one twin: 4 page transfers (3 with the old data buffered) —
  the same ``a`` as a single-parity array;
* updating both twins (writes into a *dirty* group): 2 extra transfers,
  the model's ``a + 2`` / ``3 + 2*p_l`` term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnrecoverableDataError
from .array import DiskArray
from .geometry import Geometry
from .page import (PAGE_SIZE, ParityHeader, TwinState, compute_parity,
                   xor_blocks, xor_pages)
from .pagebuf import POOL


@dataclass(frozen=True)
class TwinUpdate:
    """One parity-twin update inside a small write.

    Attributes:
        source: twin index (0/1) whose *current contents* seed the new
            parity.  For the first steal into a clean group this is the
            committed twin; for an in-place update it equals ``target``.
        target: twin index to write the new parity into.
        header: header to stamp on the target twin.
    """

    source: int
    target: int
    header: ParityHeader


class BatchTwinWrite:
    """One page's worth of a commit-window batch (see
    :meth:`TwinParityArray.small_write_batch`).

    A plain ``__slots__`` record rather than a dataclass: one is built
    per write-back on the hot path, and frozen-dataclass construction
    costs show up in the commit profile.

    Attributes:
        page: logical data page to write.
        group: the page's parity group (precomputed by the caller).
        new_data: the page payload.
        update: the single :class:`TwinUpdate` for this page.
        old_data: buffered before-image, or None to read it from disk.
        twin_first: write the twin before the data page (steal ordering).
    """

    __slots__ = ("page", "group", "new_data", "update", "old_data",
                 "twin_first")

    def __init__(self, page: int, group: int, new_data: bytes,
                 update: TwinUpdate, old_data: bytes | None = None,
                 twin_first: bool = True) -> None:
        self.page = page
        self.group = group
        self.new_data = new_data
        self.update = update
        self.old_data = old_data
        self.twin_first = twin_first


@dataclass(frozen=True)
class RebuildReport:
    """Outcome of :meth:`TwinParityArray.rebuild_disk`.

    Attributes:
        slots_rebuilt: total slots written on the replacement disk.
        lost_undo_groups: dirty groups whose *committed* twin lived on
            the failed disk; their parity-encoded before-image is gone.
    """

    slots_rebuilt: int
    lost_undo_groups: tuple


@dataclass(frozen=True)
class DirtyGroupInfo:
    """What the core layer knows about a dirty group during rebuild.

    ``working_twin`` names the twin index currently holding the working
    parity — headers alone cannot distinguish the twins, because after a
    commit the superseded twin keeps its stale WORKING header on disk
    (commit is a main-memory bit flip; the log is the authority).
    """

    txn_id: int
    dirty_page_index: int
    working_timestamp: int
    working_twin: int


def select_current_twin(headers: tuple, committed_txns=None) -> int:
    """Index (0/1) of the twin holding the group's *valid* parity.

    Implements algorithm ``Current_Parity`` (paper Figure 7) extended
    with the four-state lifecycle of Figure 8: OBSOLETE and INVALID
    twins are never valid; a WORKING twin is valid only if its owning
    transaction is known committed (``committed_txns``) or if the caller
    passes ``committed_txns=None`` meaning "trust WORKING" (runtime use,
    where the in-memory Dirty_Set tracks ownership).

    Among valid candidates the larger timestamp wins, as in Figure 7.
    With no valid twin (e.g. a freshly formatted group), OBSOLETE twins
    are preferred over INVALID ones — an INVALID twin is *known* wrong
    (its transaction aborted), while an OBSOLETE twin on a never-updated
    group still matches the data.
    """
    candidates = []
    for index, header in enumerate(headers):
        if header.state is TwinState.COMMITTED:
            candidates.append(index)
        elif header.state is TwinState.WORKING:
            if committed_txns is None or header.txn_id in committed_txns:
                candidates.append(index)
    if not candidates:
        candidates = [i for i, h in enumerate(headers)
                      if h.state is not TwinState.INVALID]
    if not candidates:
        candidates = [0, 1]
    return max(candidates, key=lambda i: headers[i].timestamp)


class TwinParityArray(DiskArray):
    """Disk array with two parity pages per group (RDA substrate)."""

    supports_twins = True

    def __init__(self, geometry: Geometry, stats=None, tracer=None,
                 metrics=None) -> None:
        if not geometry.twin:
            raise ValueError("TwinParityArray requires a twin geometry")
        super().__init__(geometry, stats, tracer=tracer, metrics=metrics)
        self._clock = 0
        self.barrier_hook = None    # conformance seam (repro.check)

    # -- timestamps ---------------------------------------------------------------

    def next_timestamp(self) -> int:
        """Monotonically increasing stamp for twin ordering."""
        self._clock += 1
        return self._clock

    def observe_timestamp(self, timestamp: int) -> None:
        """Advance the clock past a stamp seen on disk (crash recovery)."""
        if timestamp > self._clock:
            self._clock = timestamp

    # -- twin I/O -------------------------------------------------------------------

    def read_twin(self, group: int, which: int) -> tuple:
        """Read one parity twin: ``(payload, header)``; 1 page transfer."""
        addr = self.geometry.parity_addresses(group)[which]
        return self.disks[addr.disk].read_with_header(addr.slot)

    def read_twins(self, group: int) -> tuple:
        """Read both twins: ``((payload, header), (payload, header))``;
        2 page transfers."""
        return (self.read_twin(group, 0), self.read_twin(group, 1))

    def write_twin(self, group: int, which: int, payload: bytes,
                   header: ParityHeader) -> None:
        """Write one parity twin (payload + header); 1 page transfer."""
        addr = self.geometry.parity_addresses(group)[which]
        self.disks[addr.disk].write_with_header(addr.slot, payload, header)

    def rewrite_twin_header(self, group: int, which: int,
                            header: ParityHeader) -> None:
        """Rewrite a twin in place with a new header (1 page transfer).

        Used to demote a twin to INVALID after an abort; the payload is
        unchanged but the sector must be rewritten.
        """
        addr = self.geometry.parity_addresses(group)[which]
        disk = self.disks[addr.disk]
        payload = disk.read(addr.slot)
        # the read above is part of the same rewrite; refund it so the
        # operation costs one transfer, like a real read-modify-write of
        # an in-controller-cached header sector would
        self.stats.reads -= 1
        self.stats.per_disk_reads[addr.disk] -= 1
        disk.read_count -= 1
        disk.write_with_header(addr.slot, payload, header)

    def peek_twin(self, group: int, which: int) -> tuple:
        """Uncounted twin read for tests: ``(payload, header)``."""
        addr = self.geometry.parity_addresses(group)[which]
        disk = self.disks[addr.disk]
        return disk.peek(addr.slot), disk.peek_header(addr.slot)

    # -- the small-write protocol -----------------------------------------------------

    def write_page(self, page: int, new_data: bytes,
                   old_data: bytes | None = None) -> None:
        """Generic small write (the :class:`StorageBackend` surface):
        update the page and the group's *current* parity twin, stamping
        it COMMITTED.  This is the parity-tracking write a non-RDA
        engine performs on a twin substrate — twin roles never change.
        RDA's steal/undo machinery bypasses this and drives
        :meth:`small_write` with explicit :class:`TwinUpdate` lists.
        """
        group = self.geometry.group_of(page)
        headers = tuple(self.peek_twin(group, which)[1]
                        for which in range(2))
        current = select_current_twin(headers)
        header = ParityHeader(timestamp=self.next_timestamp(),
                              state=TwinState.COMMITTED)
        self.small_write(page, new_data,
                         [TwinUpdate(current, current, header)],
                         old_data=old_data)

    def small_write(self, page: int, new_data: bytes, updates: list,
                    old_data: bytes | None = None,
                    twin_first: bool = False) -> None:
        """Write a data page, updating the listed parity twins.

        Each :class:`TwinUpdate` reads its ``source`` twin, XORs in the
        data delta (``old XOR new``), and writes the result to its
        ``target`` twin with the supplied header.  Transfer cost:
        ``1 read (old data, unless supplied) + len(updates) reads +
        1 write (data) + len(updates) writes``.

        ``twin_first`` writes the parity twins *before* the data page.
        This is the RDA analogue of the WAL rule: an unlogged steal's
        only undo information is the twin pair, so the working twin must
        be durable before the data overwrite — a crash between the two
        writes then leaves a WORKING header that restart can see, rather
        than an uncommitted page no recovery source knows about.

        Degraded behaviour: a failed twin disk is skipped (the group
        loses that twin until rebuild); a failed data disk absorbs the
        write into the surviving twins.
        """
        if len(new_data) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        if not updates:
            raise ValueError("small_write needs at least one TwinUpdate")
        if not self.tracer.enabled:
            self._small_write_inner(page, new_data, updates, old_data,
                                    twin_first)
        else:
            with self.stats.window() as window:
                self._small_write_inner(page, new_data, updates, old_data,
                                        twin_first)
            self.tracer.emit_costed("array.small_write", window, page=page,
                                    buffered=old_data is not None,
                                    twins=len(updates))
            if self._xfer_hist is not None:
                self._xfer_hist.observe(window.total)
        if self.barrier_hook is not None:
            self.barrier_hook("twin_write", page=page)

    def _small_write_inner(self, page: int, new_data: bytes, updates: list,
                           old_data: bytes | None,
                           twin_first: bool = False) -> None:
        addr = self.geometry.data_address(page)
        group = self.geometry.group_of(page)
        data_disk = self.disks[addr.disk]

        if data_disk.failed:
            old = self._reconstruct_data_page(page) if old_data is None else old_data
        else:
            old = data_disk.read(addr.slot) if old_data is None else old_data
        delta = xor_pages(old, new_data)

        new_payloads = {}
        for update in updates:
            twin_addr = self.geometry.parity_addresses(group)[update.source]
            if self.disks[twin_addr.disk].failed:
                continue
            if update.source in new_payloads and update.source == update.target:
                source_payload = new_payloads[update.source]
            else:
                source_payload, _ = self.read_twin(group, update.source)
            new_payloads[update.target] = xor_pages(source_payload, delta)

        if not twin_first and not data_disk.failed:
            data_disk.write(addr.slot, new_data)
        for update in updates:
            if update.target not in new_payloads:
                continue  # its source twin was on a failed disk
            target_addr = self.geometry.parity_addresses(group)[update.target]
            if self.disks[target_addr.disk].failed:
                continue
            self.write_twin(group, update.target, new_payloads[update.target],
                            update.header)
        if twin_first and not data_disk.failed:
            data_disk.write(addr.slot, new_data)

    def small_write_batch(self, ops: list, on_op=None,
                          event_attrs=None) -> None:
        """A commit window of single-twin small writes, batched.

        ``event_attrs`` lets the caller fold its own per-window
        bookkeeping (e.g. the recovery policy's ``first_steals``) into
        the single costed trace event this window emits, instead of
        paying for a second event per window.

        Semantically identical to calling :meth:`small_write` once per
        :class:`BatchTwinWrite` — same disk writes in the same order,
        same transfer counts, same per-page ``twin_write`` barrier —
        but the parity math runs as two pooled-slab kernel calls for
        the whole window (all K deltas, then all K new twin payloads)
        instead of 2K per-page ops, and the reads are hoisted ahead of
        the writes.  Read *order* is the only observable difference,
        which the conformance layer permits: the fault schedules and
        write-ordering invariants are defined over writes.

        The caller must guarantee: no failed disks, every op touches a
        distinct parity group, and exactly one twin update per op
        (the batched-run accumulation rules in
        :meth:`repro.db.policy.RecoveryPolicy.writeback_batch`).

        ``on_op(i)`` runs after op ``i``'s writes and barrier, so
        per-page bookkeeping (Dirty_Set, history events, invariant
        probes) interleaves with the write schedule exactly as on the
        legacy path.
        """
        if self.tracer.enabled:
            with self.stats.window() as window:
                self._small_write_batch_inner(ops, on_op)
            attrs = event_attrs if event_attrs is not None else {}
            attrs["pages"] = len(ops)
            attrs["buffered_pages"] = sum(1 for op in ops
                                          if op.old_data is not None)
            self.tracer.emit_costed("array.small_write_batch", window,
                                    **attrs)
        else:
            self._small_write_batch_inner(ops, on_op)

    def _small_write_batch_inner(self, ops: list, on_op) -> None:
        geometry = self.geometry
        disks = self.disks
        data_address = geometry.data_address
        parity_addresses = geometry.parity_addresses
        k = len(ops)
        if k == 1:
            # a one-page window pays slab checkout/fill for nothing —
            # about one in seven commit windows on the reference
            # workload; do the page math directly
            self._small_write_single(ops[0], on_op)
            return
        pool = POOL
        olds = pool.checkout(k)
        news = pool.checkout(k)
        twins = pool.checkout(k)
        costs = []
        addrs = []       # (data PhysAddr, target twin PhysAddr) per op
        try:
            offset = 0
            for op in ops:
                if len(op.new_data) != PAGE_SIZE:
                    raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
                end = offset + PAGE_SIZE
                addr = data_address(op.page)
                parity = parity_addresses(op.group)
                update = op.update
                addrs.append((addr, parity[update.target]))
                if op.old_data is None:
                    olds[offset:end] = disks[addr.disk].read(addr.slot)
                    costs.append(4)     # old read + twin read + 2 writes
                else:
                    olds[offset:end] = op.old_data
                    costs.append(3)
                news[offset:end] = op.new_data
                src = parity[update.source]
                payload, _ = disks[src.disk].read_with_header(src.slot)
                twins[offset:end] = payload
                offset = end
            deltas = xor_blocks(olds, news)
            twin_blob = xor_blocks(twins, deltas)
        finally:
            pool.giveback(olds)
            pool.giveback(news)
            pool.giveback(twins)

        hist = self._xfer_hist if self.tracer.enabled else None
        barrier = self.barrier_hook
        offset = 0
        for i, op in enumerate(ops):
            twin_payload = twin_blob[offset:offset + PAGE_SIZE]
            addr, taddr = addrs[i]
            if op.twin_first:
                disks[taddr.disk].write_with_header(taddr.slot, twin_payload,
                                                    op.update.header)
                disks[addr.disk].write(addr.slot, op.new_data)
            else:
                disks[addr.disk].write(addr.slot, op.new_data)
                disks[taddr.disk].write_with_header(taddr.slot, twin_payload,
                                                    op.update.header)
            if hist is not None:
                hist.observe(costs[i])
            if barrier is not None:
                barrier("twin_write", page=op.page)
            if on_op is not None:
                on_op(i)
            offset += PAGE_SIZE

    def _small_write_single(self, op, on_op) -> None:
        """One-op window: same schedule as the slab path, no slabs."""
        if len(op.new_data) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        disks = self.disks
        addr = self.geometry.data_address(op.page)
        parity = self.geometry.parity_addresses(op.group)
        update = op.update
        taddr = parity[update.target]
        if op.old_data is None:
            old = disks[addr.disk].read(addr.slot)
            cost = 4            # old read + twin read + 2 writes
        else:
            old = op.old_data
            cost = 3
        src = parity[update.source]
        twin, _ = disks[src.disk].read_with_header(src.slot)
        twin_payload = xor_pages(old, op.new_data, twin)
        if op.twin_first:
            disks[taddr.disk].write_with_header(taddr.slot, twin_payload,
                                                update.header)
            disks[addr.disk].write(addr.slot, op.new_data)
        else:
            disks[addr.disk].write(addr.slot, op.new_data)
            disks[taddr.disk].write_with_header(taddr.slot, twin_payload,
                                                update.header)
        if self.tracer.enabled and self._xfer_hist is not None:
            self._xfer_hist.observe(cost)
        if self.barrier_hook is not None:
            self.barrier_hook("twin_write", page=op.page)
        if on_op is not None:
            on_op(0)

    def write_data_only(self, page: int, payload: bytes) -> None:
        """Write a data page WITHOUT touching parity (1 page transfer).

        Only correct when the parity already reflects ``payload`` — the
        undo-via-parity path: restoring ``D_old`` makes the data match
        the committed twin again, so no parity update is needed.
        """
        if len(payload) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        addr = self.geometry.data_address(page)
        self.disks[addr.disk].write(addr.slot, payload)

    def full_stripe_write(self, group: int, payloads: list,
                          header: ParityHeader | None = None) -> None:
        """Bulk-load a whole group: N data pages + both twins.

        Twin 0 is stamped COMMITTED with a fresh timestamp, twin 1
        OBSOLETE; pass ``header`` to override twin 0's header.
        """
        pages = self.geometry.group_pages(group)
        if len(payloads) != len(pages):
            raise ValueError(
                f"group {group} has {len(pages)} data pages, got {len(payloads)}"
            )
        for page, payload in zip(pages, payloads):
            self._write_at(self.geometry.data_address(page), payload)
        parity = compute_parity(payloads)
        stamp = self.next_timestamp()
        committed = header if header is not None else ParityHeader(
            timestamp=stamp, state=TwinState.COMMITTED)
        self.write_twin(group, 0, parity, committed)
        self.write_twin(group, 1, parity,
                        ParityHeader(timestamp=0, state=TwinState.OBSOLETE))

    # -- reconstruction ------------------------------------------------------------------

    def _group_parity_for_reconstruction(self, group: int) -> bytes:
        """Twin payload matching the group's *current on-disk* data.

        The newest trusted twin (runtime ``select_current_twin`` rule)
        reflects the on-disk state: a WORKING twin includes the latest
        write, committed or stolen, and commit never rewrites the
        superseded twin — so stale WORKING and COMMITTED headers coexist
        and the timestamp is the authority.
        """
        (p0, h0), (p1, h1) = self.read_twins(group)
        which = select_current_twin((h0, h1))
        return (p0, p1)[which]

    def _group_consistent(self, group: int) -> bool:
        """Scrub check: the newest trusted twin must match the data
        (same selection rule as reconstruction)."""
        expected = compute_parity(self.group_data_payloads(group))
        payloads = []
        headers = []
        for which in range(2):
            payload, header = self.peek_twin(group, which)
            payloads.append(payload)
            headers.append(header)
        which = select_current_twin(tuple(headers))
        return payloads[which] == expected

    def rebuild_disk(self, disk_id: int, dirty_info: dict | None = None,
                     on_lost_undo: str = "raise") -> RebuildReport:
        """Replace ``disk_id`` and rebuild data slots and parity twins.

        Args:
            disk_id: the failed disk to replace.
            dirty_info: mapping ``group -> DirtyGroupInfo`` for groups
                currently dirty (supplied by the core layer's Dirty_Set);
                groups absent from the mapping are treated as clean.
            on_lost_undo: what to do when the failed disk held the
                *committed* twin of a dirty group (the parity-encoded
                before-image is unrecoverable): ``"raise"`` raises
                :class:`~repro.errors.UnrecoverableDataError`;
                ``"adopt"`` re-stamps a recomputed twin as COMMITTED
                (adopting the uncommitted contents) and reports the group
                in ``lost_undo_groups`` so the caller can pin the owning
                transaction to commit.

        Returns a :class:`RebuildReport`.
        """
        if on_lost_undo not in ("raise", "adopt"):
            raise ValueError("on_lost_undo must be 'raise' or 'adopt'")
        dirty_info = dirty_info or {}
        self._check_disk(disk_id)
        with self.tracer.span("array.rebuild", stats=self.stats,
                              disk=disk_id) as span:
            disk = self.disks[disk_id]
            disk.replace()
            rebuilt = 0
            lost_undo = []
            for slot, page in self.geometry.pages_on_disk(disk_id):
                payload = self._reconstruct_data_page(page)
                disk.write(slot, payload)
                rebuilt += 1
            for group in self.geometry.groups_with_parity_on(disk_id):
                addrs = self.geometry.parity_addresses(group)
                which_failed = next(i for i, a in enumerate(addrs)
                                    if a.disk == disk_id)
                lost = self._rebuild_twin(group, which_failed,
                                          dirty_info.get(group), on_lost_undo)
                if lost:
                    lost_undo.append(group)
                rebuilt += 1
            span.set(slots=rebuilt, lost_undo_groups=len(lost_undo))
        if self.metrics is not None:
            self.metrics.counter("array.rebuilds").inc()
        return RebuildReport(slots_rebuilt=rebuilt, lost_undo_groups=tuple(lost_undo))

    def _rebuild_twin(self, group: int, which: int, info, on_lost_undo: str) -> bool:
        """Recompute one twin of ``group``; returns True if undo was lost."""
        data = [self.read_page(p) for p in self.geometry.group_pages(group)]
        parity = compute_parity(data)
        _, survivor_header = self.read_twin(group, 1 - which)
        if info is None:
            # clean group: the recomputed twin becomes the committed one
            stamp = max(self.next_timestamp(), survivor_header.timestamp + 1)
            self.observe_timestamp(stamp)
            self.write_twin(group, which, parity,
                            ParityHeader(timestamp=stamp, state=TwinState.COMMITTED))
            return False
        if which == info.working_twin:
            # the failed twin was the WORKING one: recompute it (the data
            # already contains the stolen page, so parity-from-data IS the
            # working parity)
            self.write_twin(group, which, parity, ParityHeader(
                timestamp=info.working_timestamp,
                txn_id=info.txn_id,
                dirty_page_index=info.dirty_page_index,
                state=TwinState.WORKING,
            ))
            return False
        # the failed twin held the committed parity of a dirty group: the
        # parity-encoded before-image is gone
        if on_lost_undo == "raise":
            raise UnrecoverableDataError(
                f"group {group}: committed parity twin lost while dirty "
                f"(txn {info.txn_id}); before-image unrecoverable"
            )
        stamp = max(self.next_timestamp(), survivor_header.timestamp + 1)
        self.observe_timestamp(stamp)
        self.write_twin(group, which, parity,
                        ParityHeader(timestamp=stamp, state=TwinState.COMMITTED))
        return True
