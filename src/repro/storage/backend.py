"""The storage-backend protocol and registry.

Every array the engine can run on — twin-parity (RDA), single-parity
(classical RAID-5), the parity-striped placements of Gray et al., and
the double-parity RAID-6 tier — presents the same structural surface to
the database: read (with degraded reconstruction), write, full-stripe
write, fail/rebuild/scrub, and parity repair.  :class:`StorageBackend`
states that surface as a :class:`typing.Protocol`, so conformance is
checked *structurally* (mypy verifies every registered array satisfies
it; no inheritance required), and :func:`create_backend` constructs one
from a :class:`~repro.db.config.DBConfig` by registry name.

Twin-specific operations (``read_twin``/``write_twin``/``small_write``
and the Dirty_Set-steered rebuild) form the narrower
:class:`TwinBackend` protocol; a backend advertises that capability via
``supports_twins`` — the capability flag :mod:`repro.db.recovery` and
the policy layer branch on instead of ``isinstance`` checks.

Adding a backend is ~50 lines: implement the protocol (usually by
subclassing :class:`~repro.storage.array.DiskArray`), then::

    register_backend("my-layout", _make_my_layout, twin=False,
                     description="...")

after which ``DBConfig(backend="my-layout")`` and
``repro simulate --backend my-layout`` reach it with no engine changes.
See ``docs/architecture.md`` for the worked example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Protocol,
                    Tuple, runtime_checkable)

from ..errors import ModelError
from .array import SingleParityArray
from .geometry import Geometry, parity_striping_geometry
from .iostats import IOStats
from .raid6 import Raid6Array, raid6_geometry
from .twin_array import TwinParityArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.config import DBConfig


@runtime_checkable
class StorageBackend(Protocol):
    """The array surface the database engine is written against."""

    geometry: Geometry
    stats: IOStats
    disks: List
    supports_twins: bool

    @property
    def num_data_pages(self) -> int: ...

    # -- reads (including degraded reconstruction) --------------------------
    def read_page(self, page: int) -> bytes: ...
    def read_page_healing(self, page: int) -> bytes: ...
    def peek_page(self, page: int) -> bytes: ...
    def group_data_payloads(self, group: int) -> List: ...

    # -- writes -------------------------------------------------------------
    def write_page(self, page: int, new_data: bytes,
                   old_data: Optional[bytes] = None) -> None: ...
    def full_stripe_write(self, group: int, payloads: List) -> None: ...
    def rewrite_parity(self, group: int, data: List,
                       disk_id: Optional[int] = None) -> None: ...

    # -- failures, rebuild, scrub -------------------------------------------
    def fail_disk(self, disk_id: int) -> None: ...
    def failed_disks(self) -> List: ...
    def rebuild_disk(self, disk_id: int): ...
    def repair_page(self, page: int) -> bytes: ...
    def scrub(self) -> List: ...
    def scrub_repair(self) -> List: ...


@runtime_checkable
class TwinBackend(StorageBackend, Protocol):
    """The extended surface RDA recovery needs: parity twins with
    headers, timestamps, and a Dirty_Set-steered rebuild."""

    def small_write(self, page: int, new_data: bytes, updates: List,
                    old_data: Optional[bytes] = None,
                    twin_first: bool = False) -> None: ...
    def write_data_only(self, page: int, new_data: bytes) -> None: ...
    def read_twin(self, group: int, which: int) -> Tuple: ...
    def write_twin(self, group: int, which: int, payload: bytes,
                   header) -> None: ...
    def rewrite_twin_header(self, group: int, which: int, header) -> None: ...
    def peek_twin(self, group: int, which: int) -> Tuple: ...
    def next_timestamp(self) -> int: ...
    def observe_timestamp(self, stamp: int) -> None: ...


BackendFactory = Callable[["DBConfig", Optional[IOStats], object, object],
                          StorageBackend]


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry.

    Attributes:
        name: registry key (the ``DBConfig.backend`` value).
        factory: builds the array from ``(config, stats, tracer, metrics)``.
        twin: True when the backend satisfies :class:`TwinBackend`
            (required for ``rda=True`` configurations).
        description: one line for ``--help`` and docs.
    """

    name: str
    factory: BackendFactory
    twin: bool
    description: str


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(name: str, factory: BackendFactory, *, twin: bool,
                     description: str = "") -> BackendSpec:
    """Register (or replace) a backend under ``name``."""
    spec = BackendSpec(name=name, factory=factory, twin=twin,
                       description=description)
    _REGISTRY[name] = spec
    return spec


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_REGISTRY)


def backend_spec(name: str) -> BackendSpec:
    """Look up one registry entry.

    Raises:
        ModelError: unknown backend name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown storage backend {name!r}; choose from "
            f"{backend_names()}") from None


def resolve_backend_name(config: "DBConfig") -> str:
    """The backend a configuration runs on: its explicit ``backend``
    field, else the legacy default implied by ``rda``."""
    if config.backend is not None:
        return config.backend
    return "twin" if config.rda else "single"


def create_backend(config: "DBConfig", stats: Optional[IOStats] = None,
                   tracer=None, metrics=None) -> StorageBackend:
    """Construct the array for ``config`` via the registry.

    Raises:
        ModelError: unknown backend, or ``rda=True`` over a backend
            without twin support.
    """
    name = resolve_backend_name(config)
    spec = backend_spec(name)
    if config.rda and not spec.twin:
        raise ModelError(
            f"backend {name!r} has no parity twins; RDA recovery needs a "
            f"twin-capable backend (one of "
            f"{[s for s in backend_names() if _REGISTRY[s].twin]})")
    return spec.factory(config, stats, tracer, metrics)


# -- built-in backends -------------------------------------------------------


def _make_twin(config, stats, tracer, metrics) -> TwinParityArray:
    geometry = Geometry(config.group_size, config.num_groups, twin=True,
                        placement=config.placement)
    return TwinParityArray(geometry, stats=stats, tracer=tracer,
                           metrics=metrics)


def _make_single(config, stats, tracer, metrics) -> SingleParityArray:
    geometry = Geometry(config.group_size, config.num_groups, twin=False,
                        placement=config.placement)
    return SingleParityArray(geometry, stats=stats, tracer=tracer,
                             metrics=metrics)


def _make_parity_striped(config, stats, tracer, metrics) -> SingleParityArray:
    geometry = parity_striping_geometry(config.group_size, config.num_groups,
                                        twin=False)
    return SingleParityArray(geometry, stats=stats, tracer=tracer,
                             metrics=metrics)


def _make_twin_parity_striped(config, stats, tracer,
                              metrics) -> TwinParityArray:
    geometry = parity_striping_geometry(config.group_size, config.num_groups,
                                        twin=True)
    return TwinParityArray(geometry, stats=stats, tracer=tracer,
                           metrics=metrics)


def _make_raid6(config, stats, tracer, metrics) -> Raid6Array:
    geometry = raid6_geometry(config.group_size, config.num_groups)
    return Raid6Array(geometry, stats=stats, tracer=tracer, metrics=metrics)


register_backend(
    "twin", _make_twin, twin=True,
    description="twin-parity array (RDA recovery substrate); honors "
                "DBConfig.placement")
register_backend(
    "single", _make_single, twin=False,
    description="single-parity RAID-5 array; honors DBConfig.placement")
register_backend(
    "parity-striped", _make_parity_striped, twin=False,
    description="Gray parity striping (sequential data placement), "
                "single parity")
register_backend(
    "twin-parity-striped", _make_twin_parity_striped, twin=True,
    description="Gray parity striping with twin parity pages (Figure 5)")
register_backend(
    "raid6", _make_raid6, twin=False,
    description="double-parity P+Q array (two-erasure tolerant); "
                "always data-striped")


if TYPE_CHECKING:  # pragma: no cover - static protocol-conformance checks
    def _static_assert_backends(twin: TwinParityArray,
                                single: SingleParityArray,
                                striped: SingleParityArray,
                                raid6: Raid6Array) -> None:
        backends: List[StorageBackend] = [twin, single, striped, raid6]
        twins: List[TwinBackend] = [twin]
        del backends, twins
