"""Cost models for RECORD logging (paper Section 5.3).

Record locking is used, so concurrent transactions share pages (the
appendix's ``s_u`` counts the shared update pages) and the log carries
record-sized entries of average length ``L = (d r + (s - d) e)/s``
packed into physical pages of ``l_p`` bytes.

These equations are the *most legible* in the scan and are implemented
essentially as printed; reconstruction notes are inline.  The headline
shape: the RDA benefit is much smaller than under page logging (≈ +14%
at C = 0.9, high-update, ¬FORCE/ACC) but grows strongly with the number
of pages a transaction updates (Figure 13).
"""

from __future__ import annotations

from .params import ModelParams
from .probabilities import (average_log_entry_length,
                            concurrent_modifier_fraction,
                            geometric_chain_term, logging_probability,
                            optimal_checkpoint_interval,
                            replaced_page_modified, shared_update_pages,
                            stolen_before_eot)
from .throughput import (CostBreakdown, interval_throughput,
                         mean_transaction_cost)


def force_toc(params: ModelParams, rda: bool) -> CostBreakdown:
    """Record logging, FORCE + TOC (Section 5.3.1; Figure 11).

    As printed:

    * ``c_l  = 3 s p_u + 4 * 2 (2 l_bc + s p_u (l_bc + L)) / l_p``
    * ``c_l' = (3 + 2 p_l) s p_u + 4 (2 l_bc + s p_u (l_bc + L)) / l_p
      + 4 (2 l_bc + s p_u (l_bc + L) p_l + (l_bc + l_h)(p_l - p_l^{s p_u})) / l_p``
    * ``c_b  = P f_u (l_bc + s p_u (l_bc + L)/2) / l_p + 4 (p_u s / 2) + 4``
    * ``c_b' = P f_u (l_bc + s p_u (l_bc + L) p_l / 2 + (l_bc + l_h)
      (p_l - p_l^{s p_u})) / l_p + (p_u s / 2)(6 p_l + 5 (1 - p_l)) + 4``

    with ``K = s_u / 2`` in Eq. 5 (page locking's disjointness no longer
    holds, so the shared-page count replaces ``P f_u s p_u``).
    """
    p = params
    spu = p.s * p.p_u
    L = average_log_entry_length(p.d, p.r, p.s, p.e)
    c_r = p.s * (1.0 - p.C)
    if rda:
        s_u = shared_update_pages(p.B, p.C, p.s, p.p_u, p.P, p.f_u)
        p_l = logging_probability(s_u / 2.0, p.S, p.N)
        chain = geometric_chain_term(p_l, spu)
        c_l = ((3.0 + 2.0 * p_l) * spu
               + 4.0 * (2.0 * p.l_bc + spu * (p.l_bc + L)) / p.l_p
               + 4.0 * (2.0 * p.l_bc + spu * (p.l_bc + L) * p_l
                        + (p.l_bc + p.l_h) * chain) / p.l_p)
        c_b = (p.P * p.f_u * (p.l_bc + spu * (p.l_bc + L) * p_l / 2.0
                              + (p.l_bc + p.l_h) * chain) / p.l_p
               + (p.p_u * p.s / 2.0) * (6.0 * p_l + 5.0 * (1.0 - p_l))
               + 4.0)
        c_s = (p.P * p.f_u * (2.0 * p.l_bc + spu * (p.l_bc + L) * p_l
                              + 2.0 * (p.l_bc + p.l_h) * chain) / p.l_p
               + (p.P * p.f_u * p.p_u * p.s / 2.0)
               * (4.0 * p_l + 5.0 * (1.0 - p_l))
               + p.S / p.N)
    else:
        p_l = 1.0
        c_l = (3.0 * spu
               + 4.0 * 2.0 * (2.0 * p.l_bc + spu * (p.l_bc + L)) / p.l_p)
        c_b = (p.P * p.f_u * (p.l_bc + spu * (p.l_bc + L) / 2.0) / p.l_p
               + 4.0 * (p.p_u * p.s / 2.0)
               + 4.0)
        c_s = (p.P * p.f_u * (2.0 * p.l_bc + spu * (p.l_bc + L)) / p.l_p
               + 4.0 * p.P * p.f_u * (p.p_u * p.s / 2.0))
    c_u = p.s * (1.0 - p.C) + c_l + p.p_b * c_b
    c_E = mean_transaction_cost(p.f_u, c_r, c_u)
    r_t = interval_throughput(p.T, c_E, c_s=c_s)
    return CostBreakdown(algorithm="record FORCE/TOC", rda=rda, c_r=c_r,
                         c_u=c_u, c_l=c_l, c_b=c_b, c_c=0.0, c_s=c_s,
                         checkpoint_interval=None, p_l=p_l, c_E=c_E,
                         throughput=r_t)


def noforce_acc(params: ModelParams, rda: bool) -> CostBreakdown:
    """Record logging, ¬FORCE + ACC (Section 5.3.2; Figure 12).

    As printed:

    * ``c_l  = 4 (2 l_bc + s p_u (l_bc + 2 L)) / l_p`` (combined log,
      entries carry before+after bytes);
    * ``c_l' = 4 (2 l_bc + s p_u (l_bc + L (2 - p_s (1 - p_l)))
      + (l_bc + l_h)(p_l - p_l^{s p_u p_s})) / l_p`` — the before half
      of an entry is skipped for pages stolen to a clean group;
    * ``c_b  = P f_u (c_l / 8) + 4 p_u (s/2)(1 - C) + 4``;
    * ``c_b' = P f_u (c_l'/8) + p_u (s/2)((4 + 2 p_l)(1 - C)(1 - p_s)
      + 6 p_s p_l + 5 p_s (1 - p_l)) + 4``;
    * ``c_r  = s(1 - C) + 4 s (1 - C)(p_m + 2 p_i)`` and with RDA the
      shared-modifier surcharge scales by ``p_l``:
      ``c_r' = s(1 - C) + 4 s (1 - C)(p_m + 2 p_i p_l)``;
    * ``K = s_u p_s / 2`` in Eq. 5.
    """
    p = params
    spu = p.s * p.p_u
    L = average_log_entry_length(p.d, p.r, p.s, p.e)
    p_m = replaced_page_modified(p.f_u, p.p_u, p.C)
    p_s_steal = stolen_before_eot(p.B, p.C, p.s, p.P)
    p_i = concurrent_modifier_fraction(p.B, p.C, p.s, p.p_u, p.P, p.f_u)
    if rda:
        s_u = shared_update_pages(p.B, p.C, p.s, p.p_u, p.P, p.f_u)
        p_l = logging_probability(s_u * p_s_steal / 2.0, p.S, p.N)
        chain = geometric_chain_term(p_l, spu * p_s_steal)
        c_l = 4.0 * (2.0 * p.l_bc
                     + spu * (p.l_bc + L * (2.0 - p_s_steal * (1.0 - p_l)))
                     + (p.l_bc + p.l_h) * chain) / p.l_p
        c_b = (p.P * p.f_u * (c_l / 8.0)
               + p.p_u * (p.s / 2.0) * ((4.0 + 2.0 * p_l) * (1.0 - p.C)
                                        * (1.0 - p_s_steal)
                                        + 6.0 * p_s_steal * p_l
                                        + 5.0 * p_s_steal * (1.0 - p_l))
               + 4.0)
        c_c = (4.0 + 2.0 * p_l) * p.B * p_m + 4.0
        surcharge = p_m + 2.0 * p_i * p_l
        extra_recovery = p.S / p.N
    else:
        p_l = 1.0
        c_l = 4.0 * (2.0 * p.l_bc + spu * (p.l_bc + 2.0 * L)) / p.l_p
        c_b = (p.P * p.f_u * (c_l / 8.0)
               + 4.0 * p.p_u * (p.s / 2.0) * (1.0 - p.C)
               + 4.0)
        c_c = 4.0 * p.B * p_m + 4.0
        surcharge = p_m + 2.0 * p_i
        extra_recovery = 0.0
    c_r = p.s * (1.0 - p.C) + 4.0 * p.s * (1.0 - p.C) * surcharge
    c_u = c_r + c_l + p.p_b * c_b
    c_E = mean_transaction_cost(p.f_u, c_r, c_u)
    redo_per_txn = c_l / 4.0 + 4.0 * spu
    interval = optimal_checkpoint_interval(c_E, c_c, p.T, redo_per_txn, p.f_u)
    r_c = interval / c_E
    c_s = ((r_c / 2.0) * p.f_u * redo_per_txn
           + p.P * p.f_u * redo_per_txn
           + extra_recovery)
    r_t = interval_throughput(p.T, c_E, c_s=c_s, c_c=c_c, interval=interval)
    return CostBreakdown(algorithm="record ¬FORCE/ACC", rda=rda, c_r=c_r,
                         c_u=c_u, c_l=c_l, c_b=c_b, c_c=c_c, c_s=c_s,
                         checkpoint_interval=interval, p_l=p_l, c_E=c_E,
                         throughput=r_t)
