"""Soak tier: nemesis-driven chaos campaigns, per recovery class and K.

Replaces the old hand-rolled incident loop with the ``repro.stress``
subsystem: a seeded :class:`~repro.stress.Nemesis` injects crashes,
media failures, latent sectors, torn log writes and trims between
transaction batches while the live judges (invariant engine,
differential mirror, structural verify) watch continuously.  A cell
passes only if the report is *clean* — zero violations attributed to
any fault — and every injected fault was survived.

Kept to a few seconds per cell by default; crank ``REPRO_SOAK_OPS``
(and optionally ``REPRO_SOAK_SECONDS``) for a real soak:

    REPRO_SOAK_OPS=5000 python -m pytest tests/test_soak.py -m soak
"""

import os

import pytest

from repro.stress import StressOptions, StressRunner

SOAK_OPS = int(os.environ.get("REPRO_SOAK_OPS", "96"))
SOAK_SECONDS = os.environ.get("REPRO_SOAK_SECONDS")
DURATION = float(SOAK_SECONDS) if SOAK_SECONDS else None


def run_soak_cell(preset, shards, profile, seed):
    options = StressOptions(preset=preset, shards=shards,
                            ops=None if DURATION else SOAK_OPS,
                            duration_s=DURATION, batch_size=8, seed=seed,
                            nemesis_profile=profile, baseline=False)
    return StressRunner(options).run()


@pytest.mark.soak
@pytest.mark.parametrize("preset_name", [
    "page-force-rda", "page-noforce-rda",
    "record-force-rda", "record-noforce-rda",
])
class TestSingleShardSoak:
    def test_default_profile_campaign(self, preset_name):
        report = run_soak_cell(preset_name, shards=1, profile="default",
                               seed=1234)
        assert report.clean, report.violations[:5]
        assert report.faults_survived == report.faults_injected
        # a default-profile soak must exercise real breadth, not just
        # one lucky kind
        assert len(report.injected_by_kind) >= 4, report.injected_by_kind
        assert report.committed > 0

    def test_media_heavy_campaign(self, preset_name):
        report = run_soak_cell(preset_name, shards=1, profile="media-heavy",
                               seed=99)
        assert report.clean, report.violations[:5]
        assert report.injected_by_kind.get("media", 0) >= 2
        assert report.survived_by_kind == report.injected_by_kind


@pytest.mark.soak
@pytest.mark.parametrize("preset_name", [
    "page-force-rda", "record-noforce-rda",
])
class TestShardedSoak:
    def test_default_profile_campaign_k2(self, preset_name):
        report = run_soak_cell(preset_name, shards=2, profile="default",
                               seed=4321)
        assert report.clean, report.violations[:5]
        assert report.faults_survived == report.faults_injected
        # K>=2 unlocks the shard-kill executor; a soak-length run with
        # the default weights must have hit it
        assert report.injected_by_kind.get("shard_kill", 0) >= 1
        assert report.committed > 0


@pytest.mark.soak
class TestSoakReportShape:
    def test_report_carries_mttr_and_rates(self):
        report = run_soak_cell("page-noforce-rda", shards=1,
                               profile="crash-only", seed=7)
        assert report.clean, report.violations[:5]
        assert report.mttr is not None
        assert report.mttr["crashes"] >= 1
        assert report.faults_survived_per_hour > 0
        doc = report.to_dict()
        assert doc["faults"]["injected_by_kind"] == report.injected_by_kind
