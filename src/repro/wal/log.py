"""The duplexed, append-only log manager.

The paper assumes the log is kept in duplex (an operator or software
error that damages one copy must not lose recovery information) and that
log pages are written through the same disk subsystem whose transfers
the model counts.  :class:`LogManager` therefore:

* appends records to **two mirrored devices** and can verify the copies
  byte-for-byte (:meth:`verify_duplex`);
* charges a configurable number of page transfers per filled log page
  per copy (``transfers_per_log_page``, default 2: a log page write is a
  sequential append, but lands on both mirror copies);
* maintains the per-transaction backward chain (``prev_lsn``), so a
  rollback reads only the aborting transaction's records instead of
  scanning the log (the paper's TWIST-style log chain);
* survives crashes: :meth:`after_crash` re-parses the durable bytes and
  rebuilds the in-memory index.
"""

from __future__ import annotations

from ..errors import (LogCorruptionError, TornRecordError,
                      UnrecoverableDataError)
from ..storage.iostats import IOStats
from .records import NULL_LSN, LogRecord, deserialize

DEFAULT_LOG_PAGE_SIZE = 2020
"""Physical log page size; the paper's model constant l_p."""


class LogDevice:
    """One mirror copy: an append-only byte stream with page accounting."""

    def __init__(self, device_id: int, page_size: int,
                 transfers_per_page: int, stats: IOStats) -> None:
        self.device_id = device_id
        self.page_size = page_size
        self.transfers_per_page = transfers_per_page
        self.stats = stats
        self._data = bytearray()
        self._pages_charged = 0
        # Partial-page accounting mode.  False (the legacy model): a
        # forced partial page is charged once and later bytes landing in
        # it ride free — an idealized batching assumption baked into the
        # paper-figure cross-validation.  True (used by GroupCommitLog):
        # every force containing new bytes rewrites the current partial
        # page and is charged again, the physical cost per-commit
        # forcing pays and group commit exists to amortize.
        self.reforce_partial = False
        self._forced_len = 0
        # fault-injection seam: called with (device_id, page_index) just
        # before a log page becomes durable; raising aborts the flush, so
        # the page never counts toward durable_size and is removed by
        # crash_truncate at the next crash.
        self.on_page_write = None

    def append(self, blob: bytes) -> None:
        """Append bytes, charging transfers as log pages fill."""
        self._data.extend(blob)
        filled = len(self._data) // self.page_size
        while self._pages_charged < filled:
            if self.on_page_write is not None:
                self.on_page_write(self.device_id, self._pages_charged)
            self.stats.record_write(self.device_id, self.transfers_per_page)
            self._pages_charged += 1

    def force(self) -> None:
        """Flush the current partial page (WAL rule at commit)."""
        if self.reforce_partial:
            partial_start = (len(self._data) // self.page_size) * self.page_size
            if len(self._data) > partial_start and \
                    len(self._data) > self._forced_len:
                if self.on_page_write is not None:
                    self.on_page_write(self.device_id,
                                       len(self._data) // self.page_size)
                self.stats.record_write(self.device_id,
                                        self.transfers_per_page)
            self._forced_len = len(self._data)
            return
        if len(self._data) > self._pages_charged * self.page_size:
            if self.on_page_write is not None:
                self.on_page_write(self.device_id, self._pages_charged)
            self.stats.record_write(self.device_id, self.transfers_per_page)
            self._pages_charged += 1

    @property
    def contents(self) -> bytes:
        return bytes(self._data)

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def durable_size(self) -> int:
        """Bytes guaranteed on disk (filled/forced pages only)."""
        return min(len(self._data),
                   max(self._pages_charged * self.page_size,
                       self._forced_len))

    def crash_truncate(self) -> int:
        """A crash loses the unforced partial page; returns bytes lost."""
        lost = len(self._data) - self.durable_size
        del self._data[self.durable_size:]
        self._forced_len = min(self._forced_len, len(self._data))
        return lost

    def reset_to(self, contents: bytes) -> None:
        """Rewind the device to a clean prefix (restart recovery: the
        bytes after the last whole record are a torn fragment that would
        poison future appends).

        The prefix was read back from disk, so it *is* durable: the
        charge watermark rounds up, otherwise a short log would count as
        zero durable pages and evaporate at the next crash.
        """
        self._data = bytearray(contents)
        self._pages_charged = -(-len(self._data) // self.page_size)
        self._forced_len = len(self._data) if self.reforce_partial else 0


class LogManager:
    """Duplexed append-only log with an in-memory record index.

    Args:
        name: label used in errors and repr (e.g. ``"undo"``, ``"redo"``).
        page_size: log page size in bytes (model constant ``l_p``).
        transfers_per_log_page: page transfers charged per filled log
            page *per mirror copy*.
        stats: shared page-transfer counters.
        duplex: keep two mirror copies (the paper's assumption); set
            False for single-copy ablations.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            records appended are counted per record type
            (``wal.records{log=...,type=...}``), plus forces.
    """

    _device_counter = 0

    def __init__(self, name: str = "log", page_size: int = DEFAULT_LOG_PAGE_SIZE,
                 transfers_per_log_page: int = 1, stats: IOStats | None = None,
                 duplex: bool = True, metrics=None) -> None:
        self.name = name
        self.stats = stats if stats is not None else IOStats()
        self._m_records = (metrics.counter("wal.records")
                           if metrics is not None else None)
        self._m_forces = (metrics.counter("wal.forces")
                          if metrics is not None else None)
        # labelled-counter children are stable per label set; cache them
        # per record type so the hot append path skips the label-key
        # construction inside ``Counter.labels``
        self._record_children: dict = {}
        self._forces_child = (self._m_forces.labels(log=self.name)
                              if self._m_forces is not None else None)
        copies = 2 if duplex else 1
        # device ids are negative so they never collide with array disks
        self._devices = []
        for copy in range(copies):
            LogManager._device_counter += 1
            self._devices.append(
                LogDevice(-LogManager._device_counter, page_size,
                          transfers_per_log_page, self.stats))
        self._records: list = []
        self._last_lsn_of_txn: dict = {}
        self._last_lsn_of_page: dict = {}
        self._next_lsn = 1
        self._base_lsn = 1          # first retained LSN (grows on truncation)
        self._forced_lsn = NULL_LSN

    # -- append path -----------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Assign an LSN, chain the record to its transaction, write it
        to every mirror copy, and index it.  Returns the LSN."""
        record.lsn = self._next_lsn
        self._next_lsn += 1
        if record.txn_id:
            record.prev_lsn = self._last_lsn_of_txn.get(record.txn_id, NULL_LSN)
            self._last_lsn_of_txn[record.txn_id] = record.lsn
        if record.page_chained:
            record.prev_page_lsn = self._last_lsn_of_page.get(
                record.page_id, NULL_LSN)
            self._last_lsn_of_page[record.page_id] = record.lsn
        blob = record.serialize()
        for device in self._devices:
            device.append(blob)
        self._records.append(record)
        if self._m_records is not None:
            rtype = type(record).__name__
            child = self._record_children.get(rtype)
            if child is None:
                child = self._record_children[rtype] = \
                    self._m_records.labels(log=self.name, type=rtype)
            child.inc()
        return record.lsn

    def append_batch(self, records) -> int:
        """Append several records as one call (the hot commit path).

        Exactly equivalent to calling :meth:`append` once per record —
        same LSNs, same per-device byte interleaving, same page-write
        hook order — with the per-call bookkeeping hoisted out of the
        loop.  Returns the last LSN assigned (``last_lsn`` unchanged
        when ``records`` is empty).
        """
        lsn = self._next_lsn
        last_of = self._last_lsn_of_txn
        last_of_page = self._last_lsn_of_page
        devices = self._devices
        index = self._records
        m_records = self._m_records
        children = self._record_children
        for record in records:
            record.lsn = lsn
            if record.txn_id:
                record.prev_lsn = last_of.get(record.txn_id, NULL_LSN)
                last_of[record.txn_id] = lsn
            if record.page_chained:
                record.prev_page_lsn = last_of_page.get(record.page_id,
                                                        NULL_LSN)
                last_of_page[record.page_id] = lsn
            lsn += 1
            blob = record.serialize()
            for device in devices:
                device.append(blob)
            index.append(record)
            if m_records is not None:
                rtype = type(record).__name__
                child = children.get(rtype)
                if child is None:
                    child = children[rtype] = m_records.labels(
                        log=self.name, type=rtype)
                child.inc()
        self._next_lsn = lsn
        return lsn - 1

    def force(self) -> None:
        """Make everything appended so far durable (flush partial pages)."""
        for device in self._devices:
            device.force()
        if self._forces_child is not None:
            self._forces_child.inc()
        if self._records:
            self._forced_lsn = self._records[-1].lsn

    @property
    def forced_lsn(self) -> int:
        """Highest LSN known durable."""
        return self._forced_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest LSN that survives a crash.  For a plain log this is
        the forced LSN; a group-commit log with a batched force pending
        extends it to the tail (the coordinator drains before any crash
        truncates it — see :mod:`repro.wal.group_commit`)."""
        return self._forced_lsn

    @property
    def last_lsn(self) -> int:
        """Highest LSN appended."""
        return self._records[-1].lsn if self._records else NULL_LSN

    @property
    def size_bytes(self) -> int:
        """Bytes in one mirror copy."""
        return self._devices[0].size

    # -- read paths ---------------------------------------------------------------

    def records(self) -> list:
        """All records in append order."""
        return list(self._records)

    def get(self, lsn: int) -> LogRecord:
        """Record by LSN.

        Raises:
            LogCorruptionError: unknown or already-truncated LSN.
        """
        if not self._base_lsn <= lsn < self._next_lsn:
            raise LogCorruptionError(f"{self.name}: no record with lsn {lsn}")
        return self._records[lsn - self._base_lsn]

    def records_of(self, txn_id: int) -> list:
        """The transaction's records, newest first, via the log chain.

        A chain ending below the truncation point stops there (the
        truncated records were certified no-longer-needed)."""
        out = []
        lsn = self._last_lsn_of_txn.get(txn_id, NULL_LSN)
        while lsn >= self._base_lsn:
            record = self.get(lsn)
            out.append(record)
            lsn = record.prev_lsn
        return out

    def page_chain_head(self, page_id: int) -> int:
        """Newest chained redo record of a page (:data:`NULL_LSN` when
        the page has no retained chain)."""
        return self._last_lsn_of_page.get(page_id, NULL_LSN)

    def page_chain_heads(self) -> dict:
        """Snapshot of every page's chain head LSN."""
        return dict(self._last_lsn_of_page)

    def charge_read(self, records) -> int:
        """Charge page transfers for reading the given records back from
        one log copy (rollback and restart both read the log; the model
        counts those transfers).  Returns pages charged."""
        total = sum(r.serialized_size for r in records)
        if total == 0:
            return 0
        pages = -(-total // self._devices[0].page_size)
        self.stats.record_read(self._devices[0].device_id, pages)
        return pages

    def scan(self, record_type=None):
        """Iterate records in append order, optionally filtered by type."""
        for record in self._records:
            if record_type is None or isinstance(record, record_type):
                yield record

    # -- truncation ------------------------------------------------------------------

    @property
    def base_lsn(self) -> int:
        """First LSN still retained."""
        return self._base_lsn

    def truncate_before(self, lsn: int) -> int:
        """Drop all records with LSN below ``lsn`` from memory and from
        every mirror copy; returns the number dropped.

        The caller must guarantee no future recovery needs the dropped
        records: typically ``lsn = min(last checkpoint LSN, oldest
        active transaction's BOT LSN)``, and no lower than any archive
        dump horizon still relied on for media recovery
        (:meth:`repro.db.database.Database.trim_log` computes this).
        """
        lsn = max(lsn, self._base_lsn)
        cut = min(lsn, self._next_lsn) - self._base_lsn
        if cut <= 0:
            return 0
        dropped = self._records[:cut]
        byte_offset = sum(r.serialized_size for r in dropped)
        self._records = self._records[cut:]
        self._base_lsn += cut
        if not self._records:
            # the forced horizon may only point at retained records: a
            # trim that empties the log (its tail covered by a deferred
            # group-commit force) would otherwise leave forced_lsn
            # beyond the tail, and the next force() has no record to
            # re-anchor it
            self._forced_lsn = NULL_LSN
        for device in self._devices:
            device.reset_to(device.contents[byte_offset:])
        for txn_id in [t for t, last in self._last_lsn_of_txn.items()
                       if last < self._base_lsn]:
            del self._last_lsn_of_txn[txn_id]
        for page_id in [p for p, last in self._last_lsn_of_page.items()
                        if last < self._base_lsn]:
            del self._last_lsn_of_page[page_id]
        return cut

    # -- duplex integrity -----------------------------------------------------------

    def verify_duplex(self) -> bool:
        """True when all mirror copies are byte-identical."""
        first = self._devices[0].contents
        return all(d.contents == first for d in self._devices[1:])

    def damage_copy(self, copy: int, offset: int) -> None:
        """Corrupt one byte of one mirror (failure-injection for tests)."""
        device = self._devices[copy]
        if offset >= device.size:
            raise ValueError("offset beyond end of log")
        device._data[offset] ^= 0xFF

    # -- crash behaviour ---------------------------------------------------------------

    def crash(self) -> int:
        """Lose the unforced tail of every mirror copy (a crash destroys
        what never reached disk).  Returns bytes lost from copy 0."""
        lost = 0
        for device in self._devices:
            lost = device.crash_truncate()
        return lost

    def after_crash(self) -> int:
        """Simulate restart: drop the in-memory index and rebuild it by
        parsing the durable bytes of the mirror copies.

        Each copy is parsed greedily — a truncated or corrupt tail ends
        that copy's usable prefix (records are CRC-protected, so silent
        corruption is caught).  The copy with the longest valid prefix
        wins, and **every copy is rewound to that prefix**: a torn
        record fragment left at the tail would otherwise sit in front of
        post-recovery appends and make them unparseable at the next
        restart.  Returns the number of records recovered.

        Raises:
            UnrecoverableDataError: if log bytes exist but every mirror
                copy ends in a CRC/type failure — all copies are truly
                corrupt, so silently adopting the longest prefix could
                drop acknowledged-durable commits.
        """
        best: list = []
        best_bytes = b""
        any_bytes = False
        any_clean_stop = not self._devices
        for device in self._devices:
            any_bytes = any_bytes or device.size > 0
            records, prefix_len, clean = self._parse_prefix_with_length(
                device.contents)
            any_clean_stop = any_clean_stop or clean
            if len(records) > len(best):
                best = records
                best_bytes = device.contents[:prefix_len]
        if any_bytes and not any_clean_stop:
            # every copy dies on a CRC/type error (not a torn crash
            # tail): the log may be missing acknowledged records past
            # the damage, so refusing is the only safe answer
            raise UnrecoverableDataError(
                f"{self.name}: every duplex copy is corrupt")
        for device in self._devices:
            device.reset_to(best_bytes)
        self._records = best
        self._last_lsn_of_txn = {}
        self._last_lsn_of_page = {}
        for record in best:
            if record.txn_id:
                self._last_lsn_of_txn[record.txn_id] = record.lsn
            if record.page_chained:
                self._last_lsn_of_page[record.page_id] = record.lsn
        if best:
            self._base_lsn = best[0].lsn
            self._next_lsn = best[-1].lsn + 1
        else:
            # the entire retained tail was lost: new appends start at the
            # (unchanged) next position, and the base must follow it or
            # lsn-to-index arithmetic goes negative
            self._base_lsn = self._next_lsn
        # the forced horizon can only cover records that still exist —
        # a damaged log that lost its whole tail is durable up to
        # nothing, not up to where the tail used to end
        self._forced_lsn = best[-1].lsn if best else NULL_LSN
        return len(best)

    @staticmethod
    def _parse_prefix_with_length(blob: bytes) -> tuple:
        """Parse records until the bytes run out or stop making sense;
        returns ``(records, bytes_consumed, clean_stop)`` where
        ``clean_stop`` means exhaustion or a torn crash tail (expected),
        as opposed to a CRC/type failure (corruption)."""
        records = []
        offset = 0
        clean = True
        while offset < len(blob):
            try:
                record, offset = deserialize(blob, offset)
            except TornRecordError:
                break
            except LogCorruptionError:
                clean = False
                break
            records.append(record)
        return records, offset, clean

    @classmethod
    def _parse_prefix(cls, blob: bytes) -> list:
        """Parse records until the bytes run out or stop making sense."""
        return cls._parse_prefix_with_length(blob)[0]
