"""Simulation metrics.

The analytical model's figure of merit is **throughput in transactions
per availability interval of T page transfers**.  The simulator measures
the same thing: committed transactions divided by page transfers
consumed, scaled by T.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

DEFAULT_T = 5_000_000
"""The paper's availability-interval length (page transfers)."""


@dataclass
class SimulationReport:
    """What one simulation run produced.

    Attributes:
        committed: transactions that committed.
        aborted: transactions rolled back (p_b draws + deadlock victims).
        deadlocks: deadlock-victim aborts (subset of ``aborted``).
        page_transfers: total array + log transfers consumed.
        buffer_hit_ratio: measured communality.
        unlogged_steal_fraction: measured ``1 - p_l`` over steals.
        crashes: crash/recovery cycles executed.
        recovery_transfers: transfers spent inside crash recovery.
        checkpoints: ACC checkpoints taken.
    """

    committed: int = 0
    aborted: int = 0
    deadlocks: int = 0
    page_transfers: int = 0
    buffer_hit_ratio: float = 0.0
    unlogged_steal_fraction: float = 0.0
    crashes: int = 0
    recovery_transfers: int = 0
    checkpoints: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def transactions(self) -> int:
        """All finished transactions."""
        return self.committed + self.aborted

    def throughput(self, interval: int = DEFAULT_T) -> float:
        """Committed transactions per availability interval of
        ``interval`` page transfers (the model's r_t)."""
        if self.page_transfers == 0:
            return 0.0
        return self.committed * interval / self.page_transfers

    def cost_per_transaction(self) -> float:
        """Mean page transfers per finished transaction (the model's
        c_E, measured)."""
        if self.transactions == 0:
            return 0.0
        return self.page_transfers / self.transactions

    def to_dict(self) -> dict:
        """JSON-friendly document (``repro simulate --report-out``):
        the dataclass fields plus the derived throughput/cost figures."""
        doc = asdict(self)
        doc["transactions"] = self.transactions
        doc["throughput"] = round(self.throughput(), 3)
        doc["cost_per_transaction"] = round(self.cost_per_transaction(), 3)
        return doc

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (f"{self.committed} committed / {self.aborted} aborted, "
                f"{self.page_transfers} transfers "
                f"({self.cost_per_transaction():.1f}/txn), "
                f"hit ratio {self.buffer_hit_ratio:.2f}, "
                f"unlogged steals {self.unlogged_steal_fraction:.2f}")
