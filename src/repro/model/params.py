"""Model parameters (paper Section 5, constants from Reuter 1984).

The paper's table of constants:

* B = 300 buffer frames, S = 5000 database pages, N = 10 pages per
  parity group, P = 6 concurrent transactions, p_b = 0.01 abort
  probability, T = 5x10^6 page transfers per availability interval;
* high-update environment:    s = 10, f_u = 0.8, p_u = 0.9, d = 3;
* high-retrieval environment: s = 40, f_u = 0.1, p_u = 0.3, d = 8;
* record logging: r = 100 bytes per long log entry, e = 10 bytes per
  short entry, l_bc = 16 bytes per BOT/EOT record, l_h = 4 bytes per
  log-chain header, l_p = 2020 bytes per physical log page.

``a``, the page transfers per small array write, is 4 (3 when the old
page contents are buffered); writes into a *dirty* twin-parity group
cost 2 extra transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ModelError


@dataclass(frozen=True)
class ModelParams:
    """All knobs of the analytical model.

    Attributes mirror the paper's symbols; see the module docstring for
    the published values.
    """

    B: int = 300          # buffer frames
    S: int = 5000         # database pages
    N: int = 10           # pages per parity group
    P: int = 6            # concurrent transactions
    s: int = 10           # pages referenced per transaction
    f_u: float = 0.8      # fraction of update transactions
    p_u: float = 0.9      # update probability per accessed page
    p_b: float = 0.01     # abort probability
    C: float = 0.5        # communality
    T: float = 5e6        # availability interval (page transfers)
    # record-logging constants
    d: int = 3            # update statements per transaction parameter
    r: int = 100          # bytes of a long log entry
    e: int = 10           # bytes of a short log entry
    l_bc: int = 16        # bytes of a BOT/EOT record
    l_h: int = 4          # bytes of a log-chain header
    l_p: int = 2020       # bytes per physical log page

    def __post_init__(self) -> None:
        if not 0.0 <= self.C < 1.0:
            raise ModelError("communality C must be in [0, 1)")
        for name in ("f_u", "p_u", "p_b"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1]")
        if self.N < 2 or self.S < self.N:
            raise ModelError("need N >= 2 and S >= N")
        if self.B <= self.C * self.s:
            raise ModelError("buffer B must exceed C*s")
        if self.s < 1 or self.P < 1:
            raise ModelError("s and P must be positive")
        if min(self.r, self.e, self.l_bc, self.l_h, self.l_p) <= 0:
            raise ModelError("record-logging constants must be positive")
        if self.d > self.s:
            raise ModelError("d (long entries) cannot exceed s")

    def with_(self, **changes) -> "ModelParams":
        """Copy with fields replaced (e.g. sweeping ``C`` or ``s``)."""
        return replace(self, **changes)


def high_update(C: float = 0.5, **overrides) -> ModelParams:
    """The paper's high-update-frequency environment."""
    base = dict(s=10, f_u=0.8, p_u=0.9, d=3, C=C)
    base.update(overrides)
    return ModelParams(**base)


def high_retrieval(C: float = 0.5, **overrides) -> ModelParams:
    """The paper's high-retrieval-frequency environment."""
    base = dict(s=40, f_u=0.1, p_u=0.3, d=8, C=C)
    base.update(overrides)
    return ModelParams(**base)
