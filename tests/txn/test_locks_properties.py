"""Property tests for the lock manager.

A model-based mirror tracks holders and queues using only the public
API's observable results (True returns, :class:`Grant` lists,
:class:`DeadlockError`), then asserts after every step:

* granted locks are pairwise compatible (never S+X or X+X);
* promotions after a release form a FIFO queue *prefix* — no waiter
  is granted while an earlier incompatible waiter still queues;
* deadlock detection is complete and sound against a brute-force
  reachability check of the wait-for graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, LockError
from repro.txn import LockManager, LockMode

TXNS = st.integers(min_value=1, max_value=5)
RESOURCES = st.sampled_from(["a", "b", "c"])
MODES = st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE])

STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), TXNS, RESOURCES, MODES),
        st.tuples(st.just("release_all"), TXNS),
    ),
    min_size=1, max_size=40)


def _compatible(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.SHARED and b is LockMode.SHARED


class Mirror:
    """Holder/queue bookkeeping rebuilt from observable outcomes."""

    def __init__(self):
        self.holders = {}   # resource -> {txn: mode}
        self.queues = {}    # resource -> [(txn, mode)]

    def note_grant(self, txn, resource, mode):
        self.holders.setdefault(resource, {})[txn] = mode

    def note_enqueue(self, txn, resource, mode):
        self.queues.setdefault(resource, []).append((txn, mode))

    def note_release_all(self, txn, grants):
        for resource, held in self.holders.items():
            held.pop(txn, None)
        for resource, queue in self.queues.items():
            self.queues[resource] = [(t, m) for t, m in queue if t != txn]
        for grant in grants:
            queue = self.queues.get(grant.resource, [])
            assert (grant.txn_id, grant.mode) in queue or any(
                t == grant.txn_id for t, _ in queue), \
                f"grant {grant} was never enqueued"
            self.queues[grant.resource] = [
                (t, m) for t, m in queue if t != grant.txn_id]
            self.holders.setdefault(grant.resource, {})[grant.txn_id] = \
                grant.mode

    def check_compatibility(self):
        for resource, held in self.holders.items():
            modes = list(held.values())
            if len(modes) > 1:
                assert all(m is LockMode.SHARED for m in modes), \
                    f"incompatible holders on {resource!r}: {held}"

    def check_fifo_prefix(self, resource):
        """No queued waiter compatible with the holders may sit *ahead*
        of the queue head — promotion always drains a prefix."""
        queue = self.queues.get(resource, [])
        held = self.holders.get(resource, {})
        if not queue:
            return
        head_txn, head_mode = queue[0]
        if head_txn not in held:
            compatible = all(_compatible(h, head_mode)
                             for h in held.values())
            assert not compatible, (
                f"head waiter {head_txn} on {resource!r} is compatible "
                f"with holders {held} but was not promoted")


def brute_force_cycle(graph, start):
    """Is ``start`` on a cycle in the wait-for graph? (DFS reachability
    back to start.)"""
    stack, seen = [start], set()
    while stack:
        node = stack.pop()
        for succ in graph.get(node, ()):
            if succ == start:
                return True
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


@given(STEPS)
@settings(max_examples=200)
def test_lock_manager_properties(steps):
    manager = LockManager()
    mirror = Mirror()
    for step in steps:
        if step[0] == "acquire":
            _, txn, resource, mode = step
            if manager.waiting(txn):
                continue    # a real caller is suspended while queued
            before_graph = manager.wait_for_graph()
            try:
                granted = manager.acquire(txn, resource, mode)
            except DeadlockError:
                # completeness: enqueueing this request must close a
                # cycle through txn in the brute-force graph
                graph = dict(before_graph)
                entry = manager._entries.get(resource)
                blockers = set(entry.holders) if entry else set()
                if entry:
                    for waiter, _m in entry.waiters:
                        blockers.add(waiter)
                graph.setdefault(txn, set()).update(
                    b for b in blockers if b != txn)
                assert brute_force_cycle(graph, txn), \
                    "DeadlockError raised without a wait-for cycle"
                grants = manager.release_all(txn)
                mirror.note_release_all(txn, grants)
                continue
            if granted:
                # upgrades overwrite the mirrored mode; plain re-grants
                # keep the stronger of the two
                held = mirror.holders.get(resource, {}).get(txn)
                effective = (LockMode.EXCLUSIVE
                             if LockMode.EXCLUSIVE in (held, mode)
                             else mode)
                mirror.note_grant(txn, resource, effective)
            else:
                # soundness: an enqueued (non-victim) request must NOT
                # have closed a cycle
                assert not brute_force_cycle(manager.wait_for_graph(),
                                             txn), \
                    "wait-for cycle left standing without DeadlockError"
                mirror.note_enqueue(txn, resource, mode)
        else:
            _, txn = step
            grants = manager.release_all(txn)
            mirror.note_release_all(txn, grants)
        mirror.check_compatibility()
        for resource in ("a", "b", "c"):
            mirror.check_fifo_prefix(resource)


@given(STEPS)
@settings(max_examples=100)
def test_mirror_agrees_with_manager_state(steps):
    """The mirror's holder view matches ``holds``/``waiting``."""
    manager = LockManager()
    mirror = Mirror()
    for step in steps:
        if step[0] == "acquire":
            _, txn, resource, mode = step
            if manager.waiting(txn):
                continue
            try:
                if manager.acquire(txn, resource, mode):
                    mirror.note_grant(txn, resource, mode)
                else:
                    mirror.note_enqueue(txn, resource, mode)
            except DeadlockError:
                mirror.note_release_all(txn, manager.release_all(txn))
        else:
            _, txn = step
            mirror.note_release_all(txn, manager.release_all(txn))
        for resource, held in mirror.holders.items():
            for txn_id in held:
                assert manager.holds(txn_id, resource), \
                    f"mirror thinks {txn_id} holds {resource!r}"
        for resource, queue in mirror.queues.items():
            for txn_id, _mode in queue:
                assert manager.waiting(txn_id), \
                    f"mirror thinks {txn_id} queues on {resource!r}"


def test_deadlock_error_names_a_real_cycle():
    """Deterministic two-txn deadlock: the reported cycle is genuine."""
    manager = LockManager()
    assert manager.acquire(1, "a", LockMode.EXCLUSIVE)
    assert manager.acquire(2, "b", LockMode.EXCLUSIVE)
    assert not manager.acquire(1, "b", LockMode.EXCLUSIVE)
    try:
        manager.acquire(2, "a", LockMode.EXCLUSIVE)
    except DeadlockError as err:
        assert set(err.cycle) == {1, 2}
        graph = manager.wait_for_graph()
        graph.setdefault(2, set()).add(1)
        assert brute_force_cycle(graph, 2)
        return
    raise AssertionError("expected DeadlockError")


def test_release_unheld_lock_raises():
    manager = LockManager()
    try:
        manager.release(1, "a")
    except LockError:
        return
    raise AssertionError("expected LockError")
