#!/usr/bin/env python3
"""Quickstart: RDA recovery in five minutes.

Builds a database over a twin-parity RAID-5 array, then walks through
the paper's three recovery scenarios:

1. a transaction **abort** undone purely from the parity twins — no
   UNDO log record was ever written for the stolen page;
2. a **system crash** with a mix of winners and losers;
3. a **media failure** rebuilt from the surviving redundancy.

Run:  python examples/quickstart.py
"""

from repro.db import Database, preset
from repro.storage import make_page


def banner(text):
    print(f"\n=== {text} ===")


def main():
    # page logging, FORCE/TOC, RDA recovery — the paper's Figure 9 winner
    db = Database(preset("page-force-rda", group_size=4, num_groups=16,
                         buffer_capacity=8))
    print("database:", db.config.algorithm_name)
    print("array   :", db.array.geometry)
    print("overhead:", f"{db.array.geometry.storage_overhead():.1%} of raw "
          "capacity spent on parity (twin pages)")

    banner("1. commit, then abort undone via parity twins alone")
    t = db.begin()
    db.write_page(t, 0, make_page(b"the committed version"))
    db.commit(t)
    print("committed page 0:", db.disk_page(0)[:21])

    t = db.begin()
    db.write_page(t, 0, make_page(b"uncommitted scribble!"))
    # force the dirty page to disk by flooding the tiny buffer — a steal
    spill = db.begin()
    for page in range(4, 14):
        db.write_page(spill, page, make_page(bytes([page])))
    db.commit(spill)
    print("page 0 on disk while txn active:", db.disk_page(0)[:21])
    print("UNDO records written for it    :",
          db.counters.before_images_logged)
    db.abort(t)
    print("page 0 after abort             :", db.disk_page(0)[:21])
    print("parity scrub                   :", db.verify_parity() or "clean")

    banner("2. crash with winners and losers")
    winner = db.begin()
    db.write_page(winner, 1, make_page(b"winner data"))
    db.commit(winner)
    loser = db.begin()
    db.write_page(loser, 2, make_page(b"loser data"))
    db.crash()
    stats = db.recover()
    print("recovery:", stats)
    t = db.begin()
    print("page 1 (winner):", db.read_page(t, 1)[:11])
    print("page 2 (loser) :", db.read_page(t, 2)[:11], "(rolled back)")
    db.commit(t)

    banner("3. media failure and rebuild")
    victim = db.array.geometry.data_address(1).disk
    db.media_failure(victim)
    t = db.begin()
    print(f"disk {victim} failed; degraded read of page 1:",
          db.read_page(t, 1)[:11])
    db.commit(t)
    report = db.media_recover(victim)
    print(f"rebuilt {report.slots_rebuilt} slots;",
          "parity scrub:", db.verify_parity() or "clean")

    banner("totals")
    print(f"page transfers: {db.stats.total} "
          f"({db.stats.reads} reads, {db.stats.writes} writes)")
    print(f"unlogged steals: {db.counters.unlogged_steals}, "
          f"logged: {db.counters.logged_steals}, "
          f"before-images logged: {db.counters.before_images_logged}")


if __name__ == "__main__":
    main()
