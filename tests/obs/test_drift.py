"""Tests for the model-drift detector: silence on clean runs, alarms on
deliberately mispriced operations."""

import pytest

from repro.db import Database, ShardedDatabase, all_preset_names, preset
from repro.obs import (DriftDetector, MetricsRegistry, RingBufferSink,
                       Tracer, check_events)
from repro.sim import Simulator, WorkloadSpec


def write_event(transfers, buffered=False, twins=1):
    return {"name": "array.small_write",
            "attrs": {"buffered": buffered, "twins": twins,
                      "reads": 0, "writes": transfers,
                      "transfers": transfers}}


class TestJudgement:
    def test_on_model_costs_stay_silent(self):
        detector = check_events([write_event(4) for _ in range(50)])
        assert detector.clean
        summary = detector.summary()
        key = "array.small_write[buffered=False,twins=1]"
        assert summary["checked"][key]["mean_transfers"] == 4.0

    def test_mispriced_op_raises_alarm(self):
        # a regression that adds one transfer to every unbuffered small
        # write: mean 5 vs model 4 — must alarm
        detector = check_events([write_event(5) for _ in range(50)])
        assert not detector.clean
        (alarm,) = detector.alarms
        assert alarm.key == "array.small_write[buffered=False,twins=1]"
        assert alarm.measured == 5.0
        assert alarm.lo == alarm.hi == 4.0
        assert alarm.drift == pytest.approx(1.0)
        assert "model predicts 4" in alarm.describe()

    def test_alarms_deduplicate_per_variant(self):
        detector = check_events([write_event(6) for _ in range(100)])
        assert len(detector.alarms) == 1

    def test_min_count_defers_judgement(self):
        detector = check_events([write_event(9)], min_count=4)
        assert detector.clean       # one noisy op is not drift yet
        detector = check_events([write_event(9)] * 4, min_count=4)
        assert not detector.clean

    def test_tolerance_widens_band(self):
        events = [write_event(4)] * 9 + [write_event(5)]
        # mean 4.1; 5% of 4 = 0.2 slack → inside
        assert check_events(events, tolerance=0.05).clean
        assert not check_events(events, tolerance=0.01).clean

    def test_zero_band_ops_alarm_on_any_real_cost(self):
        events = [{"name": "rda.commit",
                   "attrs": {"groups": 1, "reads": 0, "writes": 1,
                             "transfers": 1}}] * 10
        detector = check_events(events)
        assert not detector.clean
        assert detector.alarms[0].key == "rda.commit"

    def test_unpriced_and_n_dependent_ops_are_ignored(self):
        events = [
            {"name": "array.degraded_read",
             "attrs": {"degraded": True, "reads": 99, "writes": 0,
                       "transfers": 99}},
            {"name": "txn.begin", "attrs": {"txn": 1}},
        ] * 10
        assert check_events(events).clean

    def test_batch_events_expand_like_inspect(self):
        events = [{"name": "array.small_write_batch",
                   "attrs": {"pages": 5, "buffered_pages": 2,
                             "transfers": 18, "dur_ms": 0.1}}] * 5
        detector = check_events(events)
        assert detector.clean
        checked = detector.summary()["checked"]
        assert checked["array.small_write[buffered=True,twins=1]"][
            "count"] == 10
        assert checked["array.small_write[buffered=False,twins=1]"][
            "count"] == 15

    def test_commit_groups_expand_to_twin_flips(self):
        events = [{"name": "rda.commit",
                   "attrs": {"groups": 3, "reads": 0, "writes": 0,
                             "transfers": 0}}] * 5
        checked = check_events(events).summary()["checked"]
        assert checked["rda.twin_flip"]["count"] == 15


class TestSideChannels:
    def test_metrics_gauge_and_counter(self):
        registry = MetricsRegistry()
        detector = DriftDetector(metrics=registry)
        for _ in range(10):
            detector.observe(write_event(5))
        snapshot = registry.snapshot()
        key = "model.drift{op=array.small_write[buffered=False,twins=1]}"
        assert snapshot["gauges"][key] == pytest.approx(1.0)
        assert snapshot["counters"]["model.drift_alarms"] == 1

    def test_alarm_emits_trace_event(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        detector = DriftDetector(tracer=tracer)
        for _ in range(10):
            detector.observe(write_event(5))
        (event,) = [e for e in sink.events()
                    if e["name"] == "model.drift_alarm"]
        assert event["attrs"]["measured"] == 5.0

    def test_live_observer_via_tracer(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        detector = DriftDetector().attach(tracer)
        for _ in range(10):
            tracer.emit("array.small_write", buffered=False, twins=1,
                        reads=2, writes=2, transfers=4)
        assert detector.clean
        key = "array.small_write[buffered=False,twins=1]"
        assert detector.summary()["checked"][key]["count"] == 10


class TestCleanPresets:
    """Acceptance: the detector stays silent on every clean preset —
    simulated costs do realize the paper's prices."""

    @pytest.mark.parametrize("name", all_preset_names())
    def test_simulated_preset_is_drift_free(self, name):
        tracer = Tracer(RingBufferSink())
        db = Database(preset(name, group_size=4, num_groups=16,
                             buffer_capacity=12), tracer=tracer)
        detector = DriftDetector().attach(tracer)
        simulator = Simulator(db, WorkloadSpec(concurrency=3,
                                               pages_per_txn=3), seed=3)
        if simulator.record_mode:
            simulator.seed_records()
        simulator.run(30, crash_every=12)
        assert detector.clean, [a.describe() for a in detector.alarms]

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_run_is_drift_free(self, shards):
        tracer = Tracer(RingBufferSink())
        db = ShardedDatabase(preset("page-force-rda", group_size=4,
                                    num_groups=16, buffer_capacity=12),
                             shards=shards, tracer=tracer)
        detector = DriftDetector().attach(tracer)
        simulator = Simulator(db, WorkloadSpec(concurrency=3,
                                               pages_per_txn=3), seed=3)
        simulator.run(30, crash_every=12)
        assert detector.clean, [a.describe() for a in detector.alarms]
