"""GF(2^8) arithmetic for Reed-Solomon-style double parity (RAID-6).

The field is GF(256) with the usual AES/RAID polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) and generator 2.  Log/antilog
tables make scalar multiplication a lookup; the page-wide helpers
(``page_mul``/``page_xor``/``q_parity``/``solve_two_erasures``)
delegate their byte crunching to the vectorized tier in
:mod:`repro.storage.kernels` while keeping their historical signatures
and semantics exactly (the kernel tiers are property-tested against
the pure-loop reference implementation).

Only what RAID-6 needs is implemented: add (XOR), multiply, divide,
power-of-generator weighting, and the 2×2 solve used to recover two
lost data pages.
"""

from __future__ import annotations

from functools import lru_cache

from . import kernels as _kernels

_POLY = 0x11D


def _build_tables() -> tuple:
    """Build the (EXP, LOG) lookup tables as immutable tuples.

    ``EXP`` is doubled to 512 entries so ``EXP[LOG[a] + LOG[b]]`` needs
    no ``% 255`` on the hot multiply path.
    """
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return tuple(exp), tuple(log)


EXP, LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``.

    Raises:
        ZeroDivisionError: division by the zero element.
    """
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return EXP[(LOG[a] - LOG[b]) % 255]


def gf_pow(base: int, exponent: int) -> int:
    """``base ** exponent`` in the field."""
    if base == 0:
        return 0 if exponent else 1
    return EXP[(LOG[base] * exponent) % 255]


GEN_POWERS = tuple(EXP[i] for i in range(255))
"""``GEN_POWERS[i] == gf_pow(2, i)`` for group indices ``0 <= i < 255``
(every practical parity-group size) — saves the log/mod round trip on
syndrome hot paths."""


def page_mul(coefficient: int, page: bytes) -> bytes:
    """Multiply every byte of ``page`` by ``coefficient``."""
    if coefficient == 0:
        return bytes(len(page))
    if coefficient == 1:
        return bytes(page)
    return _kernels.get_kernel().gf_scale(coefficient, page)


def page_xor(a: bytes, b: bytes) -> bytes:
    """Add two pages (XOR)."""
    return _kernels.get_kernel().xor(a, b)


def q_parity(pages: list) -> bytes:
    """The Q syndrome: ``Σ g^i · D_i`` with g = 2 and i the member index."""
    if not pages:
        raise ValueError("q_parity needs at least one page")
    return _kernels.get_kernel().gf_scale_accumulate(
        [(GEN_POWERS[index % 255], page) for index, page in enumerate(pages)],
        len(pages[0]))


@lru_cache(maxsize=None)
def _erasure_coefficients(index_a: int, index_b: int) -> tuple:
    """``(g^b, 1/(g^a ⊕ g^b))`` for the two-erasure solve, cached per
    index pair — degraded reads hit the same pair on every page of a
    rebuild scan."""
    g_a = gf_pow(2, index_a)
    g_b = gf_pow(2, index_b)
    return g_b, gf_div(1, g_a ^ g_b)


def solve_two_erasures(index_a: int, index_b: int, p_syndrome: bytes,
                       q_syndrome: bytes) -> tuple:
    """Recover two lost data pages from the P and Q syndromes.

    ``p_syndrome`` is the XOR of the surviving data pages with P
    (= D_a ⊕ D_b), ``q_syndrome`` the same for Q
    (= g^a·D_a ⊕ g^b·D_b).  Solving the 2×2 system byte-wise:

        D_a = (g^b · P* ⊕ Q*) / (g^a ⊕ g^b)
        D_b = P* ⊕ D_a

    Returns ``(D_a, D_b)``.
    """
    if index_a == index_b:
        raise ValueError("erasure indices must differ")
    g_b, inv = _erasure_coefficients(index_a, index_b)
    kernel = _kernels.get_kernel()
    numerator = kernel.xor(kernel.gf_scale(g_b, p_syndrome), q_syndrome)
    d_a = kernel.gf_scale(inv, numerator)
    d_b = kernel.xor(p_syndrome, d_a)
    return d_a, d_b
