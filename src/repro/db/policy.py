"""Recovery policies: the paper's three configuration axes as strategies.

Each of the eight configurations of Section 5 is the composition of
three independent choices, and each choice is one strategy object here:

* :class:`LoggingPolicy` — **page vs record** logging: what undo/redo
  records carry, how a steal's undo information is made durable, what
  commit appends, and how an abort rolls the transaction back.
* :class:`CommitDiscipline` — **FORCE+TOC vs ¬FORCE+ACC**: how the
  log(s) are arranged, what commit flushes, whether restart needs a
  REDO pass, and what log trimming may discard.
* :class:`StealProtection` — **RDA vs classical WAL**: how a stolen
  uncommitted page is protected (parity twins vs durable before-image),
  plus the matching restart phase (parity undo vs write-hole resync)
  and media recovery.

A composed :class:`RecoveryPolicy` is what :class:`~repro.db.database.
Database` and :class:`~repro.db.recovery.RecoveryManager` consult —
they contain no ``if config.force`` / ``if config.rda`` branching of
their own.  The strategies are stateless singletons (all state lives on
the database), so one policy instance is safely shared by every shard
of a :class:`~repro.db.sharded.ShardedDatabase`.
"""

from __future__ import annotations

from ..core import ACCCheckpointer, RDAManager
from ..errors import RecoveryError
from ..wal import (CheckpointRecord, PageAfterImage, PageBeforeImage,
                   PageRedoEntry, RecordAfterEntry, RecordBeforeEntry,
                   RecordRedoEntry)
from .slotted_page import SlottedPage


class BatchWriteItem:
    """One page of a commit-window write-back run (batched hot path).

    ``kind`` is ``"steal"`` (unlogged first steal or re-steal by
    ``txn``) or ``"committed"`` (clean-group committed write-back);
    ``old`` is the buffered before-image or None.
    """

    __slots__ = ("kind", "page", "group", "payload", "old", "txn")

    def __init__(self, kind, page, group, payload, old, txn):
        self.kind = kind
        self.page = page
        self.group = group
        self.payload = payload
        self.old = old
        self.txn = txn


def apply_record_image(page_bytes: bytes, slot: int, image: bytes) -> bytes:
    """Set ``slot`` of a slotted page to ``image`` (empty = delete)."""
    sp = SlottedPage.from_bytes(page_bytes)
    if image == b"":
        try:
            sp.delete(slot)
        except KeyError:
            pass                      # undoing an insert that never landed
    else:
        sp.place(slot, image)
    return sp.to_bytes()


# ==================== axis 1: logging granularity ====================


class PageLogging:
    """Page-granularity logging: before/after images of whole pages."""

    name = "page"
    record_granularity = False
    logs_undo = True

    def append_steal_undo(self, db, txn_id: int, page: int) -> bool:
        """Log the before-image covering one modifier of a stolen page
        (once per (txn, page)); returns True if anything was appended."""
        key = (txn_id, page)
        if key in db._undo_logged:
            return False
        image = db._before_images.get(key)
        if image is None:
            return False
        db.undo_log.append(PageBeforeImage(txn_id=txn_id, page_id=page,
                                           image=image))
        db._undo_logged.add(key)
        db.counters.before_images_logged += 1
        return True

    def append_commit_images(self, db, txn) -> None:
        """Page-mode REDO: append each written page's after-image."""
        txn_id = txn.txn_id
        db.redo_log.append_batch([
            PageAfterImage(txn_id=txn_id, page_id=page,
                           image=db._after_image(txn_id, page))
            for page in sorted(txn.pages_written)])

    def rollback(self, db, txn) -> None:
        """Abort: parity undo, then restore logged steals from
        before-images, then discard the transaction's buffered frames."""
        txn_id = txn.txn_id
        restored = db.policy.protection.parity_undo_for_abort(db, txn_id)

        logged_pages = sorted(page for (t, page) in db._logged_stolen
                              if t == txn_id and page not in restored)
        if logged_pages:
            chain = db.undo_log.records_of(txn_id)
            db.undo_log.charge_read(chain)
            images = {r.page_id: r.image for r in chain
                      if isinstance(r, PageBeforeImage)}
            for page in logged_pages:
                if page not in images:
                    raise RecoveryError(
                        f"no before-image for stolen page {page} of "
                        f"transaction {txn_id}")
                db._write_committed(page, images[page],
                                    old_data=db._last_stolen.get((txn_id, page)))

        for page in sorted(txn.pages_written):
            if page not in db.buffer:
                continue
            keep_residue = page in db._residue
            before = db._before_images.get((txn_id, page))
            db.buffer.invalidate(page)
            if keep_residue and before is not None:
                # the frame held committed-but-unflushed data under the
                # transaction's changes; disk lacks it, so rebuild the
                # frame from the captured pre-transaction image
                db.buffer.put_page(page, before, None)
                db._residue.add(page)


class RecordLogging:
    """Record-granularity logging: per-slot before/after entries."""

    name = "record"
    record_granularity = True
    logs_undo = True

    def note_record_modify(self, db, txn_id: int, page: int, slot: int,
                           before: bytes, after: bytes) -> None:
        """Stage undo and append redo for one record modification."""
        undo = RecordBeforeEntry(txn_id=txn_id, page_id=page, slot=slot,
                                 image=before)
        db.policy.protection.stage_record_undo(db, txn_id, undo)
        db.redo_log.append(RecordAfterEntry(txn_id=txn_id, page_id=page,
                                            slot=slot, image=after))

    def append_steal_undo(self, db, txn_id: int, page: int) -> bool:
        """Flush this modifier's deferred record before-entries for the
        stolen page; returns True if anything was appended."""
        pending = db._pending_undo.get(txn_id, [])
        keep, flush = [], []
        for entry in pending:
            (flush if entry.page_id == page else keep).append(entry)
        if not flush:
            return False
        for entry in flush:
            db.undo_log.append(entry)
            db.counters.before_images_logged += 1
        db._pending_undo[txn_id] = keep
        return True

    def append_commit_images(self, db, txn) -> None:
        """Record-mode REDO entries were appended at modification time."""

    def rollback(self, db, txn) -> None:
        """Abort: parity undo, then re-apply record before-entries
        (logged + still-pending) backward, flushing corrected pages."""
        txn_id = txn.txn_id
        restored = db.policy.protection.parity_undo_for_abort(db, txn_id)
        for page in restored:
            if page in db.buffer:
                # single-modifier invariant: only this transaction's
                # changes were buffered for an unlogged stolen page
                db.buffer.invalidate(page)

        chain = db.undo_log.records_of(txn_id)
        db.undo_log.charge_read(chain)
        logged = [r for r in reversed(chain)
                  if isinstance(r, (RecordBeforeEntry, PageBeforeImage))]
        pending = list(db._pending_undo.get(txn_id, ()))
        ordered = logged + pending      # forward order; pending is newest

        touched = {}
        for entry in reversed(ordered):
            page = entry.page_id
            if isinstance(entry, PageBeforeImage):
                touched[page] = entry.image
                continue
            payload = touched.get(page)
            if payload is None:
                payload = db.buffer.get_page(page)
            touched[page] = apply_record_image(payload, entry.slot, entry.image)

        # The abort record that follows asserts "undo is durable", so the
        # corrected pages must reach disk now even under ¬FORCE —
        # otherwise a crash after the abort would resurrect the aborted
        # values (aborted transactions are excluded from restart undo).
        for page in sorted(touched):
            # another transaction's unlogged steal may be outstanding on
            # this page (record locking shares pages); the committed
            # write below would silently invalidate its parity-undo
            # baseline, so promote that steal to logged undo first
            db.policy.protection.maybe_promote(db, page, txn_id)
            db.buffer.invalidate(page)
            db.buffer.put_page(page, touched[page], None)
            db.buffer.flush_page(page)


class RedoPageLogging(PageLogging):
    """REDO-only at page granularity: no undo log ever.  Commit appends
    each written page's after-image as a chained :class:`~repro.wal.
    records.PageRedoEntry`; the write-behind gate keeps uncommitted
    pages out of the array, so abort needs only the buffer (plus parity
    twins for the RDA hybrid's covered steals)."""

    name = "redo-page"
    logs_undo = False

    def append_steal_undo(self, db, txn_id: int, page: int) -> bool:
        raise RecoveryError(
            "REDO-only class has no undo log: a steal that needs one "
            "escaped the write-behind propagation gate")

    def append_commit_images(self, db, txn) -> None:
        """Chain each written page's after-image into its per-page redo
        chain (before the commit record, satisfying the WAL order)."""
        txn_id = txn.txn_id
        db.redo_log.append_batch([
            PageRedoEntry(txn_id=txn_id, page_id=page,
                          image=db._after_image(txn_id, page))
            for page in sorted(txn.pages_written)])

    # rollback: PageLogging's path degenerates correctly — there are
    # never logged steals, parity undo rewinds the hybrid's covered
    # steals, and buffered frames are discarded / rebuilt from the
    # captured pre-transaction images.


class RedoRecordLogging(RecordLogging):
    """REDO-only at record granularity (the RDA hybrid's logging): undo
    entries stay in memory for live aborts and are never logged; redo
    entries are staged per transaction and appended at commit as chained
    :class:`~repro.wal.records.RecordRedoEntry` records."""

    name = "redo-record"
    logs_undo = False

    def append_steal_undo(self, db, txn_id: int, page: int) -> bool:
        raise RecoveryError(
            "REDO-only class has no undo log: a steal that needs one "
            "escaped the write-behind propagation gate")

    def note_record_modify(self, db, txn_id: int, page: int, slot: int,
                           before: bytes, after: bytes) -> None:
        """Stage both directions in memory: undo for a live abort (never
        durable), redo for the commit-time chain append."""
        db._pending_undo.setdefault(txn_id, []).append(
            RecordBeforeEntry(txn_id=txn_id, page_id=page, slot=slot,
                              image=before))
        db._pending_redo.setdefault(txn_id, []).append(
            RecordRedoEntry(txn_id=txn_id, page_id=page, slot=slot,
                            image=after))

    def append_commit_images(self, db, txn) -> None:
        """Drain the staged redo entries into the per-page chains."""
        staged = db._pending_redo.pop(txn.txn_id, None)
        if staged:
            db.redo_log.append_batch(staged)

    def rollback(self, db, txn) -> None:
        """Abort from memory: parity undo rewinds covered steals on
        disk, then the staged before-entries are re-applied backward
        onto the buffered pages.  Nothing is flushed — an aborted
        transaction's data was never durable except via covered steals
        (just rewound), and its staged redo entries never reach the
        log, so a later crash cannot resurrect it."""
        txn_id = txn.txn_id
        restored = db.policy.protection.parity_undo_for_abort(db, txn_id)
        for page in restored:
            if page in db.buffer:
                # single-modifier + no-residue steal rule: the frame
                # held only this transaction's changes beyond the
                # restored disk image
                db.buffer.invalidate(page)

        pending = list(db._pending_undo.get(txn_id, ()))
        touched = {}
        for entry in reversed(pending):
            page = entry.page_id
            if page in restored:
                continue
            payload = touched.get(page)
            if payload is None:
                payload = db.buffer.get_page(page)
            touched[page] = apply_record_image(payload, entry.slot,
                                               entry.image)
        for page in sorted(touched):
            db.buffer.put_page(page, touched[page], None)
        # drop only this transaction's modifier marks: a co-modifier's
        # uncommitted slots stay tracked so the write-behind gate keeps
        # holding their pages in the buffer
        db.buffer.clear_modifier(txn_id)
        db._pending_redo.pop(txn_id, None)


# ==================== axis 2: commit discipline ====================


class ForceToc:
    """FORCE + TOC: commit flushes the transaction's pages; no
    checkpoints, no restart REDO."""

    name = "force-toc"
    forces_at_commit = True

    def build_logs(self, db, log_factory) -> tuple:
        """Separate undo and redo logs, no checkpointer."""
        return log_factory(db, "undo"), log_factory(db, "redo"), None

    def flush_at_commit(self, db, txn_id: int) -> None:
        db.buffer.flush_pages_of(txn_id)

    def note_commit_residue(self, db, txn) -> None:
        """FORCE leaves nothing dirty behind a commit."""

    def restart_redo(self, db, winners, cache, page_base, fault) -> int:
        """TOC: committed work is on disk already; nothing to redo."""
        return 0

    def trim_log(self, db, candidates: list, archive_floor) -> int:
        # FORCE/TOC: the undo log only needs active transactions'
        # records.  Dropping a finished transaction's BOT is always safe
        # (it simply stops being a loser *candidate*).
        dropped = db.undo_log.truncate_before(min(candidates))
        # The redo log is cross-referenced by restart analysis: a BOT
        # surviving in the undo log whose commit record was trimmed here
        # would be misclassified as a loser.  Only a *quiescent* trim
        # (no active transactions, hence no surviving BOTs) avoids the
        # coupling; it is bounded by the archive roll-forward floor.
        if archive_floor is not None and not db.txns.active_transactions():
            dropped += db.redo_log.truncate_before(archive_floor + 1)
        return dropped


class NoForceAcc:
    """¬FORCE + ACC: commit forces only the log; ACC checkpoints bound
    the restart REDO pass."""

    name = "noforce-acc"
    forces_at_commit = False

    def build_logs(self, db, log_factory) -> tuple:
        """One combined log plus the ACC checkpointer."""
        combined = log_factory(db, "log")
        checkpointer = ACCCheckpointer(
            db.buffer.flush_all_dirty, db._append_and_force_redo,
            lambda: [t.txn_id for t in db.txns.active_transactions()],
            interval=db.config.checkpoint_interval,
            tracer=db.tracer, stats=db.stats, metrics=db.metrics,
            on_checkpoint=db._on_checkpoint)
        return combined, combined, checkpointer

    def flush_at_commit(self, db, txn_id: int) -> None:
        """¬FORCE: the transaction's pages stay dirty in the buffer."""

    def note_commit_residue(self, db, txn) -> None:
        for page in txn.pages_written:
            if db.buffer.is_dirty(page):
                db._residue.add(page)

    def restart_redo(self, db, winners, cache, page_base, fault) -> int:
        """Replay committed after-images since the last ACC checkpoint."""
        redone = 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="redo") as span:
            start = 0
            for record in db.redo_log.scan(CheckpointRecord):
                start = record.lsn
            replay = [r for r in db.redo_log.records() if r.lsn > start]
            db.redo_log.charge_read(replay)
            for record in replay:
                if record.txn_id not in winners:
                    continue
                if isinstance(record, PageAfterImage):
                    cache[record.page_id] = record.image
                    redone += 1
                elif isinstance(record, RecordAfterEntry):
                    cache[record.page_id] = apply_record_image(
                        page_base(record.page_id), record.slot,
                        record.image)
                    redone += 1
            span.set(applied=redone)
        return redone

    def trim_log(self, db, candidates: list, archive_floor) -> int:
        checkpoint_lsn = None
        for record in db.redo_log.scan(CheckpointRecord):
            checkpoint_lsn = record.lsn
        if checkpoint_lsn is None:
            return 0        # committed data may exist only in the log
        candidates.append(checkpoint_lsn)
        return db.undo_log.truncate_before(min(candidates))


class RedoOnlyDiscipline(NoForceAcc):
    """¬FORCE with REDO-only restart: no undo phase is ever needed —
    the write-behind gate guarantees disk never holds data the log
    cannot redo past.  Restart replays each page's redo chain forward
    from its durable page LSN; trim walks every page's chain so no
    unreflected record is ever discarded."""

    name = "redo-acc"

    def restart_redo(self, db, winners, cache, page_base, fault) -> int:
        """Replay winners' per-page chains from each page's on-disk LSN
        forward (absolute images: idempotent and prefix-closed)."""
        redone = 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="redo") as span:
            durable = db._durable_page_lsn
            replay = [r for r in db.redo_log.records()
                      if r.page_chained and r.txn_id in winners
                      and r.lsn > durable.get(r.page_id, 0)]
            db.redo_log.charge_read(replay)
            for record in replay:
                if isinstance(record, PageRedoEntry):
                    cache[record.page_id] = record.image
                else:
                    cache[record.page_id] = apply_record_image(
                        page_base(record.page_id), record.slot,
                        record.image)
                redone += 1
            span.set(applied=redone)
        return redone

    def trim_log(self, db, candidates: list, archive_floor) -> int:
        """ACC bound plus a chain walk: for every page whose chain head
        is past its durable LSN, retain back to the earliest record the
        page's replay could still need.  (The checkpoint bound alone is
        unsafe here: the gate may have skipped a committed residue page
        at checkpoint time, leaving its older chain records the only
        copy of committed data.)"""
        checkpoint_lsn = None
        for record in db.redo_log.scan(CheckpointRecord):
            checkpoint_lsn = record.lsn
        if checkpoint_lsn is None:
            return 0        # committed data may exist only in the log
        candidates.append(checkpoint_lsn)
        durable = db._durable_page_lsn
        log = db.redo_log
        base = log.base_lsn
        for page, head in log.page_chain_heads().items():
            floor = durable.get(page, 0)
            lsn = head
            earliest = None
            while lsn >= base and lsn > floor:
                earliest = lsn
                lsn = log.get(lsn).prev_page_lsn
            if earliest is not None:
                candidates.append(earliest)
        return db.undo_log.truncate_before(min(candidates))


# ==================== axis 3: steal protection ====================


class RdaProtection:
    """RDA: steals ride the parity twins whenever the Figure 3 rule
    allows; undo comes from ``P_w ⊕ P_c ⊕ D_new``."""

    name = "rda"
    uses_twins = True

    def make_rda(self, db):
        return RDAManager(db.array)

    def covers_unlogged_steal(self, db, page: int, single,
                              was_residue: bool) -> bool:
        return (single is not None and not was_residue
                and not db.rda.needs_undo_log(page, single))

    def write_stolen_unlogged(self, db, page: int, payload: bytes, single,
                              old) -> None:
        db.rda.write_uncommitted(page, payload, single, old_data=old)

    def note_forced_undo(self, db, page: int, single,
                         was_residue: bool) -> None:
        # why the twins could not cover this steal (the complement of
        # the model's 1 - p_l)
        if single is None:
            reason = "multi_modifier"
        elif was_residue:
            reason = "residue"
        else:
            reason = "dirty_group"
        if db.tracer.enabled:
            db.tracer.emit("wal.forced_undo", page=page, reason=reason)
        if db.metrics is not None:
            cache = getattr(db, "_forced_undo_children", None)
            if cache is None:
                cache = db._forced_undo_children = {}
            child = cache.get(reason)
            if child is None:
                child = cache[reason] = db.metrics.counter(
                    "rda.forced_undo").labels(reason=reason)
            child.inc()

    def write_stolen_logged(self, db, page: int, payload: bytes, modifiers,
                            single, old) -> None:
        owner = single if single is not None else next(iter(modifiers))
        db.rda.write_uncommitted(page, payload, owner, old_data=old,
                                 logged=True)

    def write_committed(self, db, page: int, payload: bytes,
                        old_data=None) -> None:
        db.rda.write_committed(page, payload, old_data=old_data)

    def stage_record_undo(self, db, txn_id: int, undo) -> None:
        """Defer the before-entry: it only reaches the log if the page
        is stolen while the group cannot absorb it."""
        db._pending_undo.setdefault(txn_id, []).append(undo)

    def maybe_promote(self, db, page: int, txn_id: int) -> None:
        """If another transaction's unlogged stolen page is about to be
        shared, materialize its before-image into the log first."""
        group = db.array.geometry.group_of(page)
        entry = db.rda.dirty_set.get(group)
        if entry is None or entry.page_id != page or entry.txn_id == txn_id:
            return

        if db.policy.logging.record_granularity:
            # Record mode: a page-level parity image must NOT reach the
            # log — undoing it would restore the whole page and trample
            # slots other transactions commit in between.  Flush the
            # owner's per-slot before-entries instead; rollback then
            # re-places exactly the owner's slots on the current page.
            def log_fn(owner, page_id, image):
                db.policy.logging.append_steal_undo(db, owner, page_id)
                db.undo_log.force()
                db._undo_logged.add((owner, page_id))
                db._logged_stolen.add((owner, page_id))
        else:
            def log_fn(owner, page_id, image):
                db.undo_log.append(PageBeforeImage(
                    txn_id=owner, page_id=page_id, image=image))
                db.undo_log.force()
                db._undo_logged.add((owner, page_id))
                db._logged_stolen.add((owner, page_id))

        db.rda.promote_to_logged(group, log_fn)
        db.counters.promotions += 1

    def commit_flips(self, db, txn_id: int):
        """Flip the transaction's dirty groups' twins (zero I/O)."""
        return db.rda.commit_txn(txn_id)

    def lose_memory(self, db) -> None:
        db.rda.lose_memory()

    def parity_undo_for_abort(self, db, txn_id: int) -> dict:
        """Rewind the transaction's unlogged stolen pages via the twins."""
        buffered = {}
        for group in db.rda.dirty_set.groups_of(txn_id):
            entry = db.rda.dirty_set.entry(group)
            known = db._last_stolen.get((txn_id, entry.page_id))
            if known is not None:
                buffered[entry.page_id] = known
        return db.rda.abort_txn(txn_id, buffered=buffered)

    def write_back_run(self, db, run: list) -> None:
        """Execute one batched run of :class:`BatchWriteItem`.

        The parity math is vectorized across the run (see
        :meth:`~repro.core.rda.RDAManager.write_batch`); the per-page
        bookkeeping below runs from the array's per-op callback, after
        that page's writes and ``twin_write`` barrier, so counters,
        history events and invariant probes fire in exactly the legacy
        order.
        """
        def on_page(i):
            item = run[i]
            if item.kind == "steal":
                txn = item.txn
                db.counters.unlogged_steals += 1
                db.txns.get(txn).note_steal(item.page)
                db._last_stolen[(txn, item.page)] = item.payload
                db._h("steal", txn=txn, page=item.page, logged=False)
                db._barrier("steal", page=item.page, txns=frozenset({txn}),
                            logged=False)
            else:
                db._residue.discard(item.page)
                db.counters.committed_writebacks += 1
                if db.policy.redo_only:
                    # same marker advance as _write_committed: the
                    # on-disk image now reflects its whole redo chain
                    db._durable_page_lsn[item.page] = \
                        db.redo_log.page_chain_head(item.page)
            db.buffer.mark_clean(item.page)

        db.rda.write_batch(run, on_page=on_page)
        if db._m_steals_unlogged is not None:
            steals = sum(1 for item in run if item.kind == "steal")
            if steals:
                db._m_steals_unlogged.inc(steals)

    def restart_parity_phase(self, db, winners: set, losers: set,
                             fault) -> tuple:
        """Parity undo of unlogged stolen pages (must precede log
        writes), then write-hole resync of clean groups.

        Interrupted *steals* are resolved through the twin headers
        (twin-first ordering makes them detectable and undoable); an
        interrupted *committed* write-back leaves stale parity with no
        header evidence, so the remaining clean groups are scrubbed
        against their data and repaired — the twin-substrate analogue
        of :class:`WalProtection`'s restart resync."""
        parity_undone = 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="parity_undo") as span:
            for entry in db.rda.crash_scan(winners):
                losers.add(entry.txn_id)
                fault(f"parity-undo group {entry.group}")
                db.rda.undo_group(entry.group)
                parity_undone += 1
            span.set(pages=parity_undone)
        holes = db.rda.find_parity_holes()
        if holes:
            with db.tracer.span("recovery.phase", stats=db.stats,
                                log_split=True,
                                phase="parity_resync") as span:
                for group in holes:
                    fault(f"parity resync group {group}")
                    db.rda.resync_group(group)
                span.set(groups=len(holes))
        return len(holes), parity_undone

    def media_recover(self, db, disk_id: int, on_lost_undo: str):
        report, must_commit = db.rda.rebuild_disk(
            disk_id, on_lost_undo=on_lost_undo)
        for txn_id in must_commit:
            db.txns.get(txn_id).must_commit = True
        return report


class WalProtection:
    """Classical WAL: every steal pays for a durable before-image."""

    name = "wal"
    uses_twins = False

    def make_rda(self, db):
        return None

    def covers_unlogged_steal(self, db, page: int, single,
                              was_residue: bool) -> bool:
        return False

    def write_stolen_unlogged(self, db, page: int, payload: bytes, single,
                              old) -> None:
        raise AssertionError("WAL never steals without logging")

    def note_forced_undo(self, db, page: int, single,
                         was_residue: bool) -> None:
        """Under plain WAL a logged steal is the only kind; nothing to
        explain."""

    def write_stolen_logged(self, db, page: int, payload: bytes, modifiers,
                            single, old) -> None:
        db.array.write_page(page, payload, old_data=old)

    def write_committed(self, db, page: int, payload: bytes,
                        old_data=None) -> None:
        db.array.write_page(page, payload, old_data=old_data)

    def stage_record_undo(self, db, txn_id: int, undo) -> None:
        db.undo_log.append(undo)
        db.counters.before_images_logged += 1

    def maybe_promote(self, db, page: int, txn_id: int) -> None:
        """No unlogged steals exist, so there is nothing to promote."""

    def commit_flips(self, db, txn_id: int):
        return ()

    def lose_memory(self, db) -> None:
        """No Dirty_Set to lose."""

    def parity_undo_for_abort(self, db, txn_id: int) -> dict:
        return {}

    def restart_parity_phase(self, db, winners: set, losers: set,
                             fault) -> tuple:
        """RAID write-hole resync: a crash between a small-write's data
        and parity transfers leaves the parity stale; recovery's own
        small writes assume it is current, so recompute it first.

        Detection uses uncounted peeks (the restart scrub); the repair
        writes are counted.  Clean restarts skip the phase entirely.
        """
        stale = db.array.scrub()
        if not stale:
            return 0, 0
        with db.tracer.span("recovery.phase", stats=db.stats,
                            log_split=True, phase="parity_resync") as span:
            for group in stale:
                fault(f"parity resync group {group}")
                data = [db.array.read_page(p)
                        for p in db.array.geometry.group_pages(group)]
                db.array.rewrite_parity(group, data)
            span.set(groups=len(stale))
        return len(stale), 0

    def media_recover(self, db, disk_id: int, on_lost_undo: str):
        return db.array.rebuild_disk(disk_id)


class RedoRdaProtection(RdaProtection):
    """The RDA+REDO hybrid's protection: twin parity covers losers'
    steals exactly as in :class:`RdaProtection`, but a steal that the
    twins cannot cover is never logged — the write-behind gate keeps
    the page buffered instead.  With no undo log, a covered steal whose
    page another transaction wants to share cannot be *promoted* to
    logged; it is **un-stolen**: the twins rewind the disk to the
    pre-steal state and the page re-dirties in the buffer under its
    owner."""

    name = "rda-redo"

    def maybe_promote(self, db, page: int, txn_id: int) -> None:
        group = db.array.geometry.group_of(page)
        entry = db.rda.dirty_set.get(group)
        if entry is None or entry.page_id != page or entry.txn_id == txn_id:
            return
        owner = entry.txn_id
        # the XOR rewind needs the page's *on-disk* bytes (what the
        # steal wrote), not the live buffer, which may be newer
        on_disk = db._last_stolen.get((owner, page))
        if page in db.buffer:
            current = db.buffer.get_page(page)
        elif on_disk is not None:
            current = on_disk
        else:
            current = db.array.read_page(page)
        # rewind the disk through the twins; the owner's version lives
        # on in the buffer, where the gate will hold it (the frame is
        # about to gain a second modifier)
        db.rda.undo_group(group, new_data=on_disk)
        db.buffer.put_page(page, current, owner)
        db._last_stolen.pop((owner, page), None)
        db.counters.promotions += 1
        if db.tracer.enabled:
            db.tracer.emit("redo.unsteal", page=page, txn=owner)


# ==================== the composed policy ====================

PAGE_LOGGING = PageLogging()
RECORD_LOGGING = RecordLogging()
REDO_PAGE_LOGGING = RedoPageLogging()
REDO_RECORD_LOGGING = RedoRecordLogging()
FORCE_TOC = ForceToc()
NOFORCE_ACC = NoForceAcc()
REDO_ONLY_DISCIPLINE = RedoOnlyDiscipline()
RDA_PROTECTION = RdaProtection()
WAL_PROTECTION = WalProtection()
REDO_RDA_PROTECTION = RedoRdaProtection()


class RecoveryPolicy:
    """One of the recovery configurations as a strategy triple: the
    paper's eight plus the beyond-paper REDO-only class."""

    def __init__(self, logging, discipline, protection) -> None:
        self.logging = logging
        self.discipline = discipline
        self.protection = protection

    @classmethod
    def for_config(cls, config) -> "RecoveryPolicy":
        if getattr(config, "redo_only", False):
            return cls(
                REDO_RECORD_LOGGING if config.record_logging
                else REDO_PAGE_LOGGING,
                REDO_ONLY_DISCIPLINE,
                REDO_RDA_PROTECTION if config.rda else WAL_PROTECTION,
            )
        return cls(
            RECORD_LOGGING if config.record_logging else PAGE_LOGGING,
            FORCE_TOC if config.force else NOFORCE_ACC,
            RDA_PROTECTION if config.rda else WAL_PROTECTION,
        )

    @property
    def name(self) -> str:
        return (f"{self.logging.name}-{self.discipline.name}-"
                f"{self.protection.name}")

    @property
    def redo_only(self) -> bool:
        """True for the fifth (no-undo-log) recovery class."""
        return not self.logging.logs_undo

    @property
    def log_page_undo_at_first_write(self) -> bool:
        """Classical ¬FORCE WAL logs a page's before-image eagerly at
        first modification (RDA defers; FORCE can always abort from the
        buffer + logged steals; REDO-only never logs undo at all)."""
        return (self.logging.logs_undo
                and not self.protection.uses_twins
                and not self.discipline.forces_at_commit)

    def may_writeback(self, db, page: int, frame) -> bool:
        """The write-behind propagation gate (REDO-only class only —
        installed as the buffer pool's writeback filter).

        A frame with uncommitted modifiers may reach disk only as a
        twin-covered steal (the RDA hybrid); anything else waits in the
        buffer.  A committed-dirty frame may reach disk only once its
        page's redo chain is durable (``page_lsn <= durable_lsn``)."""
        if frame.modifiers:
            if len(frame.modifiers) != 1:
                return False
            single = next(iter(frame.modifiers))
            return self.protection.covers_unlogged_steal(
                db, page, single, page in db._residue)
        return db.redo_log.page_chain_head(page) <= db.redo_log.durable_lsn

    def writeback(self, db, page: int, payload: bytes,
                  modifiers: frozenset) -> None:
        """The paper's decision point: every steal either rides the
        parity twins or pays for a durable before-image first (the WAL
        rule is enforced here)."""
        if not modifiers:
            db._residue.discard(page)
            db.counters.committed_writebacks += 1
            db._write_committed(page, payload)
            return
        single = next(iter(modifiers)) if len(modifiers) == 1 else None
        old = db._old_disk_version(single, page)
        was_residue = page in db._residue
        db._residue.discard(page)
        if self.protection.covers_unlogged_steal(db, page, single,
                                                 was_residue):
            self.protection.write_stolen_unlogged(db, page, payload, single,
                                                  old)
            db.counters.unlogged_steals += 1
            if db.metrics is not None:
                db.metrics.counter("db.steals").labels(mode="unlogged").inc()
            db.txns.get(single).note_steal(page)
            db._last_stolen[(single, page)] = payload
            db._h("steal", txn=single, page=page, logged=False)
            db._barrier("steal", page=page, txns=frozenset({single}),
                        logged=False)
            return
        # logged steal: WAL — undo information durable before the write
        self.protection.note_forced_undo(db, page, single, was_residue)
        if db.metrics is not None:
            db.metrics.counter("db.steals").labels(mode="logged").inc()
        db._ensure_undo_durable(page, modifiers)
        self.protection.write_stolen_logged(db, page, payload, modifiers,
                                            single, old)
        db.counters.logged_steals += 1
        for txn_id in modifiers:
            db.txns.get(txn_id).note_steal(page)
            db._logged_stolen.add((txn_id, page))
            db._last_stolen[(txn_id, page)] = payload
            db._h("steal", txn=txn_id, page=page, logged=True)
        db._barrier("steal", page=page, txns=frozenset(modifiers),
                    logged=True)

    def _batch_gate_stale(self, db, page: int, modifiers: frozenset) -> bool:
        """Batched flush admitted this modifier frame through the gate,
        but execution-time state (a steal earlier in the same batch, a
        degraded array) may have withdrawn the twin cover.  REDO-only
        has no undo log to fall back to, so a stale admission means
        *skip* — the frame stays dirty behind the gate."""
        if self.logging.logs_undo:
            return False
        single = next(iter(modifiers)) if len(modifiers) == 1 else None
        return not self.protection.covers_unlogged_steal(
            db, page, single, page in db._residue)

    def writeback_batch(self, db, entries: list) -> None:
        """Write back a commit window of dirty pages, batching what the
        Figure 3 rule allows.

        ``entries`` is ``[(page, payload, modifiers), ...]`` in the
        buffer's frame order (the legacy flush order).  Consecutive
        pages that are unlogged steals or clean-group committed writes
        into *distinct* parity groups accumulate into a run executed by
        one vectorized array call; anything else — a group collision,
        a logged steal, a dirty-group committed write, a degraded array
        — flushes the pending run and takes the per-page path.  Either
        way the disk write schedule, transfer counts and history events
        are byte-identical to calling :meth:`writeback` per page; each
        page's buffer frame is marked clean right after its write-back,
        as on the legacy path.
        """
        protection = self.protection
        buffer = db.buffer
        if (db.rda is None or not protection.uses_twins
                or db.array.any_failed):
            for page, payload, modifiers in entries:
                if modifiers and self._batch_gate_stale(db, page, modifiers):
                    continue
                self.writeback(db, page, payload, modifiers)
                buffer.mark_clean(page)
            return
        geometry = db.array.geometry
        dirty_set = db.rda.dirty_set
        run = []
        run_groups = set()

        def flush_run():
            protection.write_back_run(db, run)
            run.clear()
            run_groups.clear()

        for page, payload, modifiers in entries:
            group = geometry.group_of(page)
            if group in run_groups:
                flush_run()
            if not modifiers:
                if dirty_set.get(group) is None:
                    run.append(BatchWriteItem("committed", page, group,
                                              payload, None, None))
                    run_groups.add(group)
                    continue
                # dirty-group committed write: updates both twins
            else:
                single = (next(iter(modifiers)) if len(modifiers) == 1
                          else None)
                was_residue = page in db._residue
                if protection.covers_unlogged_steal(db, page, single,
                                                    was_residue):
                    old = db._old_disk_version(single, page)
                    db._residue.discard(page)
                    run.append(BatchWriteItem("steal", page, group, payload,
                                              old, single))
                    run_groups.add(group)
                    continue
                if not self.logging.logs_undo:
                    # REDO-only: the write-behind gate admitted this
                    # frame, but an earlier steal in the same batch
                    # claimed its parity group (Figure 3 rule) — there
                    # is no undo log to promote to, so the frame just
                    # stays dirty behind the gate for a later flush
                    continue
            if run:
                flush_run()
            self.writeback(db, page, payload, modifiers)
            buffer.mark_clean(page)
        if run:
            flush_run()
