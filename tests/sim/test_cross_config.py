"""Cross-configuration equivalence: recovery strategy must not change
semantics.

All four page-mode presets run the *same* deterministic workload (same
seed, same concurrency); whatever the discipline — FORCE or ¬FORCE, RDA
or WAL — the final committed database state must be byte-identical, and
the same transactions must have committed.  Repeated with crashes
injected at the same points.
"""

import pytest

from repro.db import Database, preset
from repro.sim import (CampaignResult, Simulator, Violation, WorkloadSpec,
                       crash_campaign)

PAGE_PRESETS = ["page-force-rda", "page-force-log",
                "page-noforce-rda", "page-noforce-log"]
SIZES = dict(group_size=5, num_groups=12, buffer_capacity=16)
SPEC = WorkloadSpec(concurrency=3, pages_per_txn=5, update_txn_fraction=0.9,
                    update_probability=0.9, abort_probability=0.15,
                    communality=0.5)


def final_state(name, seed, crash_every=None):
    overrides = dict(SIZES)
    if "noforce" in name:
        overrides["checkpoint_interval"] = 300
    db = Database(preset(name, **overrides))
    # buffer_feedback off: the workload must be identical across
    # configurations for the equivalence comparison to be meaningful
    sim = Simulator(db, SPEC, seed=seed, buffer_feedback=False)
    report = sim.run(60, crash_every=crash_every)
    db.buffer.flush_all_dirty()
    state = {page: db.disk_page(page) for page in range(db.num_data_pages)}
    assert db.verify_parity() == []
    return state, report


class TestEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_all_presets_agree(self, seed):
        reference_state, reference_report = final_state(PAGE_PRESETS[0], seed)
        for name in PAGE_PRESETS[1:]:
            state, report = final_state(name, seed)
            assert report.committed == reference_report.committed, name
            assert report.aborted == reference_report.aborted, name
            mismatches = [p for p, payload in state.items()
                          if payload != reference_state[p]]
            assert mismatches == [], (name, mismatches)

    def test_all_presets_agree_with_crashes(self):
        reference_state, _ = final_state(PAGE_PRESETS[0], seed=5,
                                         crash_every=20)
        for name in PAGE_PRESETS[1:]:
            state, report = final_state(name, seed=5, crash_every=20)
            assert report.crashes >= 2, name
            mismatches = [p for p, payload in state.items()
                          if payload != reference_state[p]]
            assert mismatches == [], (name, mismatches)


class TestStructuredViolations:
    """CampaignResult.violations carries (kind, detail) tuples."""

    def test_clean_campaign_has_no_violations(self):
        db = Database(preset("page-force-rda", **SIZES))
        result = crash_campaign(db, SPEC, cycles=2,
                                transactions_per_cycle=10, seed=3)
        assert result.clean
        assert result.violations == []
        assert result.by_kind() == {}

    def test_violations_are_kinded_tuples(self):
        violation = Violation("verify", "cycle 0: parity mismatch in group 1")
        kind, detail = violation
        assert (kind, detail) == (violation.kind, violation.detail)
        result = CampaignResult(violations=[
            violation, Violation("unrecoverable", "disk 2: twin lost")])
        assert not result.clean
        assert result.by_kind() == {"verify": 1, "unrecoverable": 1}
        # str() preserves the old flat-message format for display
        assert str(violation) == \
            "verify: cycle 0: parity mismatch in group 1"
