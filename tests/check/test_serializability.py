"""The serializability/strictness oracle against hand-built histories."""

from repro.check import History, HistoryRecorder, analyze


def build(*ops):
    """ops: tuples (op, txn, page[, slot]) or (op,) / (op, txn)."""
    recorder = HistoryRecorder()
    for op in ops:
        name = op[0]
        if name in ("begin", "commit", "abort"):
            recorder.record(name, txn=op[1])
        elif name in ("crash", "restart"):
            recorder.record(name)
        else:
            recorder.record(name, txn=op[1], page=op[2],
                            slot=op[3] if len(op) > 3 else None)
    return recorder.history


class TestSerializable:
    def test_empty_history(self):
        report = analyze(History())
        assert report.serializable and report.strict and report.clean
        assert report.serial_order == []

    def test_serial_execution(self):
        history = build(("begin", 1), ("write", 1, 0), ("commit", 1),
                        ("begin", 2), ("read", 2, 0), ("write", 2, 0),
                        ("commit", 2))
        report = analyze(history)
        assert report.serializable
        assert report.serial_order == [1, 2]
        assert report.recoverable and report.avoids_cascading_aborts
        assert report.strict
        assert (1, 2) in report.edges

    def test_write_write_cycle_detected(self):
        # T1 and T2 each overwrite a page the other wrote first
        history = build(("begin", 1), ("begin", 2),
                        ("write", 1, 0), ("write", 2, 1),
                        ("write", 1, 1), ("write", 2, 0),
                        ("commit", 1), ("commit", 2))
        report = analyze(history)
        assert not report.serializable
        assert report.cycle is not None
        assert set(report.cycle) >= {1, 2}
        assert report.serial_order is None
        assert any("cycle" in a for a in report.anomalies)

    def test_read_write_cycle_detected(self):
        # classic lost update: both read page 0, then both write it
        history = build(("begin", 1), ("begin", 2),
                        ("read", 1, 0), ("read", 2, 0),
                        ("write", 1, 0), ("write", 2, 0),
                        ("commit", 1), ("commit", 2))
        assert not analyze(history).serializable

    def test_aborted_txn_excluded_from_graph(self):
        # the cycle partner aborts, so the graph stays acyclic
        history = build(("begin", 1), ("begin", 2),
                        ("write", 1, 0), ("write", 2, 1),
                        ("write", 1, 1), ("write", 2, 0),
                        ("commit", 1), ("abort", 2))
        report = analyze(history)
        assert report.serializable

    def test_slots_are_distinct_resources(self):
        history = build(("begin", 1), ("begin", 2),
                        ("write", 1, 0, 0), ("write", 2, 0, 1),
                        ("write", 1, 0, 1), ("write", 2, 0, 0),
                        ("commit", 1), ("commit", 2))
        assert not analyze(history).serializable
        disjoint = build(("begin", 1), ("begin", 2),
                         ("write", 1, 0, 0), ("write", 2, 0, 1),
                         ("commit", 1), ("commit", 2))
        assert analyze(disjoint).serializable


class TestRecoverabilityLadder:
    def test_dirty_read_flagged(self):
        # T2 reads T1's uncommitted write; T1 later aborts
        history = build(("begin", 1), ("begin", 2),
                        ("write", 1, 0), ("read", 2, 0),
                        ("abort", 1), ("commit", 2))
        report = analyze(history)
        assert not report.avoids_cascading_aborts
        assert any("dirty read" in a for a in report.anomalies)
        assert not report.clean

    def test_unrecoverable_commit_order(self):
        # T2 reads from T1 but commits first
        history = build(("begin", 1), ("begin", 2),
                        ("write", 1, 0), ("read", 2, 0),
                        ("commit", 2), ("commit", 1))
        report = analyze(history)
        assert not report.recoverable
        assert not report.avoids_cascading_aborts
        assert not report.strict

    def test_read_after_commit_is_strict(self):
        history = build(("begin", 1), ("write", 1, 0), ("commit", 1),
                        ("begin", 2), ("read", 2, 0), ("commit", 2))
        report = analyze(history)
        assert report.recoverable and report.avoids_cascading_aborts
        assert report.strict

    def test_overwrite_before_eot_not_strict(self):
        # serializable (no cycle) but T2 overwrites T1's page before
        # T1 ends — not strict
        history = build(("begin", 1), ("begin", 2),
                        ("write", 1, 0), ("write", 2, 0),
                        ("commit", 1), ("commit", 2))
        report = analyze(history)
        assert report.serializable
        assert not report.strict


class TestCrashSemantics:
    def test_crash_aborts_in_flight(self):
        # T1 wrote page 0 but the crash killed it; T2 reads afterwards
        # and must be reading the restored (unwritten) value
        history = build(("begin", 1), ("write", 1, 0),
                        ("crash",), ("restart",),
                        ("begin", 2), ("read", 2, 0), ("commit", 2))
        report = analyze(history)
        assert report.serializable and report.strict
        assert report.clean

    def test_committed_before_crash_still_counts(self):
        history = build(("begin", 1), ("write", 1, 0), ("commit", 1),
                        ("crash",), ("restart",),
                        ("begin", 2), ("read", 2, 0), ("commit", 2))
        report = analyze(history)
        assert (1, 2) in report.edges
        assert report.serial_order == [1, 2]
