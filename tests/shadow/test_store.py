"""Tests for the shadow-paging baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidTransactionState
from repro.shadow import ShadowPagedStore
from repro.shadow.store import ShadowSpaceExhausted
from repro.storage import make_page, make_raid5
from repro.storage.page import PAGE_SIZE


def make_store(logical=16, physical_groups=10, group_size=4):
    array = make_raid5(group_size, physical_groups)
    return ShadowPagedStore(array, logical_pages=logical)


@pytest.fixture
def store():
    return make_store()


class TestBatches:
    def test_initial_reads_zero(self, store):
        assert store.read(0) == bytes(PAGE_SIZE)

    def test_write_visible_inside_batch(self, store):
        store.begin()
        store.write(0, make_page(b"new"))
        assert store.read(0) == make_page(b"new")

    def test_commit_installs(self, store):
        store.begin()
        store.write(0, make_page(b"v1"))
        store.commit()
        assert store.read(0) == make_page(b"v1")

    def test_abort_reverts(self, store):
        store.begin()
        store.write(0, make_page(b"v1"))
        store.commit()
        store.begin()
        store.write(0, make_page(b"v2"))
        store.abort()
        assert store.read(0) == make_page(b"v1")

    def test_shadow_version_untouched_on_disk(self, store):
        """The defining property: the committed physical slot is never
        overwritten during the batch."""
        store.begin()
        store.write(0, make_page(b"v1"))
        store.commit()
        old_physical = store._table[0]
        store.begin()
        store.write(0, make_page(b"v2"))
        assert store.array.peek_page(old_physical) == make_page(b"v1")
        store.commit()

    def test_second_write_same_batch_updates_in_place(self, store):
        store.begin()
        store.write(0, make_page(b"a"))
        allocated = list(store._allocated)
        store.write(0, make_page(b"b"))
        assert store._allocated == allocated     # no second slot
        assert store.read(0) == make_page(b"b")

    def test_nested_begin_rejected(self, store):
        store.begin()
        with pytest.raises(InvalidTransactionState):
            store.begin()

    def test_ops_need_batch(self, store):
        with pytest.raises(InvalidTransactionState):
            store.write(0, make_page(b"x"))
        with pytest.raises(InvalidTransactionState):
            store.commit()
        with pytest.raises(InvalidTransactionState):
            store.abort()

    def test_out_of_range_logical(self, store):
        with pytest.raises(ValueError):
            store.read(99)

    def test_wrong_payload_size(self, store):
        store.begin()
        with pytest.raises(ValueError):
            store.write(0, b"tiny")

    def test_space_exhaustion(self):
        store = make_store(logical=16, physical_groups=4)   # no headroom
        store.begin()
        with pytest.raises(ShadowSpaceExhausted):
            store.write(0, make_page(b"x"))

    def test_slots_recycled_across_batches(self, store):
        for round_ in range(20):       # more rounds than free slots
            store.begin()
            store.write(round_ % 4, make_page(round_ % 251))
            store.commit()
        assert store.commits == 20


class TestCrash:
    def test_crash_without_batch_is_noop(self, store):
        store.begin()
        store.write(0, make_page(b"v1"))
        store.commit()
        store.crash()
        store.recover()
        assert store.read(0) == make_page(b"v1")

    def test_crash_mid_batch_reverts(self, store):
        store.begin()
        store.write(0, make_page(b"v1"))
        store.commit()
        store.begin()
        store.write(0, make_page(b"doomed"))
        store.crash()
        store.recover()
        assert store.read(0) == make_page(b"v1")
        assert not store.in_batch

    def test_atomic_across_many_pages(self, store):
        store.begin()
        for logical in range(8):
            store.write(logical, make_page(bytes([logical + 1])))
        store.crash()
        store.recover()
        for logical in range(8):
            assert store.read(logical) == bytes(PAGE_SIZE)


class TestCosts:
    def test_commit_charges_table_pages(self, store):
        store.begin()
        store.write(0, make_page(b"x"))
        cost = store.commit()
        assert cost == 2        # one table page + master block
        assert store.table_writes == 2

    def test_wide_batch_touches_more_table_pages(self):
        store = make_store(logical=300, physical_groups=100)
        store.begin()
        store.write(0, make_page(b"a"))
        store.write(200, make_page(b"b"))     # different table page
        assert store.commit() == 3


class TestScrambling:
    def test_fresh_store_sequential(self, store):
        assert store.scrambling() == 1.0

    def test_updates_scramble(self, store):
        import random
        rng = random.Random(7)
        for _ in range(30):
            store.begin()
            store.write(rng.randrange(store.logical_pages),
                        make_page(rng.randrange(256)))
            store.commit()
        assert store.scrambling() > 1.5

    def test_single_page_store(self):
        store = make_store(logical=1)
        assert store.scrambling() == 0.0


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_shadow_atomicity_property(data):
    """Property: after any mix of committed/aborted/crashed batches, the
    store equals the serial application of committed batches only."""
    store = make_store(logical=6, physical_groups=20)
    expected = {p: bytes(PAGE_SIZE) for p in range(6)}
    for _ in range(data.draw(st.integers(1, 12), label="batches")):
        store.begin()
        writes = {}
        for _ in range(data.draw(st.integers(1, 3), label="writes")):
            page = data.draw(st.integers(0, 5), label="page")
            payload = data.draw(st.binary(min_size=PAGE_SIZE,
                                          max_size=PAGE_SIZE), label="bytes")
            store.write(page, payload)
            writes[page] = payload
        fate = data.draw(st.sampled_from(["commit", "abort", "crash"]),
                         label="fate")
        if fate == "commit":
            store.commit()
            expected.update(writes)
        elif fate == "abort":
            store.abort()
        else:
            store.crash()
            store.recover()
    for page, payload in expected.items():
        assert store.read(page) == payload
