"""Tests for workload generation."""

import pytest

from repro.errors import ModelError
from repro.sim import (HIGH_RETRIEVAL, HIGH_UPDATE, WorkloadGenerator,
                       WorkloadSpec)


class TestSpecValidation:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.concurrency == 6

    def test_paper_environments(self):
        assert HIGH_UPDATE.pages_per_txn == 10
        assert HIGH_UPDATE.update_txn_fraction == 0.8
        assert HIGH_UPDATE.update_probability == 0.9
        assert HIGH_RETRIEVAL.pages_per_txn == 40
        assert HIGH_RETRIEVAL.update_txn_fraction == 0.1
        assert HIGH_RETRIEVAL.update_probability == 0.3

    def test_bad_concurrency(self):
        with pytest.raises(ModelError):
            WorkloadSpec(concurrency=0)

    def test_bad_probability(self):
        with pytest.raises(ModelError):
            WorkloadSpec(update_probability=1.5)

    def test_bad_pages(self):
        with pytest.raises(ModelError):
            WorkloadSpec(pages_per_txn=0)


class TestGenerator:
    def test_script_shape(self):
        gen = WorkloadGenerator(WorkloadSpec(pages_per_txn=7), num_pages=50,
                                seed=1)
        script = gen.next_script()
        assert len(script.accesses) == 7
        assert all(0 <= a.page < 50 for a in script.accesses)

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(WorkloadSpec(), 100, seed=42).next_script([1, 2])
        b = WorkloadGenerator(WorkloadSpec(), 100, seed=42).next_script([1, 2])
        assert a.accesses == b.accesses
        assert a.is_update == b.is_update

    def test_update_fraction_respected(self):
        gen = WorkloadGenerator(
            WorkloadSpec(update_txn_fraction=0.0), 100, seed=1)
        assert not any(gen.next_script().is_update for _ in range(50))
        gen = WorkloadGenerator(
            WorkloadSpec(update_txn_fraction=1.0, update_probability=1.0),
            100, seed=1)
        script = gen.next_script()
        assert script.is_update
        assert all(a.update for a in script.accesses)

    def test_read_only_txn_never_aborts_by_draw(self):
        gen = WorkloadGenerator(
            WorkloadSpec(update_txn_fraction=0.0, abort_probability=1.0),
            100, seed=1)
        assert not gen.next_script().wants_abort

    def test_communality_draws_from_buffered(self):
        gen = WorkloadGenerator(
            WorkloadSpec(communality=1.0, pages_per_txn=20), 1000, seed=9)
        script = gen.next_script(buffered_pages=[5, 6])
        assert {a.page for a in script.accesses} <= {5, 6}

    def test_zero_communality_ignores_buffer(self):
        gen = WorkloadGenerator(
            WorkloadSpec(communality=0.0, pages_per_txn=200), 1000, seed=9)
        script = gen.next_script(buffered_pages=[5])
        pages = {a.page for a in script.accesses}
        assert len(pages) > 50     # spread over the whole database

    def test_rejects_empty_database(self):
        with pytest.raises(ModelError):
            WorkloadGenerator(WorkloadSpec(), 0)

    def test_zipf_skew_concentrates_accesses(self):
        gen = WorkloadGenerator(
            WorkloadSpec(skew=1.2, pages_per_txn=50, communality=0.0),
            1000, seed=4)
        pages = [a.page for _ in range(20) for a in gen.next_script().accesses]
        hot = sum(1 for p in pages if p < 100)    # top 10% of ranks
        assert hot > len(pages) * 0.5

    def test_zero_skew_is_uniform(self):
        gen = WorkloadGenerator(
            WorkloadSpec(skew=0.0, pages_per_txn=50, communality=0.0),
            1000, seed=4)
        pages = [a.page for _ in range(20) for a in gen.next_script().accesses]
        hot = sum(1 for p in pages if p < 100)
        assert hot < len(pages) * 0.25

    def test_negative_skew_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ModelError):
            WorkloadSpec(skew=-0.5)

    def test_skewed_simulation_runs(self):
        from repro.db import Database, preset
        from repro.sim import run_workload
        db = Database(preset("page-force-rda", group_size=5, num_groups=12,
                             buffer_capacity=16))
        report = run_workload(db, WorkloadSpec(skew=1.0, concurrency=3,
                                               pages_per_txn=4), 30, seed=6)
        assert report.committed > 0
        assert db.verify_parity() == []

    def test_update_pages_property(self):
        gen = WorkloadGenerator(
            WorkloadSpec(update_txn_fraction=1.0, update_probability=1.0,
                         pages_per_txn=5), 100, seed=3)
        script = gen.next_script()
        assert script.update_pages == {a.page for a in script.accesses}
