"""TWIST: twin-page storage for rapid transaction undo (Wu & Fuchs).

The paper's reference [12] and the design RDA recovery is benchmarked
against conceptually: keep **two copies of every data page**, alternate
writes between them, and let timestamps plus the commit log decide which
twin is valid.  Undo is free (the old twin *is* the before-image) — but
the storage overhead is 100%, versus RDA's ≈ (100/N)%.

Implemented here as a standalone storage manager so the three schemes —
WAL, TWIST, RDA — can be compared on write cost, undo cost, and storage
price over the same simulated disks.
"""

from .store import TwistStore

__all__ = ["TwistStore"]
