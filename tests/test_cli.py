"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import load_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--preset", "magic"])

    def test_figure_choice_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "8"])


class TestCommands:
    def test_figures_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for number in range(9, 14):
            assert f"Figure {number}" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--figure", "13"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "Figure 9" not in out

    def test_figures_csv(self, capsys):
        assert main(["figures", "--figure", "13", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("s,% increase")
        assert "|" not in out

    def test_simulate_page_mode(self, capsys):
        code = main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "40", "--num-groups", "12",
                     "--buffer", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "clean" in out

    def test_simulate_record_mode(self, capsys):
        code = main(["simulate", "--preset", "record-noforce-rda",
                     "--transactions", "30", "--num-groups", "12",
                     "--buffer", "16"])
        assert code == 0
        assert "record logging" in capsys.readouterr().out

    def test_simulate_with_crashes(self, capsys):
        code = main(["simulate", "--preset", "page-noforce-log",
                     "--transactions", "40", "--crash-every", "15",
                     "--num-groups", "12", "--buffer", "16"])
        assert code == 0
        assert "crashes" in capsys.readouterr().out

    def test_simulate_trace_and_metrics_out(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "run.json"
        code = main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "30", "--num-groups", "12",
                     "--buffer", "16",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out
        events = load_trace(trace)
        assert any(e["name"] == "array.small_write" for e in events)
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["rda.commits"] > 0

    def test_inspect_trace_renders_cost_table(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "30", "--num-groups", "12",
                     "--buffer", "16", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["inspect-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "array.small_write" in out
        assert "model" in out
        assert main(["inspect-trace", str(trace), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(key.startswith("array.small_write") for key in rows)

    def test_inspect_trace_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["inspect-trace", str(bad)]) == 1
        assert "malformed" in capsys.readouterr().out

    def test_reliability(self, capsys):
        assert main(["reliability", "--disks", "100"]) == 0
        out = capsys.readouterr().out
        assert "mirroring" in out
        assert "twin-parity" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "abort via parity twins" in out
        assert "clean" in out

    def test_check_single_preset(self, capsys):
        assert main(["check", "--presets", "page-force-rda",
                     "--transactions", "10"]) == 0
        out = capsys.readouterr().out
        assert "page-force-rda" in out
        assert "clean" in out
        assert "serializable=True" in out

    def test_check_writes_artifacts(self, capsys, tmp_path):
        history = tmp_path / "history.jsonl"
        report = tmp_path / "verdict.json"
        code = main(["check", "--presets", "page-force-rda,page-force-log",
                     "--transactions", "10", "--crash-every", "4",
                     "--history-out", str(history),
                     "--report-out", str(report)])
        assert code == 0
        rows = [json.loads(line) for line in
                history.read_text().splitlines()]
        assert {row["preset"] for row in rows} == {"page-force-rda",
                                                   "page-force-log"}
        assert any(row["op"] == "crash" for row in rows)
        verdict = json.loads(report.read_text())
        assert verdict["clean"] is True
        assert len(verdict["runs"]) == 2

    def test_check_rejects_unknown_preset(self, capsys):
        assert main(["check", "--presets", "page-force-warp"]) == 2
        assert "unknown presets" in capsys.readouterr().out


class TestShardedAndBackendFlags:
    def test_simulate_sharded_with_group_commit(self, capsys):
        code = main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "40", "--num-groups", "12",
                     "--buffer", "16", "--shards", "2",
                     "--group-commit", "4", "--crash-every", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards        : 2" in out
        assert "group commit H=4" in out
        assert "clean" in out

    def test_simulate_backend_raid6(self, capsys):
        code = main(["simulate", "--preset", "page-force-log",
                     "--backend", "raid6", "--transactions", "30",
                     "--num-groups", "12", "--buffer", "16"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_simulate_rda_over_raid6_is_a_clean_error(self, capsys):
        code = main(["simulate", "--preset", "page-force-rda",
                     "--backend", "raid6", "--transactions", "10"])
        assert code == 2
        assert "twin" in capsys.readouterr().out

    def test_simulate_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--backend", "floppy"])

    def test_simulate_accepts_raid6_preset(self, capsys):
        code = main(["simulate", "--preset", "page-force-raid6",
                     "--transactions", "30", "--num-groups", "12",
                     "--buffer", "16"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_fault_sweep_sharded(self, capsys):
        code = main(["simulate", "--fault-sweep", "--shards", "2",
                     "--group-commit", "2", "--fault-transactions", "2",
                     "--group-size", "4", "--num-groups", "8",
                     "--buffer", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "violation" in out or "recovered" in out

    def test_check_sharded_cells(self, capsys):
        code = main(["check", "--presets", "page-force-rda",
                     "--transactions", "10", "--shards", "2"])
        assert code == 0
        assert "page-force-rda@k2" in capsys.readouterr().out

    def test_check_extended_matrix(self, capsys):
        code = main(["check", "--extended", "--transactions", "8",
                     "--crash-every", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "page-force-raid6" in out
        assert "@k2" in out and "@k4" in out


class TestObservatoryCommands:
    """export-trace, drift-check, and the simulate observability flags."""

    def _trace(self, tmp_path, capsys, extra=()):
        trace = tmp_path / "run.jsonl"
        assert main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "40", "--crash-every", "15",
                     "--trace-out", str(trace), *extra]) == 0
        capsys.readouterr()
        return trace

    def test_simulate_prints_recovery_breakdown(self, capsys):
        code = main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "40", "--crash-every", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery      :" in out
        assert "MTTR mean" in out
        assert "analysis" in out

    def test_simulate_sharded_recovery_breakdown(self, capsys):
        code = main(["simulate", "--preset", "page-noforce-rda",
                     "--shards", "2", "--transactions", "40",
                     "--crash-every", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MTTR mean" in out
        assert "redo" in out

    def test_simulate_report_out_includes_profile(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "40", "--crash-every", "15",
                     "--report-out", str(report_path)])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["crashes"] > 0
        profile = report["extra"]["recovery_profile"]
        assert profile["mttr_ms"]["mean"] > 0
        assert "analysis" in profile["phases"]

    def test_simulate_drift_check_clean(self, capsys):
        code = main(["simulate", "--preset", "page-force-rda",
                     "--transactions", "40", "--drift-check"])
        assert code == 0
        assert "drift check   : clean" in capsys.readouterr().out

    def test_export_trace_writes_perfetto_json(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        out_path = tmp_path / "run.perfetto.json"
        assert main(["export-trace", str(trace),
                     "--out", str(out_path)]) == 0
        assert "perfetto" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert {r["ph"] for r in doc["traceEvents"]} <= {"X", "i", "M", "C"}

    def test_export_trace_default_output_path(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        assert main(["export-trace", str(trace)]) == 0
        assert (tmp_path / "run.jsonl.perfetto.json").exists()

    def test_export_trace_missing_file(self, capsys):
        assert main(["export-trace", "/no/such/trace.jsonl"]) == 1
        assert "export-trace:" in capsys.readouterr().out

    def test_drift_check_clean_trace(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        assert main(["drift-check", str(trace)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_drift_check_json_verdict(self, capsys, tmp_path):
        trace = self._trace(tmp_path, capsys)
        assert main(["drift-check", str(trace), "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["clean"] is True
        assert verdict["checked"]

    def test_drift_check_flags_mispriced_trace(self, capsys, tmp_path):
        # a doctored trace: every unbuffered small write costs one
        # transfer more than the model says it may
        trace = tmp_path / "drifted.jsonl"
        with trace.open("w") as handle:
            for seq in range(1, 11):
                handle.write(json.dumps({
                    "seq": seq, "ts": seq / 1000,
                    "name": "array.small_write",
                    "attrs": {"buffered": False, "twins": 1, "reads": 3,
                              "writes": 2, "transfers": 5}}) + "\n")
        assert main(["drift-check", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "alarm" in out
        assert "model predicts 4" in out

    def test_fault_sweep_prints_recovery_mttr(self, capsys):
        code = main(["simulate", "--preset", "page-force-rda",
                     "--fault-sweep", "--fault-modes", "clean",
                     "--num-groups", "40", "--group-size", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MTTR mean" in out

    def test_fault_report_carries_recovery_profiles(self, capsys, tmp_path):
        report_path = tmp_path / "sweep.json"
        code = main(["simulate", "--preset", "page-force-rda",
                     "--fault-sweep", "--fault-modes", "clean",
                     "--num-groups", "40", "--group-size", "4",
                     "--fault-report", str(report_path)])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["recovery"]["recovered_runs"] > 0
        assert report["recovery"]["mttr_ms"]["mean"] > 0
        recovered = [r for r in report["runs"] if r["outcome"] == "recovered"]
        assert all(r["recovery"]["mttr_ms"] >= 0 for r in recovered)
