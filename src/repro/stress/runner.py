"""The chaos loop: phased workload × nemesis × live judges.

One :class:`StressRunner` drives one *cell* (a recovery-class preset at
a shard count K) through alternating rounds of transaction batches and
nemesis ticks:

.. code-block:: text

    seed state → [ batch → judge → nemesis tick ]* → final judge → report
                            │             │
                            │             ├─ expire open mutants, judge
                            │             └─ per action: inject fault
                            │                (registry OPEN) → repair →
                            │                judge → registry CLOSE
                            └─ drain InvariantEngine + DifferentialMirror,
                               structural verify + end-state diff,
                               attribute to the active-fault set

Judging happens *inside* each fault's open window, so every violation
carries the labels of exactly the faults that were in flight — and a
fault only counts as **survived** when its whole window closed without
a single attributed violation.

Clocking: every duration in the report comes from ``options.clock``
(default ``time.perf_counter``); pass a deterministic fake and the full
report — schedule, MTTR, throughput — is byte-identical per seed, which
is how the determinism suite and CI smoke pin the subsystem down.

The fault-free baseline reuses the same campaign loop with the nemesis
disabled but the judges still attached, so the chaos/baseline
throughput ratio isolates the cost of faults rather than the cost of
checking.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from ..check.differential import DifferentialMirror
from ..check.invariants import InvariantEngine, MutantError, default_rules
from ..db.config import preset
from ..db.database import Database
from ..db.verify import verify_database
from ..db.workers import WorkerShardedDatabase, make_sharded
from ..errors import ModelError, RecoveryError, UnrecoverableDataError
from ..obs.recovery_profile import RecoveryProfile
from ..sim.faultplan import Violation, engines_of
from ..wal.records import CommitRecord
from .nemesis import ActiveFaultRegistry, Nemesis, resolve_profile
from .report import StressReport
from .workload import StressPhase, StressWorkload

_DEFAULT_OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=20,
                          checkpoint_interval=200)

_MUTANT_REVERTS = {
    # wal-before-data's mutate() shadows the bound force with a no-op
    # on the instance; popping the shadow restores it, and one explicit
    # force drains whatever the mutant left unforced
    "wal-before-data": lambda engine: (
        engine.undo_log.__dict__.pop("force", None),
        engine.undo_log.force()),
}
"""Rule name -> revert callable.  Only rules listed here may appear in
a profile's ``mutant_rules`` — a mutant that cannot be undone would
poison every later tick of the campaign."""


@dataclass(frozen=True)
class StressOptions:
    """Everything one stress cell needs.

    ``ops`` bounds completed transactions; ``duration_s`` (soak mode)
    bounds wall-clock instead — whichever trips first ends the
    campaign.  ``clock`` is injectable for deterministic reports.
    ``workers`` (sharded cells only) hosts each shard engine in its own
    worker process and enables the ``worker_kill`` fault kind; ``None``
    honors the ``REPRO_WORKERS`` environment variable.
    """

    preset: str = "page-noforce-rda"
    shards: int = 1
    flush_horizon: int = 2
    workers: Optional[bool] = None
    ops: Optional[int] = 64
    duration_s: Optional[float] = None
    batch_size: int = 8
    seed: int = 0
    nemesis_profile: object = "default"
    baseline: bool = True
    drift_check: bool = False
    overrides: Optional[dict] = None
    phases: Optional[Sequence[StressPhase]] = None
    clock: Callable[[], float] = perf_counter

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ModelError("shards (K) must be >= 1")
        if self.batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        if self.ops is None and self.duration_s is None:
            raise ModelError("set ops and/or duration_s, else the "
                             "campaign never ends")


class _Campaign:
    """One pass of the loop: a fresh database, judges and workload.

    Built twice per cell — once with the nemesis, once without (the
    baseline) — so the two passes start from identical states.
    """

    def __init__(self, options: StressOptions,
                 nemesis: Optional[Nemesis]) -> None:
        self.options = options
        self.nemesis = nemesis
        self.clock = options.clock
        config = preset(options.preset,
                        **(options.overrides if options.overrides is not None
                           else _DEFAULT_OVERRIDES))
        self.config = config
        tracer = None
        self.drift = None
        if options.drift_check and nemesis is not None:
            from ..obs.drift import DriftDetector
            from ..obs.tracer import NullSink, Tracer
            tracer = Tracer(NullSink())
            self.drift = DriftDetector().attach(tracer)
        if options.shards > 1:
            self.db = make_sharded(config, shards=options.shards,
                                   flush_horizon=options.flush_horizon,
                                   tracer=tracer, workers=options.workers)
        else:
            self.db = Database(config, tracer=tracer)
        self.worker_mode = isinstance(self.db, WorkerShardedDatabase)
        self.engine = InvariantEngine.attach(self.db)
        self.mirror = DifferentialMirror(record_mode=config.record_logging)
        if config.record_logging:
            self._seed_records()
        self.workload = StressWorkload(self.db, phases=options.phases,
                                       seed=options.seed,
                                       conformance=self.mirror)
        self.registry = ActiveFaultRegistry()
        self.profile = RecoveryProfile(recovery_class=config.algorithm_name,
                                       clock=self.clock)
        self.violations: List[dict] = []
        self.duration_s = 0.0
        self.fatal = False
        self._iv_seen = 0
        self._mv_seen = 0
        self._struct_seen: set = set()
        self._blamed: set = set()
        self._open_mutants: List[tuple] = []
        self.ticks = 0

    def _seed_records(self) -> None:
        """Record-mode setup: one slot-0 record per page, mirrored."""
        from ..sim.simulator import seeding_batches
        db = self.db
        db.format_record_pages(range(db.num_data_pages))
        for batch in seeding_batches(db):
            txn = db.begin()
            for page in batch:
                db.insert_record(txn, page, b"seed")
            db.commit(txn)
        self.mirror.seed({(page, 0): b"seed"
                          for page in range(db.num_data_pages)})

    # -- the loop ------------------------------------------------------------

    def run(self) -> "_Campaign":
        options = self.options
        t0 = self.clock()
        while not self.fatal:
            done = self.workload.committed + self.workload.aborted
            if options.ops is not None and done >= options.ops:
                break
            if (options.duration_s is not None
                    and self.clock() - t0 >= options.duration_s):
                break
            self.workload.run_batch(options.batch_size)
            self._judge(self.ticks)
            if self.nemesis is not None:
                self._nemesis_tick(self.ticks)
            self.ticks += 1
        self._expire_mutants(self.ticks)
        self._judge(self.ticks)
        self.duration_s = self.clock() - t0
        self.profile.finalize(run_wall_ms=self.duration_s * 1e3)
        return self

    # -- judging & attribution -----------------------------------------------

    def _judge(self, tick: int) -> None:
        """Drain every oracle; attribute findings to the open faults."""
        found: List[Violation] = []
        engine_violations = self.engine.violations
        found.extend(engine_violations[self._iv_seen:])
        self._iv_seen = len(engine_violations)
        mirror_violations = self.mirror.violations
        found.extend(mirror_violations[self._mv_seen:])
        self._mv_seen = len(mirror_violations)
        structural = [Violation("verify", detail)
                      for detail in verify_database(self.db)]
        structural.extend(self.mirror.final_state_diff(self.db))
        for violation in structural:
            key = (violation.kind, violation.detail)
            if key not in self._struct_seen:
                self._struct_seen.add(key)
                found.append(violation)
        for violation in found:
            self._report(violation.kind, violation.detail, tick)

    def _report(self, kind: str, detail: str, tick: int) -> None:
        """Record one violation, blaming every currently open fault."""
        self.violations.append({"kind": kind, "detail": detail, "tick": tick,
                                "active_faults":
                                    self.registry.active_labels()})
        self._blamed.update(fault.fault_id
                            for fault in self.registry.active())

    def _close(self, fault, tick: int, repaired: bool) -> None:
        self.registry.close(
            fault, tick,
            survived=repaired and fault.fault_id not in self._blamed)

    # -- the nemesis tick ----------------------------------------------------

    def _nemesis_tick(self, tick: int) -> None:
        self._expire_mutants(tick)
        for _ in range(self.nemesis.profile.injections_per_tick):
            if self.fatal:
                return
            kind = self.nemesis.draw(self._eligible_kinds())
            if kind is None:
                return
            getattr(self, "_do_" + kind)(tick)

    def _eligible_kinds(self) -> List[str]:
        eligible = ["crash", "media", "trim"]
        if self.worker_mode:
            # latent/torn_log/mutant reach directly into shard engine
            # internals (disk slots, log bytes, instance dicts), which
            # live across a process boundary here; worker_kill is the
            # worker-mode-native fault instead
            eligible.append("worker_kill")
        else:
            eligible.append("latent")
            if any(log.size_bytes > 0 for log in self._logs()):
                eligible.append("torn_log")
        if self.options.shards >= 2:
            eligible.append("shard_kill")
        profile = self.nemesis.profile
        if (not self.worker_mode and profile.mutant_rules
                and not self._open_mutants):
            unknown = [rule for rule in profile.mutant_rules
                       if rule not in _MUTANT_REVERTS]
            if unknown:
                raise ModelError(
                    f"mutant rules {unknown} have no registered revert; "
                    f"choose from {sorted(_MUTANT_REVERTS)}")
            eligible.append("mutant")
        return eligible

    def _logs(self) -> list:
        if self.options.shards > 1:
            logs = [self.db.commit_log]
            for shard in self.db.shards:
                logs.append(shard.undo_log)
                if shard.redo_log is not shard.undo_log:
                    logs.append(shard.redo_log)
            return logs
        logs = [self.db.undo_log]
        if self.db.redo_log is not self.db.undo_log:
            logs.append(self.db.redo_log)
        return logs

    def _num_disks(self) -> int:
        if self.options.shards > 1:
            return self.db.num_disks
        return len(self.db.array.disks)

    # -- fault executors -----------------------------------------------------
    #
    # Shape of every executor: draw parameters from the nemesis RNG,
    # OPEN the fault, inject + repair, judge inside the window, CLOSE.
    # A repair that throws is itself a violation (the paper's recovery
    # procedures must always succeed with the redundancy intact) and is
    # fatal to the campaign: the engine is not trustworthy afterwards.

    def _do_crash(self, tick: int) -> None:
        fault = self.registry.open("crash", "system crash + restart", tick)
        repaired = self._crash_recover(tick, fault, damage=None)
        self.nemesis.record(tick, "crash", {},
                            "recovered" if repaired else "failed")
        self._close(fault, tick, repaired)

    def _do_torn_log(self, tick: int) -> None:
        rng = self.nemesis.rng
        self.db.crash()
        self.mirror.crash()
        candidates = [log for log in self._logs() if log.size_bytes > 0]
        params: dict = {}
        if candidates:
            log = candidates[rng.randrange(len(candidates))]
            copy = rng.randrange(2)
            offset = rng.randrange(log.size_bytes)
            log.damage_copy(copy, offset)
            params = {"log": log.name, "copy": copy, "offset": offset}
            detail = (f"torn write: {log.name} copy {copy} "
                      f"byte {offset} mangled")
        else:
            detail = "crash with empty durable logs (nothing to tear)"
        fault = self.registry.open("torn_log", detail, tick)
        repaired = self._recover_crashed(tick, fault)
        self.nemesis.record(tick, "torn_log", params,
                            "healed" if repaired else "failed")
        self._close(fault, tick, repaired)

    def _crash_recover(self, tick: int, fault, damage) -> bool:
        self.db.crash()
        self.mirror.crash()
        if damage is not None:
            damage()
        return self._recover_crashed(tick, fault)

    def _recover_crashed(self, tick: int, fault) -> bool:
        self.profile.begin_cycle()
        try:
            stats = self.db.recover()
        except (RecoveryError, UnrecoverableDataError, ModelError) as exc:
            self.profile.end_cycle(None)
            self._report("recovery-failure",
                         f"{fault.kind}: restart raised {exc!r}", tick)
            self.fatal = True
            return False
        self.profile.end_cycle(stats)
        self._judge(tick)
        return True

    def _do_media(self, tick: int) -> None:
        rng = self.nemesis.rng
        victim = rng.randrange(self._num_disks())
        fault = self.registry.open("media", f"disk {victim} fail-stop "
                                            "+ rebuild", tick)
        repaired = True
        try:
            self.db.media_failure(victim)
            self.db.media_recover(victim, on_lost_undo="adopt")
        except (RecoveryError, UnrecoverableDataError, ModelError) as exc:
            self._report("recovery-failure",
                         f"media: rebuild of disk {victim} raised {exc!r}",
                         tick)
            self.fatal = True
            repaired = False
        else:
            self._judge(tick)
        self.nemesis.record(tick, "media", {"disk": victim},
                            "rebuilt" if repaired else "failed")
        self._close(fault, tick, repaired)

    def _do_latent(self, tick: int) -> None:
        rng = self.nemesis.rng
        engines = engines_of(self.db)
        shard = rng.randrange(len(engines))
        engine = engines[shard]
        # target a *written* slot: latent corruption of a never-written
        # sector carries no checksum to contradict, so the scrub cannot
        # (and need not) find it — there is no data there to lose
        start = rng.randrange(engine.num_data_pages)
        page = address = None
        for step in range(engine.num_data_pages):
            candidate = (start + step) % engine.num_data_pages
            location = engine.array.geometry.data_address(candidate)
            disk = engine.array.disks[location.disk]
            if not disk.failed and disk.slot_written(location.slot):
                page, address = candidate, location
                break
        if page is None:
            self.nemesis.record(tick, "latent", {"shard": shard},
                                "skipped-no-written-slot")
            return
        params = {"shard": shard, "page": page, "disk": address.disk,
                  "slot": address.slot}
        fault = self.registry.open(
            "latent", f"latent sector: shard {shard} page {page} "
                      f"(disk {address.disk} slot {address.slot})", tick)
        engine.array.disks[address.disk].corrupt(address.slot)
        repaired_pages = engine.array.scrub_repair()
        repaired = page in repaired_pages
        if not repaired:
            self._report("recovery-failure",
                         f"latent: scrub repaired {repaired_pages}, "
                         f"not page {page}", tick)
        self._judge(tick)
        self.nemesis.record(tick, "latent", params,
                            "scrubbed" if repaired else "missed")
        self._close(fault, tick, repaired)

    def _do_trim(self, tick: int) -> None:
        fault = self.registry.open("trim", "checkpoint + log trim", tick)
        checkpointed = False
        if self.db.checkpointer is not None:
            self.db.checkpoint()
            checkpointed = True
        discarded = self.db.trim_log()
        self._judge(tick)
        self.nemesis.record(tick, "trim", {"checkpoint": checkpointed,
                                           "discarded": discarded}, "trimmed")
        self._close(fault, tick, True)

    def _do_shard_kill(self, tick: int) -> None:
        rng = self.nemesis.rng
        shards = self.options.shards
        count = rng.randint(1, max(1, min(self.nemesis.profile.max_shard_kills,
                                          shards - 1)))
        victims = sorted(rng.sample(range(shards), count))
        fault = self.registry.open(
            "shard_kill", f"kill + restart shards {victims} of {shards}",
            tick)
        # the group-commit crash contract: acknowledged commits must be
        # durable before any shard loses memory
        self.db.coordinator.flush()
        global_winners = {record.txn_id
                          for record in self.db.commit_log.scan(CommitRecord)}
        repaired = True
        self.profile.begin_cycle()
        for index in victims:
            self.db.shards[index].crash()
        for index in victims:
            try:
                stats = self.db.shards[index].recover()
            except (RecoveryError, UnrecoverableDataError, ModelError) as exc:
                self._report("recovery-failure",
                             f"shard_kill: shard {index} restart raised "
                             f"{exc!r}", tick)
                self.fatal = True
                repaired = False
                break
            torn = global_winners.intersection(stats["losers"])
            if torn:
                self._report(
                    "shard-kill-atomicity",
                    f"shard {index} lost globally committed transaction(s) "
                    f"{sorted(torn)}", tick)
        self.profile.end_cycle(None)
        if repaired:
            self._judge(tick)
        self.nemesis.record(tick, "shard_kill", {"victims": victims},
                            "restarted" if repaired else "failed")
        self._close(fault, tick, repaired)

    def _do_worker_kill(self, tick: int) -> None:
        """SIGKILL one shard's worker process, then drive the crash
        contract.

        The kill is unceremonious — whatever the worker was holding
        (deferred group-commit forces, buffered state) dies with it.
        The facade's ``crash()`` heals the worker first (journal
        replay rebuilds the engine to the state where every journaled
        command fully executed), *then* drains the coordinator, so the
        battery-backed-buffer contract still covers every acknowledged
        commit; restart recovery's global-winner cross-check is the
        judge of record for the atomicity claim.
        """
        rng = self.nemesis.rng
        victim = rng.randrange(self.options.shards)
        fault = self.registry.open(
            "worker_kill", f"SIGKILL shard {victim} worker + heal "
                           "+ restart", tick)
        self.db.supervisor.kill(victim)
        repaired = self._crash_recover(tick, fault, damage=None)
        self.nemesis.record(tick, "worker_kill", {"shard": victim},
                            "healed" if repaired else "failed")
        self._close(fault, tick, repaired)

    def _do_mutant(self, tick: int) -> None:
        rng = self.nemesis.rng
        rules = {rule.name: rule for rule in default_rules()}
        name = self.nemesis.profile.mutant_rules[
            rng.randrange(len(self.nemesis.profile.mutant_rules))]
        engines = engines_of(self.db)
        shard = rng.randrange(len(engines))
        engine = engines[shard]
        try:
            detail = rules[name].mutate(engine)
        except MutantError as exc:
            self.nemesis.record(tick, "mutant",
                                {"rule": name, "shard": shard},
                                f"inapplicable: {exc}")
            return
        fault = self.registry.open("mutant", f"{name} on shard {shard}: "
                                             f"{detail}", tick)
        self._open_mutants.append((fault, name, engine))
        self.nemesis.record(tick, "mutant", {"rule": name, "shard": shard},
                            "armed")

    def _expire_mutants(self, tick: int) -> None:
        """Revert armed mutants and close their attribution windows.

        Runs at the head of each nemesis tick (so a mutant stays active
        across exactly one batch of judged work) and once at campaign
        end.  A mutant *survived* means the corruption went undetected
        — the inverted polarity is deliberate and is what the
        attribution tests assert on.
        """
        for fault, name, engine in self._open_mutants:
            _MUTANT_REVERTS[name](engine)
            self._judge(tick)
            self._close(fault, tick, repaired=True)
        self._open_mutants.clear()


class StressRunner:
    """Runs one stress cell (chaos pass + optional baseline pass)."""

    def __init__(self, options: StressOptions) -> None:
        self.options = options
        self.nemesis = Nemesis(options.nemesis_profile, seed=options.seed)

    def run(self) -> StressReport:
        options = self.options
        chaos = _Campaign(options, self.nemesis)
        try:
            chaos.run()
        finally:
            worker_deaths = getattr(chaos.db, "worker_deaths", 0)
            if hasattr(chaos.db, "close"):
                chaos.db.close()
        report = StressReport(
            preset=options.preset,
            shards=options.shards,
            seed=options.seed,
            nemesis_profile=self.nemesis.profile.name,
            workers=chaos.worker_mode,
            worker_deaths=worker_deaths,
            ticks=chaos.ticks,
            committed=chaos.workload.committed,
            aborted=chaos.workload.aborted,
            deadlocks=chaos.workload.deadlocks,
            faults_injected=chaos.registry.injected,
            faults_survived=chaos.registry.survived,
            injected_by_kind=chaos.registry.injected_by_kind(),
            survived_by_kind=chaos.registry.survived_by_kind(),
            violations=chaos.violations,
            phase_batches=chaos.workload.phase_batches,
            duration_s=chaos.duration_s,
            mttr=(chaos.profile.to_dict() if chaos.profile.crashes else None),
            drift=(chaos.drift.summary() if chaos.drift is not None else None),
            schedule=self.nemesis.schedule,
            faults=chaos.registry.to_dicts(),
        )
        if options.baseline and not chaos.fatal:
            baseline = _Campaign(options, nemesis=None)
            try:
                baseline.run()
            finally:
                if hasattr(baseline.db, "close"):
                    baseline.db.close()
            report.baseline_committed = baseline.workload.committed
            report.baseline_duration_s = baseline.duration_s
            # a baseline violation means the judges (or the engine) are
            # broken without any fault injected — surface it loudly
            for violation in baseline.violations:
                report.violations.append(dict(violation,
                                              kind="baseline-" +
                                                   violation["kind"]))
        return report


def default_matrix(seed: int = 0, nemesis_profile: object = "default",
                   **option_overrides) -> List[StressOptions]:
    """The acceptance matrix: all five recovery classes at K=1 (the
    four RDA classes plus both REDO-only presets) and three K=2
    sharded cells under group commit."""
    cells: List[Tuple[str, int]] = [
        ("page-force-rda", 1),
        ("page-noforce-rda", 1),
        ("record-force-rda", 1),
        ("record-noforce-rda", 1),
        ("page-noforce-redo", 1),
        ("record-noforce-rda-redo", 1),
        ("page-force-rda", 2),
        ("page-noforce-redo", 2),
        ("record-noforce-rda-redo", 2),
    ]
    base = StressOptions(seed=seed, nemesis_profile=nemesis_profile,
                         **option_overrides)
    return [replace(base, preset=name, shards=shards)
            for name, shards in cells]


def run_stress_matrix(cells: Sequence[StressOptions]) -> List[StressReport]:
    """Run every cell; each gets its own Nemesis seeded from its options."""
    return [StressRunner(options).run() for options in cells]
