"""Property test: the catalog against a shadow directory.

Random create/drop/insert/crash sequences; after every crash the
catalog must list exactly the committed objects, their pages must never
overlap, and committed record contents must survive.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Database, preset
from repro.db.catalog import Catalog, CatalogError


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_catalog_matches_shadow(data):
    db = Database(preset("record-noforce-rda", group_size=5, num_groups=16,
                         buffer_capacity=20, checkpoint_interval=None))
    setup = db.begin()
    catalog = Catalog.create(db, setup)
    db.commit(setup)

    committed = {}          # name -> {"kind", "record": (rid, bytes)|None}
    names = [f"obj{i}" for i in range(6)]

    for _ in range(data.draw(st.integers(1, 12), label="steps")):
        action = data.draw(st.sampled_from(
            ["create", "drop", "crash"]), label="action")
        if action == "crash":
            db.crash()
            db.recover()
            txn = db.begin()
            assert set(catalog.list_objects(txn)) == set(committed)
            for name, meta in committed.items():
                obj = catalog.open(txn, name)
                if meta["kind"] == "heap" and meta["record"]:
                    rid, payload = meta["record"]
                    assert obj.read(txn, rid) == payload
            db.commit(txn)
            continue
        txn = db.begin()
        outcome = data.draw(st.sampled_from(["commit", "abort"]),
                            label="outcome")
        try:
            if action == "create":
                name = data.draw(st.sampled_from(names), label="name")
                kind = data.draw(st.sampled_from(["heap", "btree"]),
                                 label="kind")
                if name in committed:
                    db.abort(txn)
                    continue
                record = None
                if kind == "heap":
                    heap = catalog.create_heap(txn, name, pages=2)
                    payload = data.draw(st.binary(min_size=1, max_size=16),
                                        label="payload")
                    record = (heap.insert(txn, payload), payload)
                else:
                    tree = catalog.create_btree(txn, name, pages=4)
                    tree.put(txn, b"k", b"v")
                if outcome == "commit":
                    db.commit(txn)
                    committed[name] = {"kind": kind, "record": record}
                else:
                    db.abort(txn)
            else:  # drop
                if not committed:
                    db.abort(txn)
                    continue
                name = data.draw(st.sampled_from(sorted(committed)),
                                 label="dropname")
                catalog.drop(txn, name)
                if outcome == "commit":
                    db.commit(txn)
                    del committed[name]
                else:
                    db.abort(txn)
        except CatalogError:
            db.abort(txn)

    # final: no page overlaps among live objects
    txn = db.begin()
    doc = catalog._load(txn)
    seen = set()
    for meta in doc["objects"].values():
        pages = set(meta["pages"])
        assert pages.isdisjoint(seen)
        seen |= pages
    assert set(catalog.list_objects(txn)) == set(committed)
    db.commit(txn)
