"""Figure 9: page logging, ¬ATOMIC/STEAL/FORCE/TOC — throughput vs C.

Regenerates the paper's first evaluation figure: four curves (high
update / high retrieval, each ±RDA) over the communality sweep, and
checks the headline shape — RDA lifts high-update throughput by ≈42% at
C = 0.9, with the figure's axis range ≈ 48 800 .. 77 300.
"""

import pytest

from repro.model import figure9
from repro.model.page_logging import force_toc
from repro.model.params import high_update

from .conftest import write_table


def test_figure9_regeneration(benchmark, results_dir):
    figure = benchmark(figure9)
    write_table(results_dir, "figure09", figure.format_table())

    upd_base = figure.curves["high-update ¬RDA"]
    upd_rda = figure.curves["high-update RDA"]
    ret_base = figure.curves["high-retrieval ¬RDA"]
    ret_rda = figure.curves["high-retrieval RDA"]

    # paper shape: RDA dominates everywhere, benefit grows with C
    assert all(r > b for r, b in zip(upd_rda, upd_base))
    assert all(r > b for r, b in zip(ret_rda, ret_base))
    gains = [r / b for r, b in zip(upd_rda, upd_base)]
    assert gains[-1] > gains[0]

    # headline: +42% at C = 0.9, axis range ~48.8k..77.3k
    at_09 = figure.x_values.index(0.9)
    headline = upd_rda[at_09] / upd_base[at_09] - 1.0
    assert headline == pytest.approx(0.42, abs=0.05)
    assert upd_base[0] == pytest.approx(48800, rel=0.10)
    assert upd_rda[at_09] == pytest.approx(77300, rel=0.10)

    benchmark.extra_info["high_update_gain_at_C0.9"] = round(headline, 4)
    benchmark.extra_info["paper_gain_at_C0.9"] = 0.42


def test_figure9_single_point_cost(benchmark):
    """Micro: one model evaluation (both variants at one C)."""

    def evaluate():
        p = high_update(C=0.9)
        return (force_toc(p, rda=False).throughput,
                force_toc(p, rda=True).throughput)

    base, rda = benchmark(evaluate)
    assert rda > base
