"""The RDA recovery manager: write policy, undo-via-parity, crash scan.

This is the paper's contribution (Section 4) as an executable policy
layer over :class:`~repro.storage.twin_array.TwinParityArray`:

* decide, per write-back, whether UNDO logging is required
  (:meth:`RDAManager.needs_undo_log` — the Figure 3 rule);
* perform uncommitted writes into the free parity twin
  (:meth:`write_uncommitted`), committed/logged writes in place or into
  both twins of a dirty group (:meth:`write_committed`);
* commit by flipping the in-memory current-parity bit — **zero I/O**
  (:meth:`commit_txn`);
* abort by recomputing the before-image ``D_old = P_w ⊕ P_c ⊕ D_new``
  and restoring it (:meth:`abort_txn` / :meth:`undo_group`), five to six
  page transfers per page, exactly the ``6 p_l + 5 (1 - p_l)`` term of
  the paper's cost model;
* after a crash, rebuild the Dirty_Set and the current-parity bitmap by
  scanning the twin headers against the log's commit set
  (:meth:`crash_scan`, Section 4.3 and the Figure 7/8 machinery);
* supply the Dirty_Set view that media rebuild needs
  (:meth:`dirty_info_for_rebuild`, :meth:`after_media_rebuild`).

The manager keeps a main-memory cache of twin headers (the paper's
current-parity bit map plus the twin states of Figure 8); the cache is
lost in a crash and rebuilt by :meth:`crash_scan`.
"""

from __future__ import annotations

from ..errors import ParityGroupError, RecoveryError
from ..storage.page import (NO_PAGE, NO_TXN, ParityHeader, TwinState,
                            compute_parity, xor_pages)
from ..storage.twin_array import (BatchTwinWrite, DirtyGroupInfo,
                                  TwinParityArray, TwinUpdate,
                                  select_current_twin)
from .parity_group import DirtyEntry, DirtySet


class RDAManager:
    """Policy engine for RDA recovery over a twin-parity array.

    Tracing and metrics piggyback on the array's (``array.tracer`` /
    ``array.metrics``) so the whole storage-plus-policy stack shares one
    event stream; the manager adds the *policy* events — dirty-group
    enter/leave, zero-transfer twin flips at commit, costed undos.
    """

    def __init__(self, array: TwinParityArray, dirty_set: DirtySet | None = None) -> None:
        self.array = array
        self.dirty_set = dirty_set if dirty_set is not None else DirtySet()
        self.tracer = array.tracer
        self.metrics = array.metrics
        self._g_dirty = (self.metrics.gauge("rda.dirty_groups")
                         if self.metrics is not None else None)
        self._m_unlogged = (self.metrics.counter("rda.unlogged_steals")
                            if self.metrics is not None else None)
        self._headers: dict = {}       # group -> [header0, header1] cache
        self._current: dict = {}       # group -> current twin index (the bit map)
        self.barrier_hook = None       # conformance seam (repro.check)

    def _note_dirty_gauge(self) -> None:
        if self._g_dirty is not None:
            self._g_dirty.set(len(self.dirty_set))

    # -- header cache -------------------------------------------------------------

    def _cached_headers(self, group: int) -> list:
        """Twin headers for ``group`` from the main-memory map.

        The map is maintained incrementally from array-initialization
        time (the paper keeps the current-parity bit map and twin states
        in main memory), so priming an entry consults the simulator's
        uncounted view rather than charging page transfers; after a
        crash the map is rebuilt by :meth:`crash_scan`, which *does* pay
        for its reads.
        """
        headers = self._headers.get(group)
        if headers is None:
            _, h0 = self.array.peek_twin(group, 0)
            _, h1 = self.array.peek_twin(group, 1)
            headers = [h0, h1]
            self._headers[group] = headers
            self._current.setdefault(group, select_current_twin((h0, h1)))
        return headers

    def current_twin(self, group: int) -> int:
        """Index of the twin holding the group's valid parity."""
        if group not in self._current:
            self._cached_headers(group)
        return self._current[group]

    def lose_memory(self) -> None:
        """Crash: Dirty_Set, header cache and bitmap all vanish."""
        self.dirty_set.lose_memory()
        self._headers.clear()
        self._current.clear()

    # -- the write-back rule (paper Figure 3) -----------------------------------------

    def needs_undo_log(self, page: int, txn_id: int) -> bool:
        """True when writing this uncommitted page back would require an
        UNDO log record first (the group is dirty with another page or
        another transaction)."""
        group = self.array.geometry.group_of(page)
        return not self.dirty_set.can_write_without_undo(group, page, txn_id)

    def write_uncommitted(self, page: int, payload: bytes, txn_id: int,
                          old_data: bytes | None = None,
                          logged: bool = False) -> None:
        """Write back a page modified by an active transaction.

        With ``logged=False`` the write must satisfy the Figure 3 rule
        (clean group, or re-steal of the same page by the same
        transaction) and is protected by the parity twins alone; the
        group becomes (or stays) dirty.  With ``logged=True`` the caller
        has already made an UNDO record durable, and the write updates
        the parity like a committed write (both twins if the group is
        dirty, so the twin-XOR identity keeps isolating the unlogged
        page).

        Raises:
            ParityGroupError: unlogged write violating the rule.
        """
        group = self.array.geometry.group_of(page)
        if logged:
            self._parity_tracking_write(group, page, payload, old_data)
            return
        entry = self.dirty_set.get(group)
        if entry is None:
            self._first_steal(group, page, payload, txn_id, old_data)
        elif entry.page_id == page and entry.txn_id == txn_id:
            self._resteal(entry, payload, old_data)
        else:
            raise ParityGroupError(
                f"unlogged write of page {page} (txn {txn_id}) into dirty "
                f"group {group} (page {entry.page_id}, txn {entry.txn_id})"
            )

    def _first_steal(self, group: int, page: int, payload: bytes, txn_id: int,
                     old_data: bytes | None) -> None:
        headers = self._cached_headers(group)
        current = self.current_twin(group)
        target = 1 - current
        stamp = self.array.next_timestamp()
        index = self.array.geometry.index_in_group(page)
        header = ParityHeader(timestamp=stamp, txn_id=txn_id,
                              dirty_page_index=index, state=TwinState.WORKING)
        # twin_first: the working twin is the steal's only undo source,
        # so it must reach disk before the data overwrite (the parity
        # analogue of the WAL rule)
        self.array.small_write(page, payload,
                               [TwinUpdate(current, target, header)],
                               old_data=old_data, twin_first=True)
        headers[target] = header
        self.dirty_set.mark_dirty(DirtyEntry(
            group=group, txn_id=txn_id, page_id=page, page_index=index,
            working_twin=target, working_timestamp=stamp))
        self._note_dirty_gauge()
        if self.tracer.enabled:
            self.tracer.emit("rda.group_dirty", group=group, page=page,
                             txn=txn_id)
        if self._m_unlogged is not None:
            self._m_unlogged.inc()

    def _resteal(self, entry: DirtyEntry, payload: bytes,
                 old_data: bytes | None) -> None:
        headers = self._cached_headers(entry.group)
        stamp = self.array.next_timestamp()
        header = ParityHeader(timestamp=stamp, txn_id=entry.txn_id,
                              dirty_page_index=entry.page_index,
                              state=TwinState.WORKING)
        which = entry.working_twin
        self.array.small_write(entry.page_id, payload,
                               [TwinUpdate(which, which, header)],
                               old_data=old_data, twin_first=True)
        headers[which] = header
        self.dirty_set.mark_dirty(DirtyEntry(
            group=entry.group, txn_id=entry.txn_id, page_id=entry.page_id,
            page_index=entry.page_index, working_twin=which,
            working_timestamp=stamp))

    def write_batch(self, items: list, on_page=None) -> None:
        """A commit window of write-backs, batched through
        :meth:`~repro.storage.twin_array.TwinParityArray.small_write_batch`.

        ``items`` carry ``kind`` (``"steal"`` — an unlogged first steal
        or re-steal — or ``"committed"`` — a clean-group committed
        write-back), ``page``, ``group``, ``payload``, ``old`` (buffered
        before-image or None) and ``txn`` (steals only).  The caller
        (:meth:`repro.db.policy.RecoveryPolicy.writeback_batch`)
        guarantees the batchability rules: distinct groups, no failed
        disks, every steal legal under the Figure 3 rule, every
        committed write into a *clean* group.

        Timestamps are allocated in item order before any I/O — the
        same sequence the per-page path would produce, since nothing
        else touches the clock inside a window.  Per-page bookkeeping
        (header cache, Dirty_Set, ``on_page``) runs from the array's
        ``on_op`` callback, interleaved with the write schedule exactly
        as on the legacy path; only the trace stream is coalesced.
        """
        array = self.array
        geometry = array.geometry
        cached_headers = self._cached_headers
        dirty_get = self.dirty_set.get
        next_timestamp = array.next_timestamp
        current_twin = self.current_twin
        ops = []
        posts = []
        first_steals = 0
        for item in items:
            group = item.group
            headers = cached_headers(group)
            if item.kind == "steal":
                entry = dirty_get(group)
                stamp = next_timestamp()
                if entry is None:
                    current = current_twin(group)
                    target = 1 - current
                    index = geometry.index_in_group(item.page)
                    source = current
                    first = True
                    first_steals += 1
                else:
                    index = entry.page_index
                    target = entry.working_twin
                    source = target
                    first = False
                header = ParityHeader(timestamp=stamp, txn_id=item.txn,
                                      dirty_page_index=index,
                                      state=TwinState.WORKING)
                ops.append(BatchTwinWrite(item.page, group, item.payload,
                                          TwinUpdate(source, target, header),
                                          item.old, True))
                posts.append((headers, target, header, DirtyEntry(
                    group=group, txn_id=item.txn, page_id=item.page,
                    page_index=index, working_twin=target,
                    working_timestamp=stamp), first))
            else:
                current = current_twin(group)
                stamp = next_timestamp()
                header = ParityHeader(timestamp=stamp,
                                      state=TwinState.COMMITTED)
                ops.append(BatchTwinWrite(item.page, group, item.payload,
                                          TwinUpdate(current, current, header),
                                          item.old, False))
                posts.append((headers, current, header, None, False))

        traced = self.tracer.enabled

        def _after(i):
            headers, target, header, entry, first = posts[i]
            headers[target] = header
            if entry is not None:
                self.dirty_set.mark_dirty(entry)
                if first:
                    self._note_dirty_gauge()
            if on_page is not None:
                on_page(i)

        # first_steals rides on the array's costed window event (one
        # trace event per window, not two); the aggregator expands it
        # back into rda.group_dirty rows
        array.small_write_batch(
            ops, on_op=_after,
            event_attrs={"first_steals": first_steals} if traced else None)
        if self._m_unlogged is not None and first_steals:
            self._m_unlogged.inc(first_steals)

    def write_committed(self, page: int, payload: bytes,
                        old_data: bytes | None = None) -> None:
        """Write back a page whose changes are committed (or UNDO-logged):
        parity tracks the data; no undo information is consumed."""
        group = self.array.geometry.group_of(page)
        self._parity_tracking_write(group, page, payload, old_data)

    def _parity_tracking_write(self, group: int, page: int, payload: bytes,
                               old_data: bytes | None) -> None:
        headers = self._cached_headers(group)
        entry = self.dirty_set.get(group)
        if entry is None:
            current = self.current_twin(group)
            stamp = self.array.next_timestamp()
            header = ParityHeader(timestamp=stamp, state=TwinState.COMMITTED)
            self.array.small_write(page, payload,
                                   [TwinUpdate(current, current, header)],
                                   old_data=old_data)
            headers[current] = header
            return
        # dirty group: update BOTH twins so P_w ⊕ P_c stays the dirty
        # page's delta (paper Figure 6); each twin keeps its role
        working = entry.working_twin
        committed = 1 - working
        committed_header = headers[committed].with_(state=TwinState.COMMITTED)
        working_header = headers[working]
        self.array.small_write(page, payload, [
            TwinUpdate(committed, committed, committed_header),
            TwinUpdate(working, working, working_header),
        ], old_data=old_data)
        headers[committed] = committed_header

    # -- EOT processing ------------------------------------------------------------------

    def commit_txn(self, txn_id: int) -> list:
        """Commit: each dirty group's working twin becomes the current
        parity.  Pure main-memory bit flips — **no page transfers**; the
        durable commit record in the log is what makes the WORKING twins
        valid at recovery time.  Returns the groups cleaned."""
        groups = self.dirty_set.groups_of(txn_id)
        for group in groups:
            entry = self.dirty_set.clean(group)
            self._current[group] = entry.working_twin
            if self.barrier_hook is not None:
                self.barrier_hook("flip", group=group, txn=txn_id,
                                  twin=entry.working_twin)
        if self.tracer.enabled:
            # the paper's headline number: committing a stolen page
            # costs zero page transfers (a main-memory bit flip).  The
            # per-group flips ride on the commit event's ``groups``
            # count; the trace aggregator expands them back into
            # ``rda.twin_flip`` rows (coalesced dispatch)
            self.tracer.emit("rda.commit", txn=txn_id, groups=len(groups),
                             reads=0, writes=0, transfers=0)
        self._note_dirty_gauge()
        if self.metrics is not None:
            self.metrics.counter("rda.commits").inc()
            self.metrics.counter("rda.twin_flips").inc(len(groups))
        return groups

    def abort_txn(self, txn_id: int, buffered=None) -> dict:
        """Abort: undo every unlogged stolen page of the transaction via
        the parity twins.  ``buffered`` optionally maps ``page_id`` to
        the page's current *on-disk-equivalent* contents to save the
        D_new read.  Returns ``{page_id: restored_before_image}``."""
        restored = {}
        for group in self.dirty_set.groups_of(txn_id):
            entry = self.dirty_set.entry(group)
            new_data = None if buffered is None else buffered.get(entry.page_id)
            page, image = self.undo_group(group, new_data)
            restored[page] = image
        return restored

    def undo_group(self, group: int, new_data: bytes | None = None) -> tuple:
        """Undo the unlogged stolen page of a dirty group.

        Reads both twins (2 transfers), the current page if not supplied
        (1), restores the before-image (1 write), and invalidates the
        working twin (1) — the model's 5-6 transfers per recovered page.

        Returns ``(page_id, before_image)``.
        """
        if self.metrics is not None:
            self.metrics.counter("rda.undos").inc()
        if not self.tracer.enabled:
            return self._undo_group_inner(group, new_data)
        buffered = new_data is not None
        with self.array.stats.window() as window:
            page, before = self._undo_group_inner(group, new_data)
        self.tracer.emit_costed("rda.undo", window, group=group, page=page,
                                buffered=buffered)
        self.tracer.emit("rda.group_clean", group=group, cause="undo")
        return page, before

    def _undo_group_inner(self, group: int, new_data: bytes | None) -> tuple:
        entry = self.dirty_set.entry(group)
        working_payload, _ = self.array.read_twin(group, entry.working_twin)
        committed_payload, _ = self.array.read_twin(group, 1 - entry.working_twin)
        if working_payload == compute_parity(
                self.array.group_data_payloads(group)):
            # normal case: the steal fully landed, so the twin-XOR
            # identity recovers the before-image from D_new
            if new_data is None:
                new_data = self.array.read_page(entry.page_id)
            before = xor_pages(working_payload, committed_payload, new_data)
        else:
            # the steal's data write never reached the disk (crash
            # between the twin-first working-twin write and the data
            # write): the twin-XOR identity would mis-derive the
            # before-image, but the committed twin plus the group mates
            # still reconstruct it directly
            mates = [self.array.read_page(p)
                     for p in self.array.geometry.group_pages(group)
                     if p != entry.page_id]
            before = xor_pages(committed_payload, *mates) if mates \
                else committed_payload
        self.array.write_data_only(entry.page_id, before)
        invalid = ParityHeader(timestamp=entry.working_timestamp,
                               txn_id=entry.txn_id,
                               dirty_page_index=entry.page_index,
                               state=TwinState.INVALID)
        self.array.rewrite_twin_header(group, entry.working_twin, invalid)
        headers = self._cached_headers(group)
        headers[entry.working_twin] = invalid
        survivor = 1 - entry.working_twin
        if headers[survivor].state is not TwinState.COMMITTED:
            # a never-updated group's twin still wears its formatted
            # OBSOLETE header; stamp it COMMITTED so later twin selection
            # (and media reconstruction) can trust it outright
            promoted = ParityHeader(timestamp=self.array.next_timestamp(),
                                    state=TwinState.COMMITTED)
            self.array.rewrite_twin_header(group, survivor, promoted)
            headers[survivor] = promoted
        self._current[group] = survivor
        self.dirty_set.clean(group)
        self._note_dirty_gauge()
        return entry.page_id, before

    def promote_to_logged(self, group: int, log_before_image) -> tuple:
        """Convert a dirty group's unlogged page to a logged one.

        Needed when a page stolen without logging must be written again
        in a way the parity twins cannot cover (e.g. another transaction
        modifies it under record locking).  The before-image is
        materialized from the twins, handed to ``log_before_image(txn_id,
        page_id, image)`` — which must make it durable — and only then is
        the working twin durably re-stamped as the group's committed
        parity (it matches the on-disk data).

        Returns ``(txn_id, page_id)`` of the promoted steal.
        """
        entry = self.dirty_set.entry(group)
        working_payload, _ = self.array.read_twin(group, entry.working_twin)
        committed_payload, _ = self.array.read_twin(group, 1 - entry.working_twin)
        new_data = self.array.read_page(entry.page_id)
        before = xor_pages(working_payload, committed_payload, new_data)
        log_before_image(entry.txn_id, entry.page_id, before)
        stamp = self.array.next_timestamp()
        header = ParityHeader(timestamp=stamp, state=TwinState.COMMITTED)
        self.array.rewrite_twin_header(group, entry.working_twin, header)
        headers = self._cached_headers(group)
        headers[entry.working_twin] = header
        self._current[group] = entry.working_twin
        self.dirty_set.clean(group)
        self._note_dirty_gauge()
        if self.tracer.enabled:
            self.tracer.emit("rda.promote", group=group, txn=entry.txn_id,
                             page=entry.page_id)
            self.tracer.emit("rda.group_clean", group=group, cause="promote")
        if self.metrics is not None:
            self.metrics.counter("rda.promotions").inc()
        return entry.txn_id, entry.page_id

    # -- log-trim support ---------------------------------------------------------------------

    def seal_stale_working_headers(self) -> int:
        """Durably retire WORKING headers whose transaction has ended.

        Commit is a main-memory bit flip, so a committed steal's twin
        keeps its WORKING header on disk until the group is written
        again; :meth:`crash_scan` resolves such headers against the
        log's commit set.  Trimming the log can discard exactly those
        commit records, after which a restart would misread the stale
        header as an uncommitted steal (or refuse outright when a later
        steal put a second WORKING header on the group).  Before a trim,
        every WORKING header *not* owned by the Dirty_Set's active steal
        is therefore re-stamped — COMMITTED for the group's current
        parity, OBSOLETE for a superseded twin — keeping its timestamp
        so Figure 7 twin selection is unchanged.  Idempotent; returns
        the number of headers rewritten.
        """
        sealed = 0
        for group in range(self.array.geometry.num_groups):
            headers = self._cached_headers(group)
            entry = self.dirty_set.get(group)
            for which, header in enumerate(headers):
                if header.state is not TwinState.WORKING:
                    continue
                if entry is not None and entry.working_twin == which:
                    continue    # active unlogged steal: still load-bearing
                state = (TwinState.COMMITTED
                         if which == self.current_twin(group)
                         else TwinState.OBSOLETE)
                new_header = header.with_(state=state)
                self.array.rewrite_twin_header(group, which, new_header)
                headers[which] = new_header
                sealed += 1
        if sealed and self.tracer.enabled:
            self.tracer.emit("rda.seal_headers", headers=sealed)
        return sealed

    # -- crash recovery (Section 4.3) ---------------------------------------------------------

    def find_parity_holes(self) -> list:
        """Restart scrub: clean groups whose current parity does not
        match the XOR of their data pages.

        A committed write-back is two transfers (data page, then the
        current twin); a crash between them leaves the group's parity
        stale with nothing in the twin headers to say so — the RAID
        write hole, on the twin substrate.  Steals are immune
        (twin-first ordering plus the WORKING header make the hole
        detectable and undoable), so only groups *without* a Dirty_Set
        entry need the check.  Detection uses uncounted peeks, like the
        WAL substrate's restart scrub; call after :meth:`crash_scan`
        (which rebuilds the Dirty_Set and the current-twin bitmap).
        """
        holes = []
        geometry = self.array.geometry
        disks = self.array.disks
        for group in range(geometry.num_groups):
            if self.dirty_set.get(group) is not None:
                continue
            data = []
            for page in geometry.group_pages(group):
                addr = geometry.data_address(page)
                data.append(disks[addr.disk].peek(addr.slot))
            payload, _ = self.array.peek_twin(group,
                                              self.current_twin(group))
            if payload != compute_parity(data):
                holes.append(group)
        return holes

    def resync_group(self, group: int) -> None:
        """Recompute and rewrite a clean group's current parity from its
        data pages (counted reads + one twin write); the repair half of
        :meth:`find_parity_holes`."""
        data = self.array.group_data_payloads(group)
        current = self.current_twin(group)
        header = ParityHeader(timestamp=self.array.next_timestamp(),
                              state=TwinState.COMMITTED)
        self.array.write_twin(group, current, compute_parity(data), header)
        self._cached_headers(group)[current] = header
        if self.tracer.enabled:
            self.tracer.emit("rda.parity_resync", group=group)

    def crash_scan(self, committed_txns: set) -> list:
        """Rebuild the Dirty_Set and current-parity bitmap from disk.

        Reads both twins of every group (the background bitmap
        reconstruction the paper schedules in idle periods), classifies
        WORKING twins against the log's commit set, and re-registers
        every *loser* transaction's unlogged stolen page in the
        Dirty_Set.  Returns the loser :class:`DirtyEntry` list.

        Raises:
            RecoveryError: if both twins of a group claim WORKING for
                uncommitted transactions (protocol violation).
        """
        self.lose_memory()
        with self.tracer.span("recovery.twin_scan", stats=self.array.stats,
                              groups=self.array.geometry.num_groups) as span:
            losers = self._crash_scan_inner(committed_txns)
            span.set(losers=len(losers))
        self._note_dirty_gauge()
        return losers

    def _crash_scan_inner(self, committed_txns: set) -> list:
        losers = []
        for group in range(self.array.geometry.num_groups):
            (_, h0), (_, h1) = self.array.read_twins(group)
            self._headers[group] = [h0, h1]
            self.array.observe_timestamp(max(h0.timestamp, h1.timestamp))
            active_working = [
                (which, header) for which, header in enumerate((h0, h1))
                if header.state is TwinState.WORKING
                and header.txn_id not in committed_txns
                and header.txn_id != NO_TXN
            ]
            if len(active_working) > 1:
                raise RecoveryError(
                    f"group {group}: both twins working for uncommitted "
                    f"transactions {[h.txn_id for _, h in active_working]}"
                )
            self._current[group] = select_current_twin((h0, h1), committed_txns)
            if active_working:
                which, header = active_working[0]
                if header.dirty_page_index == NO_PAGE:
                    raise RecoveryError(
                        f"group {group}: working twin lacks dirty page index")
                page = self.array.geometry.group_pages(group)[header.dirty_page_index]
                entry = DirtyEntry(group=group, txn_id=header.txn_id,
                                   page_id=page,
                                   page_index=header.dirty_page_index,
                                   working_twin=which,
                                   working_timestamp=header.timestamp)
                self.dirty_set.mark_dirty(entry)
                losers.append(entry)
        return losers

    # -- media recovery hooks ----------------------------------------------------------------

    def dirty_info_for_rebuild(self) -> dict:
        """The Dirty_Set in the form ``TwinParityArray.rebuild_disk`` wants."""
        return {
            entry.group: DirtyGroupInfo(
                txn_id=entry.txn_id,
                dirty_page_index=entry.page_index,
                working_timestamp=entry.working_timestamp,
                working_twin=entry.working_twin)
            for entry in self.dirty_set.entries()
        }

    def rebuild_disk(self, disk_id: int, on_lost_undo: str = "raise"):
        """Rebuild a failed disk, passing the live Dirty_Set along, and
        reconcile the in-memory state afterwards.

        Returns ``(report, must_commit_txns)`` where ``must_commit_txns``
        are transactions whose parity-encoded before-image was lost (only
        non-empty with ``on_lost_undo="adopt"``).
        """
        report = self.array.rebuild_disk(disk_id,
                                         dirty_info=self.dirty_info_for_rebuild(),
                                         on_lost_undo=on_lost_undo)
        must_commit = set()
        for group in report.lost_undo_groups:
            entry = self.dirty_set.clean(group)
            must_commit.add(entry.txn_id)
            self._headers.pop(group, None)
            self._current.pop(group, None)
            if self.tracer.enabled:
                self.tracer.emit("rda.group_clean", group=group,
                                 cause="lost_undo", txn=entry.txn_id)
        self._note_dirty_gauge()
        # header cache entries for rebuilt parity slots are stale
        for group in self.array.geometry.groups_with_parity_on(disk_id):
            self._headers.pop(group, None)
            if group not in self.dirty_set:
                self._current.pop(group, None)
        return report, must_commit
