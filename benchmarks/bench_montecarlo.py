"""X12: Monte Carlo check of the MTTDL closed forms.

The reliability table behind the paper's motivation uses first-order
approximations; here the underlying failure/repair process is simulated
and compared — the same trust-but-verify treatment Eq. 5 gets from the
live system in X1.
"""

from repro.model.montecarlo import simulate_mttdl
from repro.model.reliability import raid5_group_mttdl, raid6_group_mttdl

from .conftest import write_table


def test_mttdl_simulation_vs_formula(benchmark, results_dir):
    def campaign():
        rows = []
        for label, disks, mttr, tolerated, formula in (
                ("raid5/twin", 6, 100, 1, raid5_group_mttdl(10_000, 6, 100)),
                ("raid5/twin", 11, 50, 1, raid5_group_mttdl(10_000, 11, 50)),
                ("raid6", 6, 300, 2, raid6_group_mttdl(10_000, 6, 300)),
        ):
            simulated = simulate_mttdl(10_000, disks, mttr,
                                       tolerated=tolerated, samples=250,
                                       seed=11)
            rows.append((label, disks, mttr, formula, simulated))
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["X12: MTTDL — closed form vs Monte Carlo (hours)",
             f"{'tier':>11} | {'G':>3} | {'MTTR':>5} | {'formula':>12} "
             f"| {'simulated':>12}"]
    for label, disks, mttr, formula, simulated in rows:
        lines.append(f"{label:>11} | {disks:3d} | {mttr:5.0f} "
                     f"| {formula:12.0f} | {simulated:12.0f}")
        ratio = simulated / formula
        assert 0.25 < ratio < 4.0, (label, ratio)
    write_table(results_dir, "montecarlo_mttdl", "\n".join(lines))
