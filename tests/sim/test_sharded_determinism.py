"""Seed determinism of the sharded engine, plus the sharded
fault-sweep and conformance smokes.

The sharded engine layers three new sources of potential
nondeterminism over the single engine — the rotating shard scheduler,
the shared group-commit coordinator, and the merged per-shard metrics
— so the byte-identical-rerun tripwire of
``tests/sim/test_determinism.py`` is repeated here at K ∈ {1, 2, 4}.
"""

import dataclasses
import json

import pytest

from repro.check import HistoryRecorder, run_conformance
from repro.db import ShardedDatabase, preset
from repro.sim import Simulator, WorkloadSpec
from repro.sim.faultplan import run_sweep, shard_aligned_fault_workload

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=5,
                    update_txn_fraction=0.8, update_probability=0.9,
                    abort_probability=0.05, communality=0.6)

OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=16)


def one_run(shards, seed, crash_every=None, flush_horizon=4,
            name="page-force-rda"):
    recorder = HistoryRecorder()
    db = ShardedDatabase(preset(name, **OVERRIDES), shards=shards,
                         flush_horizon=flush_horizon, history=recorder)
    simulator = Simulator(db, SPEC, seed=seed)
    if db.config.record_logging:
        simulator.seed_records()
    report = simulator.run(30, crash_every=crash_every)
    report_json = json.dumps(dataclasses.asdict(report), sort_keys=True)
    return report_json, recorder.history.to_json()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_same_seed_same_run(shards):
    first = one_run(shards, seed=11)
    second = one_run(shards, seed=11)
    assert first[0] == second[0], "SimulationReport diverged"
    assert first[1] == second[1], "recorded history diverged"


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_same_seed_same_run_with_crashes(shards):
    first = one_run(shards, seed=11, crash_every=7)
    second = one_run(shards, seed=11, crash_every=7)
    assert first == second


def test_record_mode_deterministic_at_k2():
    first = one_run(2, seed=5, crash_every=9, name="record-noforce-log")
    second = one_run(2, seed=5, crash_every=9, name="record-noforce-log")
    assert first == second


def test_different_shard_counts_differ():
    # sanity: the comparisons above are not vacuous
    assert one_run(2, seed=11) != one_run(4, seed=11)


def test_two_shard_fault_sweep_recovers_every_crash_point():
    """Every crash point of the shard-aligned script, in every
    perturbation mode, must recover to the oracle state."""
    config = preset("page-force-rda", group_size=4, num_groups=8,
                    buffer_capacity=8)
    ops = shard_aligned_fault_workload(2, transactions=3, group_size=4)

    def make_db():
        return ShardedDatabase(config, shards=2, flush_horizon=2)

    report = run_sweep(make_db, ops)
    assert report.clean, report.counts
    assert report.counts["violation"] == 0
    assert report.counts["recovered"] == len(report.results)


def test_sharded_conformance_cell_clean():
    run = run_conformance("page-force-rda", transactions=20, seed=3,
                          crash_every=8, shards=2, flush_horizon=4)
    assert run.cell == "page-force-rda@k2"
    assert run.clean, [v.detail for v in run.violations[:3]]
