"""X2: storage-substrate ablations.

Not paper figures; these pin the primitive costs the model builds on
and compare the two array organizations:

* small-write protocol transfer counts (a = 4 / 3, dirty group a + 2);
* twin-parity vs single-parity write throughput (the RDA storage tax);
* RAID-5 data striping vs parity striping under sequential reads;
* rebuild speed.
"""

from repro.storage import (ParityHeader, TwinState, TwinUpdate, make_page,
                           make_parity_striped, make_raid5, make_twin_raid5)

N, GROUPS = 8, 32


def loaded(maker):
    array = maker(N, GROUPS)
    for g in range(GROUPS):
        array.full_stripe_write(g, [make_page(bytes([g % 250 + 1, i]))
                                    for i in range(N)])
    return array


def test_single_parity_small_write(benchmark):
    array = loaded(make_raid5)
    pages = array.num_data_pages
    counter = [0]

    def write():
        counter[0] += 1
        array.write_page(counter[0] % pages, make_page(counter[0] % 251))

    benchmark(write)
    assert array.stats.total > 0
    benchmark.extra_info["transfers_per_write"] = 4


def test_twin_parity_clean_group_write(benchmark):
    array = loaded(make_twin_raid5)
    pages = array.num_data_pages
    counter = [0]

    def write():
        counter[0] += 1
        page = counter[0] % pages
        group = array.geometry.group_of(page)
        header = ParityHeader(timestamp=array.next_timestamp(),
                              state=TwinState.COMMITTED)
        array.small_write(page, make_page(counter[0] % 251),
                          [TwinUpdate(0, 0, header)])

    benchmark(write)
    benchmark.extra_info["transfers_per_write"] = 4


def test_twin_parity_dirty_group_write(benchmark):
    """The a + 2 case: every write updates both twins."""
    array = loaded(make_twin_raid5)
    pages = array.num_data_pages
    counter = [0]

    def write():
        counter[0] += 1
        page = counter[0] % pages
        stamp = array.next_timestamp()
        array.small_write(page, make_page(counter[0] % 251), [
            TwinUpdate(0, 0, ParityHeader(timestamp=stamp,
                                          state=TwinState.COMMITTED)),
            TwinUpdate(1, 1, ParityHeader(timestamp=stamp, txn_id=1,
                                          dirty_page_index=0,
                                          state=TwinState.WORKING)),
        ])

    benchmark(write)
    benchmark.extra_info["transfers_per_write"] = 6


def test_sequential_scan_raid5_vs_parity_striping(benchmark):
    """Parity striping keeps sequential runs on one arm; striping
    spreads them.  Transfers are equal — the difference is arm
    contention, visible in the per-disk spread."""
    raid = loaded(make_raid5)
    striped = loaded(make_parity_striped)

    def scan(array):
        for page in range(array.num_data_pages):
            array.read_page(page)

    benchmark(scan, raid)
    raid.stats.reset()
    scan(raid)
    striped.stats.reset()
    scan(striped)
    # a full scan touches every disk either way...
    assert raid.stats.total == striped.stats.total
    # ...but a short sequential run stays on ONE arm under parity striping
    run = range(0, GROUPS // 2)
    raid.stats.reset()
    for page in run:
        raid.read_page(page)
    striped.stats.reset()
    for page in run:
        striped.read_page(page)
    raid_disks = len([d for d, n in raid.stats.per_disk_reads.items() if n])
    striped_disks = len([d for d, n in striped.stats.per_disk_reads.items() if n])
    assert striped_disks < raid_disks
    benchmark.extra_info["run_disks_raid5"] = raid_disks
    benchmark.extra_info["run_disks_parity_striping"] = striped_disks


def test_rebuild_speed(benchmark):
    def cycle():
        array = loaded(make_twin_raid5)
        array.fail_disk(3)
        return array.rebuild_disk(3).slots_rebuilt

    slots = benchmark.pedantic(cycle, rounds=5, iterations=1)
    assert slots > 0
    benchmark.extra_info["slots_rebuilt"] = slots


def test_degraded_read_cost(benchmark):
    array = loaded(make_raid5)
    victim = array.geometry.data_address(0).disk
    array.fail_disk(victim)

    def read():
        return array.read_page(0)

    payload = benchmark(read)
    assert payload == make_page(bytes([1, 0]))
    benchmark.extra_info["transfers_per_degraded_read"] = N
