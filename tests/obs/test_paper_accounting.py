"""Integration: traced per-event costs reproduce the paper's model.

The analytical model (Section 5) prices each operation in page
transfers: a small write costs 4 (3 with the old data buffered), a
write into a dirty group costs a + 2, an RDA commit costs zero, an
undo-via-parity five to six.  These tests drive the real stack with a
recording tracer and assert the aggregated trace shows exactly those
numbers.
"""

from repro.core.rda import RDAManager
from repro.db import Database, preset
from repro.obs import (MetricsRegistry, RingBufferSink, Tracer,
                       aggregate_events)
from repro.sim import Simulator, WorkloadSpec
from repro.storage import IOStats, make_page
from repro.storage.raid5 import make_twin_raid5


def traced_rda():
    sink = RingBufferSink()
    array = make_twin_raid5(4, 8, stats=IOStats(), tracer=Tracer(sink),
                            metrics=MetricsRegistry())
    return RDAManager(array), sink


def rows_for(sink):
    return aggregate_events(sink.events())


def test_small_write_costs_four_or_three():
    rda, sink = traced_rda()
    page = rda.array.geometry.group_pages(0)[0]
    first = make_page(b"v1")
    rda.write_committed(page, first)                    # a = 4
    rda.write_committed(page, make_page(b"v2"),
                        old_data=first)                 # a = 3 (buffered)
    rows = rows_for(sink)
    assert rows["array.small_write[buffered=False,twins=1]"][
        "mean_transfers"] == 4.0
    assert rows["array.small_write[buffered=True,twins=1]"][
        "mean_transfers"] == 3.0
    hist = rda.metrics.snapshot()["histograms"]["array.small_write_transfers"]
    assert hist["count"] == 2 and hist["min"] == 3 and hist["max"] == 4


def test_dirty_group_write_costs_a_plus_two():
    rda, sink = traced_rda()
    pages = rda.array.geometry.group_pages(1)
    stolen, other = pages[0], pages[1]
    rda.write_uncommitted(stolen, make_page(b"uncommitted"), txn_id=7,
                          old_data=rda.array.peek_page(stolen))
    # committed writes into the now-dirty group update BOTH twins
    before = rda.array.peek_page(other)
    rda.write_committed(other, make_page(b"committed"),
                        old_data=before)                # 3 + 2
    rda.write_committed(other, make_page(b"again"))     # 4 + 2
    rows = rows_for(sink)
    assert rows["array.small_write[buffered=True,twins=2]"][
        "mean_transfers"] == 5.0
    assert rows["array.small_write[buffered=False,twins=2]"][
        "mean_transfers"] == 6.0


def test_rda_commit_costs_zero_transfers():
    rda, sink = traced_rda()
    page = rda.array.geometry.group_pages(2)[0]
    rda.write_uncommitted(page, make_page(b"steal"), txn_id=3)
    before = rda.array.stats.total
    rda.commit_txn(3)
    assert rda.array.stats.total == before      # truly no I/O
    rows = rows_for(sink)
    assert rows["rda.commit"]["mean_transfers"] == 0.0
    assert rows["rda.twin_flip"]["mean_transfers"] == 0.0
    assert rda.metrics.snapshot()["counters"]["rda.commits"] == 1


def test_undo_via_parity_costs_five_to_six():
    rda, sink = traced_rda()
    group = 3
    page = rda.array.geometry.group_pages(group)[0]
    original = rda.array.peek_page(page)
    rda.write_uncommitted(page, make_page(b"doomed"), txn_id=9)
    rda.undo_group(group)
    assert rda.array.peek_page(page) == original
    row = rows_for(sink)["rda.undo[buffered=False]"]
    assert row["count"] == 1
    assert 5 <= row["mean_transfers"] <= 6


def test_traced_database_run_matches_model_and_snapshot():
    sink = RingBufferSink(capacity=200_000)
    tracer = Tracer(sink)
    metrics = MetricsRegistry()
    db = Database(preset("page-force-rda", group_size=4, num_groups=16,
                         buffer_capacity=12),
                  tracer=tracer, metrics=metrics)
    spec = WorkloadSpec(concurrency=3, pages_per_txn=4,
                        update_txn_fraction=1.0, update_probability=1.0,
                        abort_probability=0.1, communality=0.5)
    report = Simulator(db, spec, seed=1).run(40, crash_every=15)
    rows = aggregate_events(sink.events())

    expected = {
        "array.small_write[buffered=False,twins=1]": 4.0,
        "array.small_write[buffered=True,twins=1]": 3.0,
        "array.small_write[buffered=False,twins=2]": 6.0,
        "array.small_write[buffered=True,twins=2]": 5.0,
    }
    seen = 0
    for key, mean in expected.items():
        if key in rows:
            assert rows[key]["mean_transfers"] == mean, key
            seen += 1
    assert seen >= 2          # the workload must exercise the model

    assert rows["rda.commit"]["mean_transfers"] == 0.0
    assert "recovery.restart" in rows
    assert rows["txn[outcome=committed]"]["count"] == report.committed

    snap = report.extra["metrics"]
    # metric counters are cumulative; BufferStats resets at each crash
    assert snap["counters"]["buffer.hits"] >= db.buffer.stats.hits > 0
    assert snap["counters"]["txn.finished{outcome=committed}"] \
        == report.committed
    assert report.extra["trace_events"] == tracer.events_emitted
    assert db.verify_parity() == []
