"""Property tests for the per-page redo chains and their replay.

The REDO-only restart rests on two algebraic properties of chain
replay (absolute after-images applied forward in LSN order):

* **idempotent** — replaying a chain over a page that already reflects
  it (or any part of it) changes nothing;
* **prefix-closed** — after applying any prefix of the chain, the page
  equals the image of the prefix's last record, and replaying the
  remaining suffix reaches the same final state as a full replay.

Together they make single-page recovery and crash-during-recovery
safe: restart may begin from *any* durable page version at or behind
the chain head.  The chain-level tests exercise the
:class:`~repro.wal.log.LogManager` threading directly; the engine-level
tests drive whole REDO-only databases through random committed
workloads, crash them (including mid-recovery), and require
convergence to the committed reference state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, preset, verify_database
from repro.storage import make_page
from repro.storage.page import ZERO_PAGE
from repro.wal import NULL_LSN, LogManager, PageRedoEntry

# ---------------------------------------------------------------------------
# chain-level: LogManager threading + replay algebra
# ---------------------------------------------------------------------------


def replay(records, base: bytes, floor: int = 0) -> bytes:
    """Forward chain replay: apply every record past ``floor``."""
    image = base
    for record in sorted(records, key=lambda r: r.lsn):
        if record.lsn > floor:
            image = record.image
    return image


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_chain_threading_and_replay_algebra(data):
    log = LogManager(name="redo", page_size=256, transfers_per_log_page=1)
    pages = list(range(data.draw(st.integers(1, 4), label="pages")))
    per_page = {page: [] for page in pages}
    for step in range(data.draw(st.integers(1, 25), label="appends")):
        page = data.draw(st.sampled_from(pages), label="page")
        record = PageRedoEntry(txn_id=1 + step % 3, page_id=page,
                               image=b"%d:%d" % (page, step))
        log.append(record)
        per_page[page].append(record)

    for page, chain in per_page.items():
        # the head is the newest record; prev_page_lsn walks the chain
        # back through exactly this page's records, newest first
        if not chain:
            assert log.page_chain_head(page) == NULL_LSN
            continue
        assert log.page_chain_head(page) == chain[-1].lsn
        walked = []
        lsn = log.page_chain_head(page)
        while lsn != NULL_LSN:
            record = log.get(lsn)
            assert record.page_id == page
            walked.append(record)
            lsn = record.prev_page_lsn
        assert walked == list(reversed(chain))

        final = replay(chain, ZERO_PAGE)
        assert final == chain[-1].image
        # idempotent: replaying over an already-replayed page is a no-op
        assert replay(chain, final) == final
        # prefix-closed: stop anywhere, resume from there, same result
        cut = data.draw(st.integers(0, len(chain)), label="cut")
        prefix_state = replay(chain[:cut], ZERO_PAGE)
        if cut:
            assert prefix_state == chain[cut - 1].image
        assert replay(chain, prefix_state,
                      floor=chain[cut - 1].lsn if cut else 0) == final
        # replaying the full chain over any prefix state also converges
        # (restart does exactly this when the durable marker was lost)
        assert replay(chain, prefix_state) == final


# ---------------------------------------------------------------------------
# engine-level: random committed workloads, crashes, convergence
# ---------------------------------------------------------------------------

SIZES = dict(group_size=4, num_groups=6, buffer_capacity=20)


class MidRecoveryCrash(Exception):
    pass


def run_workload(db, data, reference, record_mode: bool):
    """Random committed/aborted transactions; ``reference`` tracks what
    a correct database must show afterwards."""
    pages = list(range(db.num_data_pages))
    for _ in range(data.draw(st.integers(1, 6), label="txns")):
        txn = db.begin()
        staged = {}
        for _ in range(data.draw(st.integers(1, 3), label="writes")):
            page = data.draw(st.sampled_from(pages), label="page")
            value = bytes([data.draw(st.integers(1, 250), label="byte")])
            if record_mode:
                db.update_record(txn, page, 0, value)
                staged[page] = value
            else:
                db.write_page(txn, page, make_page(value))
                staged[page] = make_page(value)
        if data.draw(st.booleans(), label="commit"):
            db.commit(txn)
            reference.update(staged)
            if data.draw(st.booleans(), label="checkpoint"):
                db.checkpoint()
        else:
            db.abort(txn)


def assert_reference_state(db, reference, record_mode: bool):
    txn = db.begin()
    for page, expected in reference.items():
        if record_mode:
            assert db.read_record(txn, page, 0) == expected
        else:
            assert db.read_page(txn, page) == expected
    db.commit(txn)
    assert verify_database(db) == []


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_redo_restart_converges_and_is_idempotent(data):
    """Crash after a random committed workload: recovery reaches the
    reference state, and recovering again from another crash (replaying
    the same chains over already-recovered pages) changes nothing."""
    name = data.draw(st.sampled_from(["page-noforce-redo",
                                      "record-noforce-rda-redo"]),
                     label="preset")
    db = Database(preset(name, **SIZES))
    record_mode = db.config.record_logging
    if record_mode:
        db.format_record_pages(range(db.num_data_pages))
        txn = db.begin()
        for page in range(db.num_data_pages):
            db.insert_record(txn, page, b"seed")
        db.commit(txn)
        db.checkpoint()
        reference = {}
    else:
        reference = {}
    run_workload(db, data, reference, record_mode)
    db.crash()
    db.recover()
    assert_reference_state(db, reference, record_mode)
    # idempotence: a second restart replays the same surviving chains
    db.crash()
    db.recover()
    assert_reference_state(db, reference, record_mode)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_redo_restart_survives_interruption_anywhere(data):
    """Prefix-closure at the system level: kill recovery at a random
    write, restart, and still converge to the reference state."""
    name = data.draw(st.sampled_from(["page-noforce-redo",
                                      "record-noforce-rda-redo"]),
                     label="preset")
    db = Database(preset(name, **SIZES))
    record_mode = db.config.record_logging
    if record_mode:
        db.format_record_pages(range(db.num_data_pages))
        txn = db.begin()
        for page in range(db.num_data_pages):
            db.insert_record(txn, page, b"seed")
        db.commit(txn)
        db.checkpoint()
    reference = {}
    run_workload(db, data, reference, record_mode)
    db.crash()

    crash_at = data.draw(st.integers(1, 5), label="crash_at")
    calls = {"n": 0}

    def hook(label):
        calls["n"] += 1
        if calls["n"] == crash_at:
            raise MidRecoveryCrash(label)

    try:
        db.recover(fault_hook=hook)
    except MidRecoveryCrash:
        db.crash()              # the machine died mid-recovery
        db.recover()
    assert_reference_state(db, reference, record_mode)
