"""A shadow-paged store over a redundant disk array.

Implements the ATOMIC propagation strategy of Haerder & Reuter's
taxonomy (paper Section 2): the *current* page table maps logical pages
to physical slots; updates write new versions into free slots and remap
in a working copy of the table; commit atomically installs the working
table (modeled as writing the changed table pages plus one master
pointer); abort discards it.  A crash reverts to the last installed
table — old versions are never overwritten in place, so no log is
needed.

The costs the paper holds against shadowing are both modeled:

* **table overhead** — every commit writes the modified page-table
  pages and the master block (:attr:`ShadowPagedStore.TABLE_ENTRIES_PER_PAGE`
  entries per table page);
* **disk scrambling** — remapping destroys physical sequentiality;
  :meth:`ShadowPagedStore.scrambling` reports the mean physical gap
  between logically consecutive pages (1.0 = perfectly sequential).

Concurrency: one update batch (transaction) at a time — matching
Lorie's original design, where the shadow mechanism protects
checkpoints/savepoints rather than interleaved transactions.
"""

from __future__ import annotations

from ..errors import InvalidTransactionState, ReproError
from ..storage.array import SingleParityArray
from ..storage.page import PAGE_SIZE


class ShadowSpaceExhausted(ReproError):
    """No free physical slot is available for a shadow copy."""


class ShadowPagedStore:
    """Shadow paging over a :class:`SingleParityArray`.

    Args:
        array: backing array; its data pages are the physical slots.
        logical_pages: size of the logical address space.  Must leave
            enough physical headroom for shadow copies (at least one
            free slot per page updated in a batch).
    """

    TABLE_ENTRIES_PER_PAGE = 128

    def __init__(self, array: SingleParityArray, logical_pages: int) -> None:
        if logical_pages < 1:
            raise ValueError("need at least one logical page")
        if logical_pages > array.num_data_pages:
            raise ValueError("logical space larger than physical space")
        self.array = array
        self.logical_pages = logical_pages
        # identity initial mapping; the tail is the free pool
        self._table = list(range(logical_pages))
        self._free = list(range(logical_pages, array.num_data_pages))
        self._working: dict | None = None
        self._allocated: list = []
        self.table_writes = 0
        self.commits = 0
        self.aborts = 0

    # -- batch lifecycle ------------------------------------------------------------

    @property
    def in_batch(self) -> bool:
        """True while an update batch is open."""
        return self._working is not None

    def begin(self) -> None:
        """Open an update batch.

        Raises:
            InvalidTransactionState: a batch is already open.
        """
        if self.in_batch:
            raise InvalidTransactionState("shadow batch already open")
        self._working = {}
        self._allocated = []

    def _require_batch(self) -> dict:
        if self._working is None:
            raise InvalidTransactionState("no shadow batch open")
        return self._working

    def commit(self) -> int:
        """Install the working table: the ATOMIC propagation step.

        Writes one table page per :attr:`TABLE_ENTRIES_PER_PAGE` span of
        remapped entries, plus the master block, and frees the
        superseded physical slots.  Returns the page transfers charged
        for the table installation.
        """
        working = self._require_batch()
        touched_table_pages = {logical // self.TABLE_ENTRIES_PER_PAGE
                               for logical in working}
        for logical, physical in working.items():
            self._free.append(self._table[logical])
            self._table[logical] = physical
        cost = len(touched_table_pages) + 1      # table pages + master block
        for _ in range(cost):
            self.array.stats.record_write(-99)   # table area device
        self.table_writes += cost
        self._working = None
        self._allocated = []
        self.commits += 1
        return cost

    def abort(self) -> None:
        """Discard the working table; shadow versions are reclaimed."""
        self._require_batch()
        self._free.extend(self._allocated)
        self._working = None
        self._allocated = []
        self.aborts += 1

    def crash(self) -> None:
        """Lose main memory: any open batch evaporates (its slots are
        recovered by the free-space scan of :meth:`recover`)."""
        if self._working is not None:
            self._free.extend(self._allocated)
            self._working = None
            self._allocated = []

    def recover(self) -> None:
        """Restart: nothing to redo or undo — the installed table *is*
        the committed state (shadow paging's selling point)."""
        # the free list would be rebuilt by scanning the table on disk;
        # the in-memory copy is already consistent after crash()

    # -- page access ---------------------------------------------------------------------

    def _physical(self, logical: int) -> int:
        if not 0 <= logical < self.logical_pages:
            raise ValueError(f"logical page {logical} out of range")
        working = self._working or {}
        return working.get(logical, self._table[logical])

    def read(self, logical: int) -> bytes:
        """Read a logical page through the current (or working) table."""
        return self.array.read_page(self._physical(logical))

    def write(self, logical: int, payload: bytes) -> None:
        """Write a logical page: first write in a batch allocates a
        fresh physical slot (the shadow stays untouched); later writes
        in the same batch update that slot in place.

        Raises:
            ShadowSpaceExhausted: no free physical slot remains.
        """
        if len(payload) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        working = self._require_batch()
        if logical in working:
            self.array.write_page(working[logical], payload)
            return
        if not self._free:
            raise ShadowSpaceExhausted(
                "no free slots; grow the array or shrink the batch")
        physical = self._free.pop()
        working[logical] = physical
        self._allocated.append(physical)
        self.array.write_page(physical, payload)

    # -- the scrambling metric ----------------------------------------------------------------

    def scrambling(self) -> float:
        """Mean physical distance between logically consecutive pages.

        1.0 means perfectly sequential (the freshly loaded state); it
        grows as updates remap pages — the paper's "disk scrambling"
        criticism of shadowing, quantified.
        """
        if self.logical_pages < 2:
            return 0.0
        gaps = [abs(self._table[i + 1] - self._table[i])
                for i in range(self.logical_pages - 1)]
        return sum(gaps) / len(gaps)
