"""Tests for the crash-recoverable B-tree index."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Database, preset
from repro.db.btree import BTree, BTreeError


def make_tree(name="record-force-rda", pool=24, **kw):
    defaults = dict(group_size=4, num_groups=12, buffer_capacity=20)
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    db.format_record_pages(range(db.num_data_pages))
    txn = db.begin()
    tree = BTree(db, list(range(pool)), txn_id=txn, create=True)
    db.commit(txn)
    return db, tree


def key(i):
    return f"k{i:05d}".encode()


@pytest.fixture
def setup():
    return make_tree()


class TestBasics:
    def test_empty_tree(self, setup):
        db, tree = setup
        t = db.begin()
        assert tree.get(t, b"missing") is None
        assert list(tree.range(t)) == []
        assert tree.check_invariants(t) == 0
        db.commit(t)

    def test_put_get(self, setup):
        db, tree = setup
        t = db.begin()
        tree.put(t, b"alpha", b"1")
        tree.put(t, b"beta", b"2")
        assert tree.get(t, b"alpha") == b"1"
        assert tree.get(t, b"beta") == b"2"
        db.commit(t)

    def test_overwrite(self, setup):
        db, tree = setup
        t = db.begin()
        tree.put(t, b"k", b"old")
        tree.put(t, b"k", b"new")
        assert tree.get(t, b"k") == b"new"
        db.commit(t)

    def test_delete(self, setup):
        db, tree = setup
        t = db.begin()
        tree.put(t, b"k", b"v")
        assert tree.delete(t, b"k")
        assert tree.get(t, b"k") is None
        assert not tree.delete(t, b"k")
        db.commit(t)

    def test_range_scan_ordered(self, setup):
        db, tree = setup
        t = db.begin()
        for i in (5, 1, 9, 3, 7):
            tree.put(t, key(i), str(i).encode())
        keys = [k for k, _ in tree.range(t)]
        assert keys == [key(i) for i in (1, 3, 5, 7, 9)]
        db.commit(t)

    def test_range_bounds(self, setup):
        db, tree = setup
        t = db.begin()
        for i in range(10):
            tree.put(t, key(i), b"v")
        keys = [k for k, _ in tree.range(t, low=key(3), high=key(7))]
        assert keys == [key(i) for i in (3, 4, 5, 6)]
        db.commit(t)

    def test_key_validation(self, setup):
        db, tree = setup
        t = db.begin()
        with pytest.raises(BTreeError):
            tree.put(t, b"", b"v")
        with pytest.raises(BTreeError):
            tree.put(t, b"x" * 100, b"v")
        with pytest.raises(BTreeError):
            tree.put(t, b"k", b"v" * 100)
        db.abort(t)

    def test_needs_pages(self, setup):
        db, _ = setup
        with pytest.raises(BTreeError):
            BTree(db, [])


class TestSplits:
    def test_many_inserts_split_and_stay_ordered(self, setup):
        db, tree = setup
        t = db.begin()
        for i in range(60):
            tree.put(t, key(i * 7 % 60), str(i).encode())
        assert tree.check_invariants(t) == 60
        db.commit(t)
        t2 = db.begin()
        for i in range(60):
            assert tree.get(t2, key(i)) is not None
        db.commit(t2)

    def test_root_page_stable_across_splits(self, setup):
        db, tree = setup
        t = db.begin()
        for i in range(60):
            tree.put(t, key(i), b"v")
        db.commit(t)
        assert tree.root_page == tree.pages[0]
        t2 = db.begin()
        node = tree._read_node(t2, tree.root_page)
        assert not node["leaf"]             # the root grew
        db.commit(t2)

    def test_pool_exhaustion(self):
        db, tree = make_tree(pool=3)
        t = db.begin()
        with pytest.raises(BTreeError):
            for i in range(500):
                tree.put(t, key(i), b"v")
        db.abort(t)


class TestTransactionality:
    def test_abort_rolls_back_split(self, setup):
        """The hard case: an abort mid-way through structural change."""
        db, tree = setup
        t = db.begin()
        for i in range(20):
            tree.put(t, key(i), b"keep")
        db.commit(t)
        t2 = db.begin()
        for i in range(20, 60):
            tree.put(t2, key(i), b"discard")      # forces splits
        db.abort(t2)
        t3 = db.begin()
        assert tree.check_invariants(t3) == 20
        for i in range(20):
            assert tree.get(t3, key(i)) == b"keep"
        for i in range(20, 60):
            assert tree.get(t3, key(i)) is None
        db.commit(t3)

    @pytest.mark.parametrize("name", ["record-force-rda", "record-force-log",
                                      "record-noforce-rda",
                                      "record-noforce-log"])
    def test_crash_mid_bulk_insert(self, name):
        db, tree = make_tree(name, checkpoint_interval=None)
        t = db.begin()
        for i in range(15):
            tree.put(t, key(i), b"committed")
        db.commit(t)
        loser = db.begin()
        for i in range(15, 50):
            tree.put(loser, key(i), b"doomed")    # splits galore
        db.crash()
        db.recover()
        t2 = db.begin()
        assert tree.check_invariants(t2) == 15
        for i in range(15):
            assert tree.get(t2, key(i)) == b"committed"
        db.commit(t2)
        assert db.verify_parity() == []

    def test_work_resumes_after_crash(self, setup):
        db, tree = setup
        t = db.begin()
        for i in range(30):
            tree.put(t, key(i), b"v1")
        db.commit(t)
        db.crash()
        db.recover()
        t2 = db.begin()
        for i in range(30, 45):
            tree.put(t2, key(i), b"v2")
        db.commit(t2)
        t3 = db.begin()
        assert tree.check_invariants(t3) == 45
        db.commit(t3)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
@given(ops=st.lists(
    st.tuples(st.sampled_from(["put", "delete"]),
              st.integers(0, 40),
              st.binary(min_size=1, max_size=8)),
    min_size=1, max_size=60))
def test_btree_matches_dict_model(ops):
    """Property: the tree behaves like a dict, and invariants hold."""
    db, tree = make_tree()
    t = db.begin()
    shadow = {}
    for op, i, value in ops:
        if op == "put":
            tree.put(t, key(i), value)
            shadow[key(i)] = value
        else:
            existed = tree.delete(t, key(i))
            assert existed == (key(i) in shadow)
            shadow.pop(key(i), None)
    assert tree.check_invariants(t) == len(shadow)
    for k, v in shadow.items():
        assert tree.get(t, k) == v
    assert [k for k, _ in tree.range(t)] == sorted(shadow)
    db.commit(t)
