"""Array geometries: how logical pages map onto disks.

The paper considers two organizations (Section 3):

* **Data striping** (RAID-5 with rotated parity, Figure 1): consecutive
  logical pages are interleaved round-robin across the disks; the parity
  of each stripe rotates over the disks to avoid a parity hot spot.
* **Parity striping** (Gray et al., Figure 2): data is laid out
  *sequentially* on each disk (preserving large sequential runs on a
  single arm); only the parity areas rotate.

Each comes in a single-parity form (one parity page per group, ``N+1``
disks) and a **twin-parity** form used by RDA recovery (two parity pages
per group on two distinct disks, ``N+2`` disks — Figures 4 and 5).

A :class:`Geometry` answers, for every logical data page: which disk and
slot it lives on, which *parity group* it belongs to, who its group
mates are, and where the group's parity page(s) live.  Groups are
"stripe rows": group ``g`` owns slot ``g`` on every disk; its parity
lives on disk ``g mod D`` (and ``(g+1) mod D`` for the twin), its data
on the remaining ``N`` disks.

Mappings are precomputed at construction: the arrays are small (the
paper's largest configuration is S = 5000 pages) and an explicit table
is immune to off-by-one rotation bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import AddressError


class Placement(Enum):
    """Logical-page numbering discipline."""

    STRIPED = "striped"        # RAID-5 style round-robin interleave
    SEQUENTIAL = "sequential"  # parity-striping style, runs stay on one disk


@dataclass(frozen=True)
class PhysAddr:
    """A physical page location: ``(disk, slot)``."""

    disk: int
    slot: int


class Geometry:
    """Mapping between logical data pages and physical locations.

    Args:
        group_size: N, the number of data pages per parity group.
        num_groups: G, the number of parity groups (= disk capacity in slots).
        twin: if True, two parity pages per group on distinct disks.
        placement: :class:`Placement` numbering discipline.

    The array has ``N + 1`` disks (``N + 2`` with twins) and stores
    ``S = N * G`` logical data pages numbered ``0 .. S-1``.
    """

    def __init__(self, group_size: int, num_groups: int, twin: bool = False,
                 placement: Placement = Placement.STRIPED) -> None:
        if group_size < 2:
            raise ValueError("group_size (N) must be at least 2")
        if num_groups < 1:
            raise ValueError("num_groups (G) must be at least 1")
        self.group_size = group_size
        self.num_groups = num_groups
        self.twin = twin
        self.placement = Placement(placement)
        self.num_disks = group_size + (2 if twin else 1)
        self.capacity_per_disk = num_groups
        self.num_data_pages = group_size * num_groups

        self._parity_addrs: list = []
        self._group_data_disks: list = []
        for g in range(num_groups):
            parity_disks = self._parity_disks_for(g)
            self._parity_addrs.append(tuple(PhysAddr(d, g) for d in parity_disks))
            data_disks = [d for d in range(self.num_disks) if d not in parity_disks]
            self._group_data_disks.append(data_disks)

        # logical page <-> physical address tables
        self._page_to_addr: list = [None] * self.num_data_pages
        self._addr_to_page: dict = {}
        self._group_pages: list = [[None] * group_size for _ in range(num_groups)]
        self._member_of: list = [0] * self.num_data_pages
        if self.placement is Placement.STRIPED:
            self._number_striped()
        else:
            self._number_sequential()

    # -- construction helpers ------------------------------------------------

    def _parity_disks_for(self, group: int) -> tuple:
        if self.twin:
            return (group % self.num_disks, (group + 1) % self.num_disks)
        return (group % self.num_disks,)

    def _place(self, page: int, group: int, member: int, disk: int) -> None:
        addr = PhysAddr(disk, group)
        self._page_to_addr[page] = addr
        self._addr_to_page[(disk, group)] = page
        self._group_pages[group][member] = page
        self._member_of[page] = member

    def _number_striped(self) -> None:
        """Round-robin: group g holds logical pages g*N .. g*N+N-1."""
        for g in range(self.num_groups):
            for j, disk in enumerate(self._group_data_disks[g]):
                self._place(g * self.group_size + j, g, j, disk)

    def _number_sequential(self) -> None:
        """Disk-major: consecutive logical pages fill one disk's data
        slots (in group order) before moving to the next disk."""
        page = 0
        for disk in range(self.num_disks):
            for g in range(self.num_groups):
                data_disks = self._group_data_disks[g]
                if disk in data_disks:
                    member = data_disks.index(disk)
                    self._place(page, g, member, disk)
                    page += 1
        assert page == self.num_data_pages

    # -- queries ---------------------------------------------------------------

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.num_data_pages:
            raise AddressError(
                f"logical page {page} out of range 0..{self.num_data_pages - 1}"
            )

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise AddressError(f"group {group} out of range 0..{self.num_groups - 1}")

    def data_address(self, page: int) -> PhysAddr:
        """Physical location of logical data page ``page``."""
        if 0 <= page < self.num_data_pages:
            return self._page_to_addr[page]
        self._check_page(page)
        raise AssertionError("unreachable")

    def page_at(self, addr: PhysAddr) -> int | None:
        """Logical page stored at ``addr``, or None for a parity slot."""
        return self._addr_to_page.get((addr.disk, addr.slot))

    def group_of(self, page: int) -> int:
        """Parity group containing logical page ``page``."""
        if 0 <= page < self.num_data_pages:
            return self._page_to_addr[page].slot
        self._check_page(page)
        raise AssertionError("unreachable")

    def index_in_group(self, page: int) -> int:
        """Member index (0..N-1) of ``page`` within its parity group."""
        if 0 <= page < self.num_data_pages:
            return self._member_of[page]
        self._check_page(page)
        raise AssertionError("unreachable")

    def group_pages(self, group: int) -> list:
        """Logical pages of ``group`` in member order."""
        self._check_group(group)
        return list(self._group_pages[group])

    def parity_addresses(self, group: int) -> tuple:
        """Physical locations of the group's parity page(s).

        A 1-tuple for single-parity geometries, a 2-tuple (the twins, on
        distinct disks) for twin geometries.
        """
        self._check_group(group)
        return self._parity_addrs[group]

    def data_disks(self, group: int) -> list:
        """Disks carrying the data pages of ``group`` (member order)."""
        self._check_group(group)
        return list(self._group_data_disks[group])

    def groups_with_parity_on(self, disk: int) -> list:
        """Groups whose parity page (either twin) lives on ``disk``."""
        return [g for g in range(self.num_groups)
                if any(a.disk == disk for a in self._parity_addrs[g])]

    def pages_on_disk(self, disk: int) -> list:
        """``(slot, logical_page)`` pairs of data pages stored on ``disk``."""
        out = []
        for g in range(self.num_groups):
            page = self._addr_to_page.get((disk, g))
            if page is not None:
                out.append((g, page))
        return out

    def storage_overhead(self) -> float:
        """Fraction of raw capacity spent on parity.

        The paper notes the extra storage for twin-parity RDA is about
        ``(100/N)%`` *beyond* a single-parity array; equivalently twin
        arrays spend ``2/(N+2)`` of raw capacity on parity.
        """
        parity_slots = (2 if self.twin else 1) * self.num_groups
        total_slots = self.num_disks * self.capacity_per_disk
        return parity_slots / total_slots

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "twin" if self.twin else "single"
        return (f"Geometry(N={self.group_size}, G={self.num_groups}, "
                f"{kind} parity, {self.placement.value}, disks={self.num_disks})")


def raid5_geometry(group_size: int, num_groups: int, twin: bool = False) -> Geometry:
    """RAID-5 with rotated parity (paper Figure 1; Figure 4 when ``twin``)."""
    return Geometry(group_size, num_groups, twin=twin, placement=Placement.STRIPED)


def parity_striping_geometry(group_size: int, num_groups: int,
                             twin: bool = False) -> Geometry:
    """Gray-style parity striping (paper Figure 2; Figure 5 when ``twin``)."""
    return Geometry(group_size, num_groups, twin=twin, placement=Placement.SEQUENTIAL)
