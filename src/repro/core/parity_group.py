"""Parity-group state machine and the Dirty_Set table (paper Figure 3).

A parity group is **clean** when no page in it has been written to disk
by an uncommitted transaction without UNDO logging, and **dirty** when
exactly one such page has.  The paper keeps a main-memory table — the
*Dirty_Set* — holding, for each dirty group, the page that dirtied it
(only ``log N`` bits per group) plus one bit naming the working parity
twin.  This module is that table, extended with the owning transaction
and the working twin's timestamp, which the recovery and rebuild paths
need.

The transition rules (Figure 3):

* clean --(uncommitted page D_i stolen, unlogged)--> dirty(i)
* dirty(i) --(same transaction re-steals D_i)--> dirty(i)   (still unlogged)
* dirty(i) --(owning transaction commits or aborts)--> clean
* while dirty(i), any *other* page written back must be UNDO-logged
  first (:meth:`DirtySet.can_write_without_undo` answers this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParityGroupError


@dataclass(frozen=True)
class DirtyEntry:
    """One dirty group's bookkeeping.

    Attributes:
        group: the parity group id.
        txn_id: the transaction whose unlogged stolen page dirtied it.
        page_id: the logical page written back without UNDO logging.
        page_index: the page's index within the group (what the paper
            stores in log N bits).
        working_twin: which twin (0/1) holds the working parity.
        working_timestamp: the stamp on the working twin.
    """

    group: int
    txn_id: int
    page_id: int
    page_index: int
    working_twin: int
    working_timestamp: int


class DirtySet:
    """Main-memory table of dirty parity groups (the paper's Dirty_Set)."""

    def __init__(self) -> None:
        self._entries: dict = {}
        self._by_txn: dict = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, group: int) -> bool:
        return group in self._entries

    def is_dirty(self, group: int) -> bool:
        """True when the group has an unlogged uncommitted page on disk."""
        return group in self._entries

    def entry(self, group: int) -> DirtyEntry:
        """The group's :class:`DirtyEntry`.

        Raises:
            ParityGroupError: if the group is clean.
        """
        try:
            return self._entries[group]
        except KeyError:
            raise ParityGroupError(f"group {group} is clean") from None

    def get(self, group: int) -> DirtyEntry | None:
        """The group's entry, or None when clean."""
        return self._entries.get(group)

    def can_write_without_undo(self, group: int, page_id: int,
                               txn_id: int) -> bool:
        """The paper's write-back rule: no UNDO logging is needed iff the
        group is clean, or it is dirty *for this very page by this very
        transaction* (the re-steal self-loop of Figure 3)."""
        entry = self._entries.get(group)
        if entry is None:
            return True
        return entry.page_id == page_id and entry.txn_id == txn_id

    def mark_dirty(self, entry: DirtyEntry) -> None:
        """Record a clean-to-dirty transition (or refresh a re-steal).

        Raises:
            ParityGroupError: on an illegal second unlogged page — the
                invariant is one unlogged page per group.
        """
        existing = self._entries.get(entry.group)
        if existing is not None and (existing.page_id != entry.page_id
                                     or existing.txn_id != entry.txn_id):
            raise ParityGroupError(
                f"group {entry.group} already dirty with page "
                f"{existing.page_id} (txn {existing.txn_id}); cannot add "
                f"page {entry.page_id} (txn {entry.txn_id}) unlogged"
            )
        if existing is not None:
            self._by_txn[existing.txn_id].discard(entry.group)
        self._entries[entry.group] = entry
        self._by_txn.setdefault(entry.txn_id, set()).add(entry.group)

    def clean(self, group: int) -> DirtyEntry:
        """Remove a group from the table (commit, abort, or promotion).

        Returns the entry that was removed.
        """
        entry = self.entry(group)
        del self._entries[group]
        owned = self._by_txn.get(entry.txn_id)
        if owned is not None:
            owned.discard(group)
            if not owned:
                del self._by_txn[entry.txn_id]
        return entry

    def groups_of(self, txn_id: int) -> list:
        """Sorted dirty groups owned by a transaction."""
        return sorted(self._by_txn.get(txn_id, ()))

    def entries(self) -> list:
        """All entries, sorted by group."""
        return [self._entries[g] for g in sorted(self._entries)]

    def lose_memory(self) -> None:
        """Crash: the main-memory table vanishes (rebuilt by scanning
        the parity twins, Section 4.3)."""
        self._entries.clear()
        self._by_txn.clear()
