"""Figure 12: record logging, ¬FORCE/ACC — throughput vs C.

The paper's record-logging headline: adding RDA to a ¬FORCE/ACC
algorithm improves throughput by ≈14% at C = 0.9 (high update), and —
unlike page logging — FORCE/TOC with RDA does *not* overtake ¬FORCE/ACC.
"""

import pytest

from repro.model import figure12
from repro.model.params import high_update
from repro.model.record_logging import force_toc, noforce_acc

from .conftest import write_table


def test_figure12_regeneration(benchmark, results_dir):
    figure = benchmark(figure12)
    write_table(results_dir, "figure12", figure.format_table())

    base = figure.curves["high-update ¬RDA"]
    rda = figure.curves["high-update RDA"]
    assert all(r > b for r, b in zip(rda, base))
    at_09 = figure.x_values.index(0.9)
    gain = rda[at_09] / base[at_09] - 1.0
    assert gain == pytest.approx(0.14, abs=0.04)      # the paper's ≈14%

    benchmark.extra_info["high_update_gain_at_C0.9"] = round(gain, 4)
    benchmark.extra_info["paper_gain_at_C0.9"] = 0.14


def test_figure12_no_crossover_with_record_logging(benchmark):
    """¬FORCE/ACC keeps its lead under record logging, even against
    FORCE/TOC + RDA (paper conclusions)."""

    def evaluate():
        p = high_update(C=0.9)
        return (noforce_acc(p, rda=False).throughput,
                noforce_acc(p, rda=True).throughput,
                force_toc(p, rda=True).throughput)

    noforce, noforce_rda, force_rda = benchmark(evaluate)
    assert noforce > force_rda
    assert noforce_rda > noforce
    benchmark.extra_info["noforce"] = round(noforce)
    benchmark.extra_info["noforce_rda"] = round(noforce_rda)
    benchmark.extra_info["force_rda"] = round(force_rda)
