"""X3: end-to-end recovery costs in the live system.

Pins the paper's qualitative recovery claims with the executable
database:

* aborting via the parity twins consumes fewer page transfers than
  aborting via logged before-images;
* crash-recovery cost scales with the losers' footprint;
* media rebuild restores the array byte-exactly.
"""

from repro.db import Database, preset
from repro.storage import make_page

from .conftest import write_table

SIZES = dict(group_size=5, num_groups=16, buffer_capacity=8)


def steal_one_uncommitted_page(db):
    """Begin a txn, dirty page 0, force it to disk via buffer pressure.

    The spill transaction touches one page per parity group (the
    model's random-access assumption); clustering them into one group
    would make every write pay the dirty-group both-twins tax, which the
    paper's p_l says is rare at S/N = 500 groups.
    """
    txn = db.begin()
    db.write_page(txn, 0, make_page(b"uncommitted"))
    spill = db.begin()
    geometry = db.array.geometry
    for group in range(2, 14):
        page = geometry.group_pages(group)[1]
        db.write_page(spill, page, make_page(bytes([group])))
    db.commit(spill)
    return txn


def steal_and_abort_transfers(name: str, log_cost: int) -> int:
    """Total transfers for the whole episode: dirty one page, have it
    stolen, abort.  ``log_cost`` is the page transfers charged per log
    page per mirror copy — the paper prices it at 4 (the logs live on a
    RAID and pay the small-write protocol)."""
    db = Database(preset(name, log_transfers_per_page=log_cost, **SIZES))
    db.load_pages({0: make_page(b"base")})
    with db.stats.window() as window:
        txn = steal_one_uncommitted_page(db)
        db.abort(txn)
    assert db.disk_page(0) == make_page(b"base")
    return window.total


def test_abort_via_parity_vs_log(benchmark, results_dir):
    """Under the paper's log costing (4 transfers per log page), the
    whole steal-then-abort episode is cheaper with RDA: the forward path
    skips the durable before-images.  With a cheap dedicated sequential
    log (1 transfer per page) the advantage shrinks or inverts — an
    ablation the paper does not explore, reported alongside."""

    def measure():
        return {
            "rda_paper_log": steal_and_abort_transfers("page-force-rda", 4),
            "wal_paper_log": steal_and_abort_transfers("page-force-log", 4),
            "rda_cheap_log": steal_and_abort_transfers("page-force-rda", 1),
            "wal_cheap_log": steal_and_abort_transfers("page-force-log", 1),
        }

    r = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert r["rda_paper_log"] < r["wal_paper_log"]
    write_table(results_dir, "recovery_abort",
                "X3: steal-then-abort episode cost (page transfers)\n"
                f"paper log costing (4/page): RDA {r['rda_paper_log']}  "
                f"vs WAL {r['wal_paper_log']}\n"
                f"cheap log ablation (1/page): RDA {r['rda_cheap_log']}  "
                f"vs WAL {r['wal_cheap_log']}")
    benchmark.extra_info.update(r)


def test_abort_latency_rda(benchmark):
    def cycle():
        db = Database(preset("page-force-rda", **SIZES))
        txn = steal_one_uncommitted_page(db)
        db.abort(txn)

    benchmark.pedantic(cycle, rounds=5, iterations=1)


def test_abort_latency_log(benchmark):
    def cycle():
        db = Database(preset("page-force-log", **SIZES))
        txn = steal_one_uncommitted_page(db)
        db.abort(txn)

    benchmark.pedantic(cycle, rounds=5, iterations=1)


def test_crash_recovery_scales_with_losers(benchmark, results_dir):
    def recovery_transfers(loser_pages: int) -> int:
        db = Database(preset("page-force-rda", group_size=5, num_groups=16,
                             buffer_capacity=loser_pages + 4))
        loser = db.begin()
        geometry = db.array.geometry
        for g in range(loser_pages):            # one page per group
            db.write_page(loser, geometry.group_pages(g)[0],
                          make_page(bytes([g + 1])))
        db.buffer.flush_pages_of(loser)         # steal them all
        db.crash()
        stats = db.recover()
        assert len(stats["losers"]) == 1
        return stats["page_transfers"]

    def measure():
        return [recovery_transfers(n) for n in (1, 4, 8)]

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert series == sorted(series)
    write_table(results_dir, "recovery_crash",
                "X3: crash-recovery transfers vs loser footprint\n"
                + "\n".join(f"{n} stolen pages: {t} transfers"
                            for n, t in zip((1, 4, 8), series)))
    benchmark.extra_info["transfers"] = series


def test_media_rebuild_end_to_end(benchmark):
    def cycle():
        db = Database(preset("page-force-rda", **SIZES))
        expected = {}
        for page in range(0, db.num_data_pages, 2):
            txn = db.begin()
            payload = make_page(bytes([page % 250 + 1]))
            db.write_page(txn, page, payload)
            db.commit(txn)
            expected[page] = payload
        db.media_failure(1)
        db.media_recover(1)
        for page, payload in expected.items():
            assert db.disk_page(page) == payload
        return db.verify_parity()

    bad = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert bad == []
