"""Satellite: a deliberately broken invariant is attributed correctly.

Uses the ``mutation`` nemesis profile, whose only fault kind applies
``WalBeforeDataRule.mutate(db)`` (the PR-4 sensitivity hook: undo-log
forces become no-ops) and leaves it active across the following batch.
The invariant engine must fire mid-stress, and every resulting
violation must carry the in-flight mutant's label — that attribution
chain is the whole point of the ActiveFaultRegistry.

Preset ``page-noforce-log`` logs *every* steal (no RDA parity cover),
so a disabled force is guaranteed to surface at the next steal barrier.
"""

from repro.stress import PROFILES, StressOptions, StressRunner


def run_mutation_cell(seed=5):
    options = StressOptions(preset="page-noforce-log", seed=seed,
                            ops=48, batch_size=8,
                            nemesis_profile="mutation", baseline=False)
    return StressRunner(options).run()


class TestMutantAttribution:
    def test_mutation_profile_is_mutant_only(self):
        assert PROFILES["mutation"].enabled_kinds() == ["mutant"]
        assert "wal-before-data" in PROFILES["mutation"].mutant_rules

    def test_broken_invariant_fires_and_is_attributed(self):
        report = run_mutation_cell()
        wal = [v for v in report.violations
               if v["kind"] == "wal-before-data"]
        assert wal, "disabled undo-log force never surfaced at a steal"
        mutant_labels = {f"mutant#{f['id']}" for f in report.faults}
        for violation in wal:
            assert violation["active_faults"], (
                "violation reported with no active fault", violation)
            assert set(violation["active_faults"]) <= mutant_labels

    def test_blamed_mutants_not_counted_as_survived(self):
        report = run_mutation_cell()
        blamed = {label for violation in report.violations
                  for label in violation["active_faults"]}
        for fault in report.faults:
            if f"mutant#{fault['id']}" in blamed:
                assert fault["survived"] is False

    def test_mutant_reverts_between_windows(self):
        # after the campaign every mutant window is closed and the
        # engine is healthy again: a fresh clean cell on the same
        # preset shows the violations came from the mutants, not the
        # engine
        report = run_mutation_cell()
        assert all(f["closed_tick"] is not None for f in report.faults)
        clean = StressRunner(StressOptions(
            preset="page-noforce-log", seed=5, ops=24, batch_size=8,
            nemesis_profile="crash-only", baseline=False)).run()
        assert clean.clean, clean.violations[:3]

    def test_violations_outside_windows_unattributed(self):
        report = run_mutation_cell()
        open_ticks = {f["id"]: (f["opened_tick"], f["closed_tick"])
                      for f in report.faults}
        for violation in report.violations:
            for label in violation["active_faults"]:
                fault_id = int(label.split("#")[1])
                opened, closed = open_ticks[fault_id]
                assert opened <= violation["tick"] <= closed
