"""Tests for simulation metrics."""

from repro.sim import DEFAULT_T, SimulationReport


class TestReport:
    def test_transactions_total(self):
        report = SimulationReport(committed=7, aborted=3)
        assert report.transactions == 10

    def test_throughput_uses_default_interval(self):
        report = SimulationReport(committed=10, page_transfers=1_000_000)
        assert report.throughput() == 10 * DEFAULT_T / 1_000_000

    def test_throughput_zero_transfers(self):
        assert SimulationReport(committed=5).throughput() == 0.0

    def test_cost_per_transaction(self):
        report = SimulationReport(committed=4, aborted=1, page_transfers=50)
        assert report.cost_per_transaction() == 10.0

    def test_cost_with_no_transactions(self):
        assert SimulationReport().cost_per_transaction() == 0.0

    def test_summary_readable(self):
        report = SimulationReport(committed=4, aborted=1, page_transfers=50,
                                  buffer_hit_ratio=0.75,
                                  unlogged_steal_fraction=0.9)
        text = report.summary()
        assert "4 committed" in text
        assert "0.75" in text
        assert "0.90" in text

    def test_extra_dict_available(self):
        report = SimulationReport()
        report.extra["anything"] = 1
        assert report.extra == {"anything": 1}
