"""The event tracer: typed, timestamped events and spans.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  Every hot path guards with
   ``if tracer.enabled:`` (one attribute load), and the shared
   :data:`NULL_TRACER` returns a stateless no-op span without
   allocating, so the instrumented small-write path costs one branch
   over the uninstrumented one.
2. **Dependency-free.**  Sinks are plain objects with an
   ``emit(dict)`` method; the JSONL sink uses only :mod:`json`.
3. **Costs ride along.**  A span bound to an
   :class:`~repro.storage.iostats.IOStats` snapshots the counters at
   start and attaches the read/write/transfer delta to its closing
   event — the paper's page-transfer accounting, per operation.

Event wire format (one JSON object per line in a JSONL sink)::

    {"seq": 17, "ts": 0.00213, "name": "array.small_write",
     "attrs": {"page": 3, "buffered": false, "twins": 1,
               "reads": 2, "writes": 2, "transfers": 4}}

Span events additionally carry ``"span"`` (the span's id), ``"parent"``
(the enclosing span's id, if any) and ``attrs.dur_ms``.  Events emitted
*inside* a lexical span carry ``"span"`` pointing at it, so a trace can
be re-nested offline.
"""

from __future__ import annotations

import atexit
import json
import time
import weakref
from collections import deque

_encode = json.JSONEncoder(separators=(",", ":"), default=str).encode
"""Shared compact encoder: skips the per-call dispatch inside
``json.dumps`` (the sink serializes tens of thousands of events)."""

_LIVE_TRACERS: "weakref.WeakSet" = weakref.WeakSet()
"""Every enabled tracer, so an interpreter exit can flush buffered
sinks (see :func:`close_all`, registered with :mod:`atexit`)."""


def close_all() -> None:
    """Close every live tracer's sink (idempotent).

    A :class:`BufferedJsonlSink` holds up to ``flush_every`` serialized
    lines in memory; a ``sys.exit`` mid-run (or any exit path that
    skips ``tracer.close()``) would silently drop that tail and leave a
    trace that parses but under-reports.  Registered with
    :mod:`atexit` as a safety net — orderly code should still close its
    tracer (or use it as a context manager) so the file is complete as
    soon as the run ends.
    """
    for tracer in list(_LIVE_TRACERS):
        tracer.close()


atexit.register(close_all)


class NullSink:
    """Discards every event (for overhead measurement: the tracer is
    *enabled* — events are built — but nothing is retained)."""

    def emit(self, event: dict) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory (tests, post-mortem
    flight recorder)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self._buffer.append(event)

    def events(self) -> list:
        """The retained events, oldest first."""
        return list(self._buffer)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one compact JSON object per event to a file."""

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self.count = 0

    def emit(self, event: dict) -> None:
        self._handle.write(_encode(event) + "\n")
        self.count += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class BufferedJsonlSink:
    """A :class:`JsonlSink` with coalesced dispatch.

    Events are serialized on arrival (so the caller's dicts may be
    mutated afterwards) but hit the file in chunks of ``flush_every``
    lines — one ``write`` call per chunk instead of per event.  This is
    the sinks-ON counterpart of the engine's commit-window batching:
    with the hot path vectorized, a per-event ``write`` would dominate
    the profile.  Measured honestly (``benchmarks/bench_hotpath.py``),
    full tracing + metrics still cost ~25-45% over the sinks-OFF run —
    the irreducible per-event encode — down from >50% with the
    unbuffered sink; ``docs/performance.md`` has the breakdown.
    """

    def __init__(self, path, flush_every: int = 1024) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._pending: list = []
        self._flush_every = flush_every
        self.count = 0

    def emit(self, event: dict) -> None:
        self._pending.append(_encode(event))
        self.count += 1
        if len(self._pending) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines to the file."""
        if self._pending:
            self._handle.write("\n".join(self._pending) + "\n")
            self._pending.clear()

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "BufferedJsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Span:
    """One in-flight multi-step operation.

    Created by :meth:`Tracer.span` (lexical, joins the tracer's span
    stack) or :meth:`Tracer.start_span` (detached, for operations whose
    begin and end live in different call frames, e.g. a transaction's
    lifetime).  Emits a single event when finished, carrying duration
    and — when bound to an :class:`~repro.storage.iostats.IOStats` —
    the page transfers performed while it was open.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "_t0", "_stats", "_before", "_log_before", "_lexical",
                 "_done")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id, attrs: dict, stats, lexical: bool,
                 log_split: bool = False) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._stats = stats
        # a scalar (reads, writes) pair: the delta needs no per-disk
        # breakdown, so a full IOStats.snapshot() per span is waste
        self._before = (stats.reads, stats.writes) if stats is not None else None
        # log_split additionally captures the log-device share of the
        # delta; it sums per-device counters, so it is opt-in (recovery
        # phases and other rare spans, never the per-operation hot path)
        self._log_before = (stats.log_transfers
                            if log_split and stats is not None else None)
        self._lexical = lexical
        self._done = False
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span's closing event."""
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs) -> None:
        """Close the span and emit its event (idempotent)."""
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        self.attrs["dur_ms"] = round(
            (time.perf_counter() - self._t0) * 1e3, 3)
        if self._stats is not None:
            stats = self._stats
            reads = stats.reads - self._before[0]
            writes = stats.writes - self._before[1]
            self.attrs["reads"] = reads
            self.attrs["writes"] = writes
            self.attrs["transfers"] = reads + writes
            if self._log_before is not None:
                self.attrs["log_transfers"] = (stats.log_transfers
                                               - self._log_before)
        tracer = self._tracer
        if self._lexical:
            tracer._pop_span(self)
        tracer._emit_raw(self.name, self.attrs, span_id=self.span_id,
                         parent_id=self.parent_id)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()


class _NullSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits typed events to one sink; disabled without a sink.

    Args:
        sink: any object with ``emit(dict)`` / ``close()``; ``None``
            disables the tracer entirely (use the module-level
            :data:`NULL_TRACER` instead of constructing one per
            component).
    """

    def __init__(self, sink=None) -> None:
        self.sink = sink
        self.enabled = sink is not None
        self._seq = 0
        self._t0 = time.perf_counter()
        self._t0_ns = time.perf_counter_ns()
        self._stack: list = []      # lexical span ids, innermost last
        self._next_span_id = 1
        self._observers: list = []
        if self.enabled:
            _LIVE_TRACERS.add(self)

    close_all = staticmethod(close_all)
    """Flush-and-close every live tracer (module-level :func:`close_all`,
    exposed on the class for discoverability)."""

    # -- observers -----------------------------------------------------------

    def add_observer(self, observe) -> None:
        """Attach a live event observer: ``observe(event_dict)`` is
        called after the sink for every emitted event.

        Observers are how online consumers (the recovery profiler, the
        model-drift detector) watch the stream without owning the sink.
        They only see events while the tracer is enabled; to observe
        without recording, construct the tracer over a
        :class:`NullSink`.  Observers must not mutate the event.
        """
        self._observers.append(observe)

    def remove_observer(self, observe) -> None:
        """Detach an observer added with :meth:`add_observer`."""
        self._observers.remove(observe)

    def _notify(self, event: dict) -> None:
        for observe in self._observers:
            observe(event)

    # -- events --------------------------------------------------------------

    def emit(self, name: str, **attrs) -> None:
        """Emit one event (no-op when disabled)."""
        if not self.enabled:
            return
        # _emit_raw inlined for the plain-event fast path (the vast
        # majority of events): one call frame instead of two
        self._seq += 1
        event = {
            "seq": self._seq,
            "ts": (time.perf_counter_ns() - self._t0_ns) // 1000 / 1e6,
            "name": name,
        }
        if self._stack:
            event["span"] = self._stack[-1]
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)
        if self._observers:
            self._notify(event)

    def emit_costed(self, name: str, window, **attrs) -> None:
        """Emit one event carrying a transfer-count delta.

        ``window`` is anything with ``reads``/``writes`` attributes —
        typically a :class:`~repro.storage.iostats.TransferCounts`
        from ``IOStats.window()`` or a snapshot difference.
        """
        if not self.enabled:
            return
        attrs["reads"] = window.reads
        attrs["writes"] = window.writes
        attrs["transfers"] = window.reads + window.writes
        self.emit(name, **attrs)

    def _emit_raw(self, name: str, attrs: dict, span_id=None,
                  parent_id=None) -> None:
        if not self.enabled:
            return
        self._seq += 1
        event = {
            "seq": self._seq,
            # integer-µs arithmetic gives the same 6-decimal wire value
            # as round(perf_counter() - t0, 6) without the round() call
            "ts": (time.perf_counter_ns() - self._t0_ns) // 1000 / 1e6,
            "name": name,
        }
        if span_id is not None:
            event["span"] = span_id
        elif self._stack:
            event["span"] = self._stack[-1]
        if parent_id is not None:
            event["parent"] = parent_id
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)
        if self._observers:
            self._notify(event)

    def ingest(self, event: dict, span_base: int = 0, **labels) -> None:
        """Re-emit an event recorded by *another* tracer into this
        stream (no-op when disabled).

        This is the worker-merge path: each shard worker process traces
        into a private in-memory sink and ships event batches back over
        the command pipe; the facade ingests them here so one trace
        interleaves every worker deterministically (batches arrive in
        dispatch order).  ``seq`` and ``ts`` are re-stamped against this
        tracer (a worker's clock is not ours); ``span``/``parent`` ids
        are shifted by ``span_base`` so ids from different workers never
        collide; ``labels`` are merged in front of the event's own
        attributes (the facade stamps ``shard=i``, mirroring what
        :class:`LabelledTracer` does for in-process shards).  A foreign
        span-close event with no parent is nested under the current
        lexical span, so worker recovery spans group under the facade's
        ``recovery.restart`` umbrella exactly like in-process shards.
        """
        if not self.enabled:
            return
        self._seq += 1
        event = dict(event)
        event["seq"] = self._seq
        event["ts"] = (time.perf_counter_ns() - self._t0_ns) // 1000 / 1e6
        if span_base:
            if "span" in event:
                event["span"] += span_base
            if "parent" in event:
                event["parent"] += span_base
        if labels:
            attrs = event.get("attrs")
            event["attrs"] = {**labels, **attrs} if attrs else dict(labels)
        if "span" not in event:
            if self._stack:
                event["span"] = self._stack[-1]
        elif "parent" not in event and self._stack \
                and "dur_ms" in (event.get("attrs") or ()):
            event["parent"] = self._stack[-1]
        self.sink.emit(event)
        if self._observers:
            self._notify(event)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, stats=None, log_split: bool = False, **attrs):
        """A lexical span: use as a context manager.  Child events and
        spans opened inside it reference it via ``"span"``/``"parent"``.
        ``log_split=True`` additionally records the log-device share of
        the transfer delta as ``attrs.log_transfers``."""
        if not self.enabled:
            return _NULL_SPAN
        span = Span(self, name, self._next_span_id,
                    self._stack[-1] if self._stack else None,
                    attrs, stats, lexical=True, log_split=log_split)
        self._next_span_id += 1
        self._stack.append(span.span_id)
        return span

    def start_span(self, name: str, stats=None, log_split: bool = False,
                   **attrs):
        """A detached span: caller keeps the handle and calls
        :meth:`Span.finish` later (possibly from another call frame)."""
        if not self.enabled:
            return _NULL_SPAN
        span = Span(self, name, self._next_span_id,
                    self._stack[-1] if self._stack else None,
                    attrs, stats, lexical=False, log_split=log_split)
        self._next_span_id += 1
        return span

    def _pop_span(self, span: Span) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:        # mis-nested finish
            self._stack.remove(span.span_id)

    # -- lifecycle -----------------------------------------------------------

    @property
    def events_emitted(self) -> int:
        """Events emitted so far."""
        return self._seq

    def close(self) -> None:
        """Close the sink (flushes a JSONL sink to disk)."""
        if self.sink is not None:
            self.sink.close()
        _LIVE_TRACERS.discard(self)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LabelledTracer:
    """A tracer view that stamps fixed attributes on every event.

    Wraps (not subclasses) a :class:`Tracer`: the sink, sequence
    numbers, and span stack stay shared, so events from several views
    interleave into one coherent trace.  The sharded engine gives each
    shard a ``LabelledTracer(tracer, shard=i)`` so one JSONL trace
    carries every shard, distinguishable by label.
    """

    __slots__ = ("_inner", "_labels")

    def __init__(self, inner, **labels) -> None:
        self._inner = inner
        self._labels = labels

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    @property
    def events_emitted(self) -> int:
        return self._inner.events_emitted

    def emit(self, name: str, **attrs) -> None:
        self._inner.emit(name, **{**self._labels, **attrs})

    def emit_costed(self, name: str, window, **attrs) -> None:
        self._inner.emit_costed(name, window, **{**self._labels, **attrs})

    def span(self, name: str, stats=None, log_split: bool = False, **attrs):
        return self._inner.span(name, stats=stats, log_split=log_split,
                                **{**self._labels, **attrs})

    def start_span(self, name: str, stats=None, log_split: bool = False,
                   **attrs):
        return self._inner.start_span(name, stats=stats, log_split=log_split,
                                      **{**self._labels, **attrs})

    def ingest(self, event: dict, span_base: int = 0, **labels) -> None:
        self._inner.ingest(event, span_base=span_base,
                           **{**self._labels, **labels})

    def add_observer(self, observe) -> None:
        self._inner.add_observer(observe)

    def remove_observer(self, observe) -> None:
        self._inner.remove_observer(observe)

    def close(self) -> None:
        self._inner.close()


NULL_TRACER = Tracer(None)
"""Shared disabled tracer: the default for every instrumented component."""
