"""Shared fixtures for the benchmark harness.

Every figure benchmark writes its regenerated data table to
``benchmarks/results/<name>.txt`` so the series the paper reports can be
inspected after a run (pytest captures stdout); headline numbers also go
into pytest-benchmark's ``extra_info``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory for regenerated figure tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one figure's table and echo it for -s runs."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
