"""Disk service-time model: seeks, rotation, transfer, queueing.

The paper's model counts *page transfers*; this optional layer prices
each transfer in milliseconds so the organizations can also be compared
on response time — the axis on which Gray et al. argue for parity
striping (sequential runs stay on one arm) against RAID-5 data striping.

The model is the classic three-term service time:

    service = seek(distance) + rotational_latency + transfer_time

with ``seek(d) = 0`` for ``d = 0`` (the arm is already there) and
``min_seek + (max_seek - min_seek) * sqrt(d / cylinders)`` otherwise —
the usual square-root seek curve.  Each disk remembers its arm position
(we map slot number to cylinder) and accumulates busy time; an
:class:`ArrayTimer` turns per-disk busy times into operation latencies
by phase (reads of a small write proceed in parallel, then the writes).

Defaults approximate a late-1980s 5.25" drive (the paper's era): 30 ms
max seek, 16.7 ms full rotation (3600 rpm), 1 MB/s transfer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DiskTimingSpec:
    """Drive timing parameters (milliseconds).

    Attributes:
        min_seek_ms: single-cylinder seek.
        max_seek_ms: full-stroke seek.
        rotation_ms: one full revolution (mean latency is half).
        transfer_ms_per_page: time to transfer one page.
        pages_per_cylinder: slots sharing a cylinder — consecutive slots
            usually need no seek, which is what makes sequential runs
            cheap on one arm.
    """

    min_seek_ms: float = 5.0
    max_seek_ms: float = 30.0
    rotation_ms: float = 16.7
    transfer_ms_per_page: float = 0.5
    pages_per_cylinder: int = 8

    def cylinders_for(self, capacity: int) -> int:
        """Cylinder count of a disk with ``capacity`` page slots."""
        return max(1, -(-capacity // self.pages_per_cylinder))

    def seek_time(self, distance: int, cylinders: int) -> float:
        """Seek time for a ``distance``-cylinder move on a disk with
        ``cylinders`` cylinders total."""
        if distance <= 0:
            return 0.0
        span = max(1, cylinders - 1)
        fraction = min(1.0, distance / span)
        return (self.min_seek_ms
                + (self.max_seek_ms - self.min_seek_ms) * math.sqrt(fraction))

    def service_time(self, distance: int, cylinders: int) -> float:
        """Full service time for one page access after a ``distance``
        cylinder move (mean rotational latency)."""
        return (self.seek_time(distance, cylinders) + self.rotation_ms / 2.0
                + self.transfer_ms_per_page)


@dataclass
class DiskTimer:
    """Arm state and accumulated busy time of one disk."""

    spec: DiskTimingSpec
    capacity: int
    arm_cylinder: int = 0
    busy_ms: float = 0.0
    operations: int = 0
    seeks: int = 0

    def _cylinder_of(self, slot: int) -> int:
        return slot // self.spec.pages_per_cylinder

    def access(self, slot: int) -> float:
        """Account one page access at ``slot``; returns its service time."""
        cylinder = self._cylinder_of(slot)
        distance = abs(cylinder - self.arm_cylinder)
        if distance:
            self.seeks += 1
        cost = self.spec.service_time(distance,
                                      self.spec.cylinders_for(self.capacity))
        self.arm_cylinder = cylinder
        self.busy_ms += cost
        self.operations += 1
        return cost

    @property
    def mean_service_ms(self) -> float:
        """Average service time per access so far."""
        if self.operations == 0:
            return 0.0
        return self.busy_ms / self.operations


@dataclass
class ArrayTimer:
    """Times whole-array operations over per-disk :class:`DiskTimer` s.

    A *phase* is a set of ``(disk, slot)`` accesses that proceed in
    parallel (e.g. the two reads of a small write); the phase latency is
    the slowest member.  An operation is a sequence of phases; its
    latency is their sum.  Total elapsed time for a serial stream of
    operations is accumulated in :attr:`elapsed_ms`.
    """

    spec: DiskTimingSpec
    capacity_per_disk: int
    num_disks: int
    timers: list = field(default_factory=list)
    elapsed_ms: float = 0.0
    operations: int = 0

    def __post_init__(self) -> None:
        if not self.timers:
            self.timers = [DiskTimer(self.spec, self.capacity_per_disk)
                           for _ in range(self.num_disks)]

    def operation(self, *phases) -> float:
        """Time one operation.

        Each phase is an iterable of ``(disk, slot)`` pairs accessed in
        parallel.  Returns the operation latency and adds it to
        :attr:`elapsed_ms`.
        """
        total = 0.0
        for phase in phases:
            slowest = 0.0
            for disk, slot in phase:
                cost = self.timers[disk].access(slot)
                slowest = max(slowest, cost)
            total += slowest
        self.elapsed_ms += total
        self.operations += 1
        return total

    def mean_latency_ms(self) -> float:
        """Average operation latency so far."""
        if self.operations == 0:
            return 0.0
        return self.elapsed_ms / self.operations

    def utilizations(self) -> list:
        """Per-disk busy time as a fraction of elapsed time."""
        if self.elapsed_ms == 0:
            return [0.0] * len(self.timers)
        return [t.busy_ms / self.elapsed_ms for t in self.timers]

    def total_seeks(self) -> int:
        """Arm movements across all disks."""
        return sum(t.seeks for t in self.timers)


def time_read(timer: ArrayTimer, geometry, page: int) -> float:
    """Latency of a plain page read."""
    addr = geometry.data_address(page)
    return timer.operation([(addr.disk, addr.slot)])


def time_small_write(timer: ArrayTimer, geometry, page: int,
                     twins: int = 0, old_in_buffer: bool = False) -> float:
    """Latency of the small-write protocol on ``page``.

    Phase 1 reads the old data (unless buffered) and the parity page(s)
    in parallel; phase 2 writes the new data and parity in parallel.
    ``twins`` = 0 prices a single-parity array (1 parity page), 1 or 2
    price a twin array updating that many twins.
    """
    addr = geometry.data_address(page)
    group = geometry.group_of(page)
    parity_addrs = geometry.parity_addresses(group)
    involved = list(parity_addrs[:twins] if twins else parity_addrs[:1])
    read_phase = [] if old_in_buffer else [(addr.disk, addr.slot)]
    read_phase += [(a.disk, a.slot) for a in involved]
    write_phase = [(addr.disk, addr.slot)] + [(a.disk, a.slot)
                                              for a in involved]
    return timer.operation(read_phase, write_phase)


def time_sequential_scan(timer: ArrayTimer, geometry, start: int,
                         length: int) -> float:
    """Latency of reading ``length`` consecutive logical pages."""
    total = 0.0
    for page in range(start, start + length):
        total += time_read(timer, geometry, page)
    return total


def time_mixed_workload(timer: ArrayTimer, geometry, scan_pages,
                        random_pages) -> float:
    """Gray's scenario: a sequential scan interleaved with random
    requests.

    Under **parity striping** the scan occupies a single arm, so random
    traffic rarely displaces it and the scan pages pay almost no seeks.
    Under **data striping** the scan touches every arm; random requests
    constantly pull arms away, so most scan pages pay a seek.  The two
    streams alternate page-for-page; returns total elapsed time.
    """
    total = 0.0
    randoms = list(random_pages)
    for index, page in enumerate(scan_pages):
        total += time_read(timer, geometry, page)
        if index < len(randoms):
            total += time_read(timer, geometry, randoms[index])
    return total
