"""Transactions.

A :class:`Transaction` records what the recovery protocols need: its
lifecycle state, the pages it has read and written, which of its written
pages have been *stolen* to disk, and — under record logging — the
record-level writes.  The object is bookkeeping only; commit/abort work
is orchestrated by the recovery manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TxnState(Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction's bookkeeping.

    Attributes:
        txn_id: unique id, also used to stamp parity twins and log records.
        state: current :class:`TxnState`.
        pages_read: logical pages read.
        pages_written: logical pages with uncommitted modifications.
        pages_stolen: written pages that have reached disk before EOT.
        records_written: ``(page, slot)`` pairs under record logging.
        must_commit: set when a media failure destroyed the parity-encoded
            before-image of one of this transaction's stolen pages (see
            ``TwinParityArray.rebuild_disk(on_lost_undo="adopt")``);
            aborting is no longer possible.
    """

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    pages_read: set = field(default_factory=set)
    pages_written: set = field(default_factory=set)
    pages_stolen: set = field(default_factory=set)
    records_written: set = field(default_factory=set)
    must_commit: bool = False

    @property
    def is_active(self) -> bool:
        """True while neither committed nor aborted."""
        return self.state is TxnState.ACTIVE

    @property
    def is_update_transaction(self) -> bool:
        """True if it wrote anything (the model's update fraction f_u)."""
        return bool(self.pages_written or self.records_written)

    def note_read(self, page: int) -> None:
        """Record a page read."""
        self.pages_read.add(page)

    def note_write(self, page: int) -> None:
        """Record a page modification."""
        self.pages_written.add(page)

    def note_record_write(self, page: int, slot: int) -> None:
        """Record a record-level modification (record logging mode)."""
        self.records_written.add((page, slot))
        self.pages_written.add(page)

    def note_steal(self, page: int) -> None:
        """Record that a modified page was written to disk before EOT."""
        self.pages_stolen.add(page)
