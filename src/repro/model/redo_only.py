"""Cost models for the REDO-only class (beyond-paper extension).

The paper's four classes all log **before-images** so that restart (or
abort) can undo stolen pages.  The REDO-only class removes the undo
log entirely: dirty pages may reach disk only once their redo chain is
durable (write-behind propagation), so no on-disk state ever needs
undoing and the log carries after-images only.  Two configurations:

* :func:`page_noforce` — pure REDO-only over a plain parity array
  (preset ``page-noforce-redo``).  Page-sized after-images, half the
  log volume of page ¬FORCE/ACC: ``c_l = 4 (s p_u + 2)`` versus the
  paper's ``4 (2 s p_u + 2)``.
* :func:`record_noforce_rda` — the RDA+REDO hybrid (preset
  ``record-noforce-rda-redo``).  Twin-parity undo covers losers (the
  write-behind gate only admits twin-covered steals, so **no** steal
  ever logs a before-entry), record-sized redo entries cover winners:
  ``c_l = 4 (2 l_bc + s p_u (l_bc + L)) / l_p`` — the paper's record
  ¬FORCE/ACC cost with the before-bytes term gone entirely, cheaper
  than every before-image class.

Both are reconstructions in the style of Sections 5.2.2/5.3.2 (same
probabilities, same checkpoint/restart framework), not equations from
the scan: the paper never priced a redo-only discipline.
"""

from __future__ import annotations

from .params import ModelParams
from .probabilities import (average_log_entry_length,
                            concurrent_modifier_fraction,
                            logging_probability,
                            optimal_checkpoint_interval,
                            replaced_page_modified, shared_update_pages,
                            stolen_before_eot)
from .throughput import (CostBreakdown, interval_throughput,
                         mean_transaction_cost)


def page_noforce(params: ModelParams) -> CostBreakdown:
    """Page REDO-only, ¬FORCE + ACC, no RDA (``page-noforce-redo``).

    Components:

    * ``c_l = 4 (s p_u + 2)`` — after-images only (one log page per
      updated page) plus BOT/EOT into the combined log; the before
      half of page ¬FORCE/ACC's ``4 (2 s p_u + 2)`` disappears.
    * ``c_b = 4`` — backout writes the abort record and drops the
      transaction's buffered pages; the write-behind gate guarantees
      none of them reached disk, so there is nothing to undo.
    * ``c_c = 4 B p_m + 4`` — unchanged: checkpoints push committed
      dirty pages whose chains are durable by then.
    * restart replays each page's chain forward from its on-disk LSN:
      the same ``redo_per_txn = c_l / 4 + 4 s p_u`` framework as
      Section 5.2.2, with no undo pass at all.
    """
    p = params
    spu = p.s * p.p_u
    p_m = replaced_page_modified(p.f_u, p.p_u, p.C)
    a_write = 4.0
    c_l = 4.0 * (spu + 2.0)
    c_b = 4.0
    c_c = 4.0 * p.B * p_m + 4.0
    c_r = p.s * (1.0 - p.C) + a_write * p.s * (1.0 - p.C) * p_m
    c_u = c_r + c_l + p.p_b * c_b
    c_E = mean_transaction_cost(p.f_u, c_r, c_u)
    redo_per_txn = c_l / 4.0 + 4.0 * spu
    interval = optimal_checkpoint_interval(c_E, c_c, p.T, redo_per_txn, p.f_u)
    r_c = interval / c_E
    c_s = (r_c / 2.0) * p.f_u * redo_per_txn + p.P * p.f_u * redo_per_txn
    r_t = interval_throughput(p.T, c_E, c_s=c_s, c_c=c_c, interval=interval)
    return CostBreakdown(algorithm="page ¬FORCE/ACC REDO-only", rda=False,
                         c_r=c_r, c_u=c_u, c_l=c_l, c_b=c_b, c_c=c_c,
                         c_s=c_s, checkpoint_interval=interval, p_l=0.0,
                         c_E=c_E, throughput=r_t)


def record_noforce_rda(params: ModelParams) -> CostBreakdown:
    """Record REDO + RDA hybrid, ¬FORCE + ACC
    (``record-noforce-rda-redo``).

    Components:

    * ``c_l = 4 (2 l_bc + s p_u (l_bc + L)) / l_p`` — BOT/EOT plus one
      redo entry per update; no before bytes and no conditional
      ``p_l``-dependent logging, because steals are only admitted when
      the parity twins cover them (uncoverable steals are refused and
      the page stays buffered).
    * ``c_b = (p_u s / 2) p_s (6 p_l + 5 (1 - p_l)) + 4`` — losers
      restore stolen pages through the twins (5, or 6 into a dirty
      group); unstolen updates die in the buffer for free.
    * ``c_c = (4 + 2 p_l) B p_m + 4`` — committed write-back touches
      both twins when the group is dirty.
    * restart: twin undo for losers (priced inside ``c_s`` via the
      same ``redo_per_txn`` framework) plus the ``S / N``
      current-parity bitmap rebuild.
    """
    p = params
    spu = p.s * p.p_u
    L = average_log_entry_length(p.d, p.r, p.s, p.e)
    p_m = replaced_page_modified(p.f_u, p.p_u, p.C)
    p_s_steal = stolen_before_eot(p.B, p.C, p.s, p.P)
    p_i = concurrent_modifier_fraction(p.B, p.C, p.s, p.p_u, p.P, p.f_u)
    s_u = shared_update_pages(p.B, p.C, p.s, p.p_u, p.P, p.f_u)
    p_l = logging_probability(s_u * p_s_steal / 2.0, p.S, p.N)
    c_l = 4.0 * (2.0 * p.l_bc + spu * (p.l_bc + L)) / p.l_p
    c_b = ((p.p_u * p.s / 2.0) * p_s_steal * (6.0 * p_l + 5.0 * (1.0 - p_l))
           + 4.0)
    c_c = (4.0 + 2.0 * p_l) * p.B * p_m + 4.0
    c_r = p.s * (1.0 - p.C) + 4.0 * p.s * (1.0 - p.C) * (p_m
                                                         + 2.0 * p_i * p_l)
    c_u = c_r + c_l + p.p_b * c_b
    c_E = mean_transaction_cost(p.f_u, c_r, c_u)
    redo_per_txn = c_l / 4.0 + 4.0 * spu
    interval = optimal_checkpoint_interval(c_E, c_c, p.T, redo_per_txn, p.f_u)
    r_c = interval / c_E
    c_s = ((r_c / 2.0) * p.f_u * redo_per_txn
           + p.P * p.f_u * redo_per_txn
           + p.S / p.N)
    r_t = interval_throughput(p.T, c_E, c_s=c_s, c_c=c_c, interval=interval)
    return CostBreakdown(algorithm="record ¬FORCE/ACC RDA+REDO", rda=True,
                         c_r=c_r, c_u=c_u, c_l=c_l, c_b=c_b, c_c=c_c,
                         c_s=c_s, checkpoint_interval=interval, p_l=p_l,
                         c_E=c_E, throughput=r_t)


def log_cost_comparison(params: ModelParams) -> dict:
    """``c_l`` (log transfers per update transaction) across the five
    recovery classes — the analytical counterpart of
    ``benchmarks/bench_recovery.py``."""
    from . import page_logging, record_logging
    return {
        "page-noforce-log": page_logging.noforce_acc(params, rda=False).c_l,
        "page-noforce-rda": page_logging.noforce_acc(params, rda=True).c_l,
        "record-noforce-log":
            record_logging.noforce_acc(params, rda=False).c_l,
        "record-noforce-rda":
            record_logging.noforce_acc(params, rda=True).c_l,
        "page-noforce-redo": page_noforce(params).c_l,
        "record-noforce-rda-redo": record_noforce_rda(params).c_l,
    }
