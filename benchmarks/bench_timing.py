"""X4: service-time ablation — data striping vs parity striping.

Prices page accesses in milliseconds (seek + rotation + transfer) and
reproduces Gray et al.'s argument for parity striping in OLTP: under a
mix of one sequential scan and random point requests, keeping the scan
on a single arm wins; on a dedicated scan the organizations tie.
"""

import random

from repro.storage import (ArrayTimer, DiskTimingSpec,
                           parity_striping_geometry, raid5_geometry,
                           time_mixed_workload, time_small_write)

from .conftest import write_table

SPEC = DiskTimingSpec()
N, GROUPS = 8, 200


def timer_for(geometry):
    return ArrayTimer(SPEC, geometry.capacity_per_disk, geometry.num_disks)


def test_mixed_workload_latency(benchmark, results_dir):
    def campaign():
        rng = random.Random(13)
        raid = raid5_geometry(N, GROUPS)
        striped = parity_striping_geometry(N, GROUPS)
        scan = list(range(120))
        randoms = [rng.randrange(raid.num_data_pages) for _ in range(120)]
        out = {}
        for label, geometry in (("raid5", raid), ("parity-striping", striped)):
            timer = timer_for(geometry)
            total = time_mixed_workload(timer, geometry, scan, randoms)
            out[label] = (total / (2 * len(scan)), timer.total_seeks())
        return out

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    (raid_ms, raid_seeks) = result["raid5"]
    (ps_ms, ps_seeks) = result["parity-striping"]
    assert ps_ms < raid_ms
    write_table(results_dir, "timing_mixed",
                "X4: scan + random mix, mean ms/access (seeks)\n"
                f"RAID-5 data striping : {raid_ms:6.2f} ms ({raid_seeks} seeks)\n"
                f"parity striping      : {ps_ms:6.2f} ms ({ps_seeks} seeks)")
    benchmark.extra_info["raid5_ms"] = round(raid_ms, 2)
    benchmark.extra_info["parity_striping_ms"] = round(ps_ms, 2)


def test_small_write_latency_single_vs_twin(benchmark, results_dir):
    """The RDA latency tax: a dirty-group write engages a third arm but
    stays two rotations — well under 2x a plain small write."""

    def campaign():
        geometry = raid5_geometry(N, GROUPS, twin=True)
        single = time_small_write(timer_for(geometry), geometry, 0, twins=1)
        both = time_small_write(timer_for(geometry), geometry, 0, twins=2)
        return single, both

    single, both = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert both < 2 * single
    write_table(results_dir, "timing_twin_write",
                "X4: small-write latency (ms)\n"
                f"one twin updated : {single:6.2f}\n"
                f"both twins (dirty group): {both:6.2f}")
    benchmark.extra_info["one_twin_ms"] = round(single, 2)
    benchmark.extra_info["both_twins_ms"] = round(both, 2)
