"""Buffer manager: frames, replacement policies, and the pool.

Implements STEAL/NO-STEAL and FORCE/NO-FORCE from the Haerder-Reuter
taxonomy the paper's Section 2 builds on.
"""

from .frame import Frame
from .pool import BufferPool, BufferStats
from .replacement import ClockPolicy, LRUPolicy, ReplacementPolicy, make_policy

__all__ = [
    "Frame",
    "BufferPool",
    "BufferStats",
    "ClockPolicy",
    "LRUPolicy",
    "ReplacementPolicy",
    "make_policy",
]
