"""True multicore sharding: each shard engine in its own worker process.

The in-process :class:`~repro.db.sharded.ShardedDatabase` runs K shard
engines on one Python thread, taking turns.  This module keeps the
exact same facade API and semantics but hosts each shard
:class:`~repro.db.database.Database` in a separate OS process, driven
over a typed command/reply protocol — Wu et al.'s per-core-logging
blueprint (*Fast Failure Recovery for Main-Memory DBMSs on
Multicores*): per-shard WALs, one cross-shard barrier, and restart
recovery that fans out to every worker concurrently.

**Protocol.**  One duplex pipe per worker.  A command is
``(op, args)``; a reply is ``(status, value, events, gc)`` where
``status`` is ``"ok"``/``"err"`` (``value`` is the result or the
pickled exception, re-raised at the facade), ``events`` is the batch of
tracer events the command produced (merged into the facade trace via
:meth:`~repro.obs.tracer.Tracer.ingest`, in dispatch order, so the
merge is deterministic), and ``gc`` is the worker coordinator's
cumulative deferred-force count (folded into the facade coordinator's
accounting against a per-worker watermark).  Cross-shard operations
(begin/commit/abort/crash/recover/flush) are *scatter-gather*: the
facade sends the command to every worker before collecting any reply,
so all K engines execute concurrently; replies are consumed in
scheduler order, which keeps the observable stream byte-identical to
the in-process engine.

**The coordinator is the only barrier.**  Each worker owns a *local*
:class:`~repro.wal.group_commit.GroupCommitCoordinator`; the worker's
own ``commit`` handler opens the deferral window around its shard
commit, so WAL-rule forces stay synchronous inside the worker and
``durable_lsn``/``covers`` semantics are evaluated where the log lives
— no per-force message crosses a process boundary.  The facade-side
:class:`_FacadeCoordinator` counts commits against the flush horizon
and, on flush, broadcasts one ``gc_flush`` to the workers (draining
their local pendings) before forcing its own pending global commit log.

**Crash propagation.**  Every state-changing command is journaled at
the facade *before* it is sent.  If a worker dies (nemesis kill, fault
injection), the supervisor respawns it and replays the journal — the
engines are deterministic, so the rebuilt worker converges to the state
in which every journaled command, including one in flight at death,
has fully executed; a scatter command therefore executes on *all*
shards or is never sent, preserving cross-shard commit atomicity.  The
interrupted facade call then raises :class:`WorkerCrashed`, which
drivers treat like a crash signal: run :meth:`crash` (the group-commit
drain contract — the healed worker's replayed pending forces are
flushed before memory is lost) and :meth:`recover`, then resolve any
in-doubt commit against the recovered winner set.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import pickle
import signal
import weakref

from ..errors import ModelError, RecoveryError
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from ..storage import IOStats
from ..storage.iostats import TransferCounts
from ..wal import CommitRecord, GroupCommitCoordinator, GroupCommitLog
from .config import DBConfig
from .database import Database
from .sharded import (ShardedDatabase, ShardScheduler, _ShardedMetrics,
                      shard_config)


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in ("1", "on", "true", "yes")


def workers_enabled_by_env() -> bool:
    """True when ``REPRO_WORKERS`` asks for worker-process shards."""
    return _truthy(os.environ.get("REPRO_WORKERS"))


def make_sharded(config: DBConfig, shards: int = 2, flush_horizon: int = 1,
                 tracer=None, metrics=None, history=None,
                 workers: bool | None = None):
    """Build the K-way engine: in-process or worker-process shards.

    ``workers=None`` honors the ``REPRO_WORKERS`` environment variable
    (the CI worker-mode leg runs the whole suite with it set).
    """
    if workers is None:
        workers = workers_enabled_by_env()
    cls = WorkerShardedDatabase if workers else ShardedDatabase
    return cls(config, shards=shards, flush_horizon=flush_horizon,
               tracer=tracer, metrics=metrics, history=history)


class WorkerCrashed(RecoveryError):
    """A shard worker process died under a facade call.

    By the time this surfaces the supervisor has already respawned the
    worker and replayed its command journal, so the engine is whole;
    the *reply* of the interrupted command is what was lost.  Treat it
    like a crash signal: run ``crash()`` + ``recover()`` and resolve an
    in-doubt commit against the recovered winners.
    """

    def __init__(self, shard: int, op: str | None = None) -> None:
        self.shard = shard
        self.op = op
        suffix = f" during {op!r}" if op else ""
        super().__init__(f"shard {shard} worker died{suffix}")

    def __reduce__(self):
        return (WorkerCrashed, (self.shard, self.op))


# ---------------------------------------------------------------- worker side


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to build its shard engine."""

    shard: int
    config: DBConfig            # already split via shard_config
    traced: bool
    with_metrics: bool


class _ListSink:
    """Per-command event buffer: drained into each reply."""

    def __init__(self) -> None:
        self._events: list = []

    def emit(self, event: dict) -> None:
        self._events.append(event)

    def drain(self) -> list:
        events, self._events = self._events, []
        return events

    def close(self) -> None:
        pass


class _WorkerState:
    """The worker loop's context: engine, coordinator, sink, fault arm."""

    def __init__(self, db: Database, coordinator: GroupCommitCoordinator,
                 sink: _ListSink | None) -> None:
        self.db = db
        self.coordinator = coordinator
        self.sink = sink
        self.die_on: str | None = None      # test seam: exit inside a handler


def _die() -> None:
    """Simulated worker death: immediate, no cleanup, no reply."""
    os._exit(17)


def _h_commit(state: _WorkerState, txn_id: int) -> None:
    if state.die_on == "before_commit":
        _die()                      # mid-commit-window: others may commit
    with state.coordinator.deferred():
        state.db.commit(txn_id)
    if state.die_on == "after_commit":
        _die()                      # committed locally, reply never sent


def _h_gc_flush(state: _WorkerState) -> int:
    if state.die_on == "mid_flush" and state.coordinator._pending:
        # force one pending log, then die mid-batch: a torn batched
        # flush, finished by journal replay (the drain contract)
        state.coordinator._pending[0].force_now()
        state.coordinator._pending.pop(0)
        _die()
    return state.coordinator.flush()


def _h_recover(state: _WorkerState) -> dict:
    return state.db.recover()


def _h_txn_flags(state: _WorkerState, txn_id: int) -> dict:
    txn = state.db.txns.get(txn_id)
    return {"must_commit": txn.must_commit, "is_active": txn.is_active,
            "state": txn.state, "is_update": txn.is_update_transaction}


def _h_snap(state: _WorkerState) -> dict:
    db = state.db
    buf = db.buffer.stats
    counters = dataclasses.asdict(db.counters)
    return {
        "reads": db.stats.reads,
        "writes": db.stats.writes,
        "log_transfers": db.stats.log_transfers,
        "hits": buf.hits,
        "misses": buf.misses,
        "evictions": buf.evictions,
        "dirty_evictions": buf.dirty_evictions,
        "buffer_steals": buf.steals,
        **counters,
        "active_transactions": len(db.txns.active_transactions()),
        "undo_log_bytes": db.undo_log.size_bytes,
        "redo_log_bytes": db.redo_log.size_bytes,
        "dirty_groups": (len(db.rda.dirty_set)
                         if db.rda is not None else 0),
    }


def _h_attach_invariants(state: _WorkerState, rules) -> bool:
    from ..check.invariants import InvariantEngine
    InvariantEngine.attach(state.db, rules)
    return True


def _h_invariant_state(state: _WorkerState) -> tuple:
    engine = state.db.invariants
    if engine is None:
        return [], {}
    return list(engine.violations), dict(engine.barrier_counts)


def _h_check_restart(state: _WorkerState) -> list:
    from ..check.invariants import check_restart
    return check_restart(state.db)


def _h_verify(state: _WorkerState) -> list:
    from .verify import verify_database
    return verify_database(state.db)


_HANDLERS = {
    # transaction API
    "begin": lambda s, txn_id: s.db.begin(txn_id=txn_id),
    "grants_for": lambda s, txn_id: s.db.grants_for(txn_id),
    "read_page": lambda s, t, p: s.db.read_page(t, p),
    "write_page": lambda s, t, p, d: s.db.write_page(t, p, d),
    "read_record": lambda s, t, p, sl: s.db.read_record(t, p, sl),
    "update_record": lambda s, t, p, sl, d: s.db.update_record(t, p, sl, d),
    "insert_record": lambda s, t, p, d: s.db.insert_record(t, p, d),
    "delete_record": lambda s, t, p, sl: s.db.delete_record(t, p, sl),
    "commit": _h_commit,
    "abort": lambda s, txn_id: s.db.abort(txn_id),
    # checkpoints / log hygiene
    "ckpt_note": lambda s, cost: s.db.checkpointer.note_work(cost),
    "ckpt_maybe": lambda s: s.db.checkpointer.maybe_checkpoint(),
    "ckpt_do": lambda s: s.db.checkpointer.checkpoint(),
    "trim": lambda s, floor: s.db.trim_log(archive_floor=floor),
    # group commit barrier
    "gc_flush": _h_gc_flush,
    # failures
    "crash": lambda s: s.db.crash(),
    "recover": _h_recover,
    "media_failure": lambda s, disk: s.db.media_failure(disk),
    "media_recover": lambda s, disk, mode: s.db.media_recover(
        disk, on_lost_undo=mode),
    # bulk loading
    "load_pages": lambda s, payloads: s.db.load_pages(payloads),
    "format_pages": lambda s, pages: s.db.format_record_pages(pages),
    # inspection / conformance
    "snap": _h_snap,
    "txn_flags": _h_txn_flags,
    "active_txns": lambda s: [t.txn_id
                              for t in s.db.txns.active_transactions()],
    "resident_pages": lambda s: s.db.buffer.resident_pages(),
    "in_buffer": lambda s, page: page in s.db.buffer,
    "disk_page": lambda s, page: s.db.disk_page(page),
    "committed_view": lambda s, page: s.db.committed_view(page),
    "verify_parity": lambda s: s.db.verify_parity(),
    "verify": _h_verify,
    "metrics_snapshot": lambda s: (s.db.metrics.snapshot()
                                   if s.db.metrics is not None else {}),
    "attach_invariants": _h_attach_invariants,
    "invariant_state": _h_invariant_state,
    "check_restart": _h_check_restart,
    "ping": lambda s: "pong",
}

# Commands that change engine state are journaled by the facade and
# replayed after a worker death; everything else is a pure query whose
# reply the caller can simply re-request.  Reads are state-changing:
# they touch the lock table, the buffer's replacement state, and the
# hit counters.  ``committed_view`` reads through the buffer (hit
# accounting), so it is journaled too.
_MUTATING = frozenset({
    "begin", "read_page", "write_page", "read_record", "update_record",
    "insert_record", "delete_record", "commit", "abort",
    "ckpt_note", "ckpt_maybe", "ckpt_do", "trim", "gc_flush",
    "crash", "recover", "media_failure", "media_recover",
    "load_pages", "format_pages", "committed_view", "attach_invariants",
})


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(conn, spec: WorkerSpec) -> None:
    """The worker process entry point: build the shard engine, serve
    commands until shutdown.  Importable at module level so the spawn
    start method works everywhere fork does."""
    # a forked child inherits the parent's live tracers (and their
    # buffered sinks); drop them so nothing in this process can flush
    # a duplicate tail into the parent's trace file
    from ..obs import tracer as tracer_mod
    tracer_mod._LIVE_TRACERS.clear()

    sink = _ListSink() if spec.traced else None
    tracer = Tracer(sink) if spec.traced else NULL_TRACER
    metrics = MetricsRegistry() if spec.with_metrics else None
    coordinator = GroupCommitCoordinator(flush_horizon=1)

    def log_factory(db: Database, name: str) -> GroupCommitLog:
        return GroupCommitLog(
            name=name, page_size=db.config.log_page_size,
            transfers_per_log_page=db.config.log_transfers_per_page,
            stats=db.stats, metrics=db.metrics, coordinator=coordinator)

    db = Database(spec.config, tracer=tracer, metrics=metrics,
                  log_factory=log_factory)
    state = _WorkerState(db, coordinator, sink)

    info = {
        "num_data_pages": db.num_data_pages,
        "disks_per_shard": len(db.array.disks),
        "has_checkpointer": db.checkpointer is not None,
    }
    events = sink.drain() if sink is not None else ()
    conn.send(("ok", info, events, coordinator.deferred_forces))

    # clean exits *return* rather than os._exit: the multiprocessing
    # bootstrap then finishes normally, letting subprocess coverage
    # (and any other bootstrap-level finalizer) flush before the
    # start-method machinery calls os._exit itself.  Only the injected
    # deaths (_die) take the hard-exit path.
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            return
        if op == "shutdown":
            try:
                conn.send(("ok", None, (), coordinator.deferred_forces))
            except (BrokenPipeError, OSError):
                pass
            return
        if op == "die":
            when, = args
            if when == "now":
                _die()
            state.die_on = when
            conn.send(("ok", when, (), coordinator.deferred_forces))
            continue
        if state.die_on == "next_command":
            _die()
        try:
            value = _HANDLERS[op](state, *args)
            status = "ok"
        except Exception as exc:                    # noqa: BLE001
            value = _picklable(exc)
            status = "err"
        events = sink.drain() if sink is not None else ()
        try:
            conn.send((status, value, events, coordinator.deferred_forces))
        except (BrokenPipeError, OSError):
            return


# ---------------------------------------------------------------- supervisor


def _mp_context():
    """fork where available (Linux), spawn elsewhere; ``REPRO_MP_START``
    overrides (the per-platform pin tests/conftest.py applies to the
    *global* start method does not bind this private context)."""
    name = os.environ.get("REPRO_MP_START")
    if not name:
        name = ("fork" if "fork" in mp.get_all_start_methods()
                else "spawn")
    return mp.get_context(name)


def _reap(procs: list) -> None:
    """Hard-stop any still-running worker processes (GC/exit backstop)."""
    for proc in procs:
        try:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except Exception:                           # noqa: BLE001
            pass


class _WorkerHandle:
    """One worker: process + pipe + command journal.

    The journal holds every state-changing command ever sent.  On
    death, :meth:`heal` respawns the process and replays it — replies
    (and their event batches) are discarded, because the facade already
    consumed the acknowledged prefix and the in-flight command's reply
    is reported lost via :class:`WorkerCrashed`.
    """

    def __init__(self, supervisor: "WorkerSupervisor", shard: int,
                 spec: WorkerSpec) -> None:
        self.supervisor = supervisor
        self.shard = shard
        self.spec = spec
        self.journal: list = []
        self.info: dict = {}
        self._proc = None
        self._conn = None
        self._reply_lost = False
        self._gc_seen = 0
        self._spawn(replaying=False)

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, replaying: bool) -> None:
        ctx = self.supervisor.ctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=_worker_main, args=(child_conn, self.spec),
                           name=f"repro-shard-{self.shard}", daemon=True)
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn
        self.supervisor.track(proc)
        # handshake: static shard facts + construction events
        status, info, events, gc = self._conn.recv()
        if status != "ok":                          # pragma: no cover
            raise RecoveryError(f"shard {self.shard} worker failed to start")
        self.info = info
        if not replaying:
            self._absorb(events, gc)

    def heal(self) -> None:
        """Respawn the dead worker and replay its journal.

        Deterministic engines make the replayed worker converge to the
        state where every journaled command has fully executed —
        including one that was in flight when the process died."""
        if self._proc is not None and self._proc.is_alive():
            self._proc.kill()
        if self._proc is not None:
            self._proc.join(timeout=5.0)
        if self._conn is not None:
            self._conn.close()
        before = self._gc_seen
        self._gc_seen = 0
        self._spawn(replaying=True)
        # windowed replay: keep at most a handful of commands in flight
        # so neither direction of the pipe fills up (an unbounded send
        # loop deadlocks once both OS pipe buffers are full)
        gc = 0
        outstanding = 0
        for op, args in self.journal:
            self._conn.send((op, args))
            outstanding += 1
            if outstanding >= 16:
                _, _, _, gc = self._conn.recv()
                outstanding -= 1
        while outstanding:
            _, _, _, gc = self._conn.recv()
            outstanding -= 1
            # replies discarded: already consumed before the death
        # the in-flight command's deferral delta was lost with its
        # reply; reconcile the facade coordinator against the replayed
        # cumulative count so the accounting stays exact
        self._gc_seen = before
        self._absorb((), gc)
        self.supervisor.on_heal(self.shard)

    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (the ``worker_kill`` nemesis)."""
        if self._proc is not None and self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5.0)

    def shutdown(self) -> None:
        try:
            self._conn.send(("shutdown", ()))
            self._conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        if self._proc is not None:
            self._proc.join(timeout=2.0)
            if self._proc.is_alive():
                self._proc.kill()
                self._proc.join(timeout=1.0)
        if self._conn is not None:
            self._conn.close()

    # -- protocol ------------------------------------------------------------

    def send(self, op: str, args: tuple) -> None:
        if op in _MUTATING:
            self.journal.append((op, args))
        try:
            self._conn.send((op, args))
        except (BrokenPipeError, OSError):
            # journaled first, so the command lands during replay; the
            # reply is lost either way
            self.heal()
            self._reply_lost = True

    def recv(self, op: str):
        if self._reply_lost:
            self._reply_lost = False
            raise WorkerCrashed(self.shard, op)
        try:
            status, value, events, gc = self._conn.recv()
        except (EOFError, OSError):
            self.heal()
            raise WorkerCrashed(self.shard, op) from None
        self._absorb(events, gc)
        if status == "err":
            raise value
        return value

    def call(self, op: str, *args):
        self.send(op, args)
        return self.recv(op)

    def _absorb(self, events, gc_cumulative: int) -> None:
        self.supervisor.absorb(self.shard, events)
        delta = gc_cumulative - self._gc_seen
        self._gc_seen = gc_cumulative
        if delta > 0:
            self.supervisor.coordinator.absorb_deferred(delta)


class WorkerSupervisor:
    """Owns the K worker processes: lifecycle, scatter-gather dispatch,
    death detection, and journal-replay healing."""

    def __init__(self, per_shard: DBConfig, shards: int, tracer,
                 coordinator: GroupCommitCoordinator,
                 with_metrics: bool) -> None:
        self.ctx = _mp_context()
        self.tracer = tracer
        self.coordinator = coordinator
        self.procs: list = []       # mutated in place; _reap sees updates
        self.worker_deaths = 0
        self.handles = [
            _WorkerHandle(self, i, WorkerSpec(
                shard=i, config=per_shard, traced=tracer.enabled,
                with_metrics=with_metrics))
            for i in range(shards)
        ]

    def track(self, proc) -> None:
        self.procs[:] = [p for p in self.procs if p.is_alive()]
        self.procs.append(proc)

    def absorb(self, shard: int, events) -> None:
        if events and self.tracer.enabled:
            base = (shard + 1) * 1_000_000
            for event in events:
                self.tracer.ingest(event, span_base=base, shard=shard)

    def on_heal(self, shard: int) -> None:
        self.worker_deaths += 1
        if self.tracer.enabled:
            self.tracer.emit("worker.respawn", shard=shard,
                             replayed=len(self.handles[shard].journal))

    # -- dispatch ------------------------------------------------------------

    def scatter(self, order, op: str, args: tuple = (),
                args_for=None) -> dict:
        """Send ``op`` to every shard in ``order`` before collecting any
        reply (all workers execute concurrently); gather in the same
        order.  If a worker dies, the remaining replies are still
        drained — the pipes stay in lockstep — and the first death is
        re-raised after the sweep."""
        handles = self.handles
        for i in order:
            handles[i].send(op, args_for(i) if args_for is not None else args)
        results: dict = {}
        death: WorkerCrashed | None = None
        error: BaseException | None = None
        for i in order:
            try:
                results[i] = handles[i].recv(op)
            except WorkerCrashed as crash:
                if death is None:
                    death = crash
            except Exception as exc:                # noqa: BLE001
                if error is None:
                    error = exc
        if death is not None:
            raise death
        if error is not None:
            raise error
        return results

    def broadcast_flush(self) -> int:
        """Drain every worker's local coordinator; returns how many logs
        were forced across all workers."""
        results = self.scatter(range(len(self.handles)), "gc_flush")
        return sum(results.values())

    def arm_death(self, shard: int, when: str) -> str:
        """Fault-injection seam: make one worker exit at a chosen point.

        ``when``: ``"now"`` (exit immediately), ``"next_command"``,
        ``"before_commit"`` / ``"after_commit"`` (around the shard
        commit inside the commit window), or ``"mid_flush"`` (force one
        pending log of a batched flush, then die — a torn batch the
        journal-replay drain must finish)."""
        return self.handles[shard].call("die", when)

    def heal_dead(self) -> int:
        """Bring any dead workers back (journal replay), quietly —
        the crash path calls this before the drain so the contract
        covers workers lost between facade calls."""
        healed = 0
        for handle in self.handles:
            if not handle.alive():
                handle.heal()
                healed += 1
        return healed

    def kill(self, shard: int) -> None:
        self.handles[shard].kill()

    def close(self) -> None:
        for handle in self.handles:
            handle.shutdown()
        _reap(self.procs)


# ---------------------------------------------------------------- proxies


class ShardProxy:
    """The slice of the ``Database`` API the facade's inherited routed
    paths use, forwarded over the worker pipe one command per call."""

    def __init__(self, handle: _WorkerHandle) -> None:
        self._handle = handle
        self.num_data_pages = handle.info["num_data_pages"]

    def begin(self, txn_id=None):
        return self._handle.call("begin", txn_id)

    def grants_for(self, txn_id):
        return self._handle.call("grants_for", txn_id)

    def read_page(self, txn_id, page):
        return self._handle.call("read_page", txn_id, page)

    def write_page(self, txn_id, page, payload):
        return self._handle.call("write_page", txn_id, page, payload)

    def read_record(self, txn_id, page, slot):
        return self._handle.call("read_record", txn_id, page, slot)

    def update_record(self, txn_id, page, slot, data):
        return self._handle.call("update_record", txn_id, page, slot, data)

    def insert_record(self, txn_id, page, data):
        return self._handle.call("insert_record", txn_id, page, data)

    def delete_record(self, txn_id, page, slot):
        return self._handle.call("delete_record", txn_id, page, slot)

    def commit(self, txn_id):
        return self._handle.call("commit", txn_id)

    def abort(self, txn_id):
        return self._handle.call("abort", txn_id)

    def trim_log(self, archive_floor=None):
        return self._handle.call("trim", archive_floor)

    def crash(self):
        return self._handle.call("crash")

    def recover(self, fault_hook=None):
        if fault_hook is not None:
            raise ModelError(
                "worker-process shards cannot ship a fault_hook across "
                "the pipe; use the in-process ShardedDatabase for "
                "recovery fault injection")
        return self._handle.call("recover")

    def media_failure(self, disk_id):
        return self._handle.call("media_failure", disk_id)

    def media_recover(self, disk_id, on_lost_undo="raise"):
        return self._handle.call("media_recover", disk_id, on_lost_undo)

    def load_pages(self, payloads):
        return self._handle.call("load_pages", payloads)

    def format_record_pages(self, pages):
        return self._handle.call("format_pages", list(pages))

    def disk_page(self, page):
        return self._handle.call("disk_page", page)

    def committed_view(self, page):
        return self._handle.call("committed_view", page)

    def verify_parity(self):
        return self._handle.call("verify_parity")

    def snap(self) -> dict:
        return self._handle.call("snap")


# ---------------------------------------------------------------- facade views


class _WStatsView:
    """`_StatsView` shape over one scatter-gathered worker snapshot."""

    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner

    def _sum(self, *keys):
        snaps = self._owner._snaps()
        commit = self._owner._commit_stats
        own = {"reads": commit.reads, "writes": commit.writes,
               "log_transfers": commit.log_transfers}
        values = [sum(snap[key] for snap in snaps) + own[key]
                  for key in keys]
        return values[0] if len(values) == 1 else values

    @property
    def reads(self) -> int:
        return self._sum("reads")

    @property
    def writes(self) -> int:
        return self._sum("writes")

    @property
    def total(self) -> int:
        reads, writes = self._sum("reads", "writes")
        return reads + writes

    @property
    def log_transfers(self) -> int:
        return self._sum("log_transfers")

    def snapshot(self) -> TransferCounts:
        reads, writes = self._sum("reads", "writes")
        return TransferCounts(reads, writes)


class _WBufferStatsView:
    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner

    def _sum(self, *keys):
        snaps = self._owner._snaps()
        values = [sum(snap[key] for snap in snaps) for key in keys]
        return values[0] if len(values) == 1 else values

    hits = property(lambda self: self._sum("hits"))
    misses = property(lambda self: self._sum("misses"))
    evictions = property(lambda self: self._sum("evictions"))
    dirty_evictions = property(lambda self: self._sum("dirty_evictions"))
    steals = property(lambda self: self._sum("buffer_steals"))

    @property
    def references(self) -> int:
        hits, misses = self._sum("hits", "misses")
        return hits + misses

    @property
    def hit_ratio(self) -> float:
        hits, misses = self._sum("hits", "misses")
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)


class _WBufferFacade:
    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner
        self.stats = _WBufferStatsView(owner)

    def resident_pages(self) -> list:
        owner = self._owner
        results = owner.supervisor.scatter(range(owner.num_shards),
                                           "resident_pages")
        return sorted(local * owner.num_shards + i
                      for i, locals_ in sorted(results.items())
                      for local in locals_)

    def __contains__(self, page: int) -> bool:
        shard, local = self._owner._route(page)
        return self._owner.shards[shard]._handle.call("in_buffer", local)


class _WTxnView:
    """Live view of one global transaction across the workers."""

    def __init__(self, owner: "WorkerShardedDatabase", txn_id: int) -> None:
        self._owner = owner
        self.txn_id = txn_id

    def _flags(self) -> list:
        results = self._owner.supervisor.scatter(
            range(self._owner.num_shards), "txn_flags", (self.txn_id,))
        return [results[i] for i in sorted(results)]

    @property
    def must_commit(self) -> bool:
        return any(f["must_commit"] for f in self._flags())

    @property
    def is_active(self) -> bool:
        return self._owner.shards[0]._handle.call(
            "txn_flags", self.txn_id)["is_active"]

    @property
    def state(self):
        return self._owner.shards[0]._handle.call(
            "txn_flags", self.txn_id)["state"]

    @property
    def is_update_transaction(self) -> bool:
        return any(f["is_update"] for f in self._flags())


class _WTxnFacade:
    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner

    def get(self, txn_id: int) -> _WTxnView:
        # raise on unknown id, like the in-process facade (shard 0 is
        # canonical: every global txn registers on every shard)
        self._owner.shards[0]._handle.call("txn_flags", txn_id)
        return _WTxnView(self._owner, txn_id)

    def active_transactions(self) -> list:
        ids = self._owner.shards[0]._handle.call("active_txns")
        return [_WTxnView(self._owner, txn_id) for txn_id in ids]


class _WCountersView:
    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner

    def _sum(self, key: str) -> int:
        return sum(snap[key] for snap in self._owner._snaps())

    unlogged_steals = property(lambda self: self._sum("unlogged_steals"))
    logged_steals = property(lambda self: self._sum("logged_steals"))
    committed_writebacks = property(
        lambda self: self._sum("committed_writebacks"))
    before_images_logged = property(
        lambda self: self._sum("before_images_logged"))
    promotions = property(lambda self: self._sum("promotions"))

    @property
    def transactions_committed(self) -> int:
        return self._owner._snaps()[0]["transactions_committed"]

    @property
    def transactions_aborted(self) -> int:
        return self._owner._snaps()[0]["transactions_aborted"]

    @property
    def steals(self) -> int:
        snaps = self._owner._snaps()
        return sum(s["unlogged_steals"] + s["logged_steals"] for s in snaps)

    @property
    def unlogged_fraction(self) -> float:
        snaps = self._owner._snaps()
        unlogged = sum(s["unlogged_steals"] for s in snaps)
        logged = sum(s["logged_steals"] for s in snaps)
        if unlogged + logged == 0:
            return 0.0
        return unlogged / (unlogged + logged)


class _WCheckpointerFacade:
    """Scatter-gather ACC checkpoints: all workers fire concurrently."""

    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner

    def note_work(self, cost: float) -> None:
        self._owner.supervisor.scatter(range(self._owner.num_shards),
                                       "ckpt_note", (cost,))

    def maybe_checkpoint(self):
        results = self._owner.supervisor.scatter(
            range(self._owner.num_shards), "ckpt_maybe")
        fired = [lsn for _, lsn in sorted(results.items())
                 if lsn is not None]
        return fired or None

    def checkpoint(self) -> list:
        results = self._owner.supervisor.scatter(
            range(self._owner.num_shards), "ckpt_do")
        return [results[i] for i in sorted(results)]


class _RemoteRegistry:
    """`.snapshot()`-shaped handle on one worker's metrics registry."""

    def __init__(self, handle: _WorkerHandle) -> None:
        self._handle = handle

    def snapshot(self) -> dict:
        return self._handle.call("metrics_snapshot")


class WorkerInvariantCollector:
    """Facade-side view of the per-worker invariant engines.

    Duck-types the slice of :class:`~repro.check.invariants.
    InvariantEngine` the conformance and stress harnesses read
    (``violations``/``barrier_counts``/``clean``/``assert_clean``);
    state is pulled from the workers on access, concatenated in shard
    order (in-process children interleave into one shared list instead,
    so ordering — not membership — can differ on unclean runs).
    """

    def __init__(self, owner: "WorkerShardedDatabase") -> None:
        self._owner = owner

    def _state(self) -> list:
        results = self._owner.supervisor.scatter(
            range(self._owner.num_shards), "invariant_state")
        return [results[i] for i in sorted(results)]

    @property
    def violations(self) -> list:
        return [violation for violations, _ in self._state()
                for violation in violations]

    @property
    def barrier_counts(self) -> dict:
        counts: dict = {}
        for _, per_shard in self._state():
            for name, count in per_shard.items():
                counts[name] = counts.get(name, 0) + count
        return counts

    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        violations = self.violations
        if violations:
            raise AssertionError(
                f"{len(violations)} invariant violations, first: "
                f"{violations[0]}")


class _FacadeCoordinator(GroupCommitCoordinator):
    """The facade's coordinator: the single cross-shard barrier.

    Horizon counting and the global commit log's deferral stay here;
    the drain additionally broadcasts one ``gc_flush`` so every
    worker's local coordinator forces its pendings first (the same
    order the in-process coordinator uses: shard WALs before the
    commit log it appended after them)."""

    def __init__(self, flush_horizon: int = 1, metrics=None) -> None:
        super().__init__(flush_horizon=flush_horizon, metrics=metrics)
        self.supervisor: WorkerSupervisor | None = None

    def _drain(self) -> int:
        flushed = 0
        if self.supervisor is not None:
            flushed += self.supervisor.broadcast_flush()
        return flushed + super()._drain()


# ---------------------------------------------------------------- the facade


class WorkerShardedDatabase(ShardedDatabase):
    """`ShardedDatabase` semantics with one OS process per shard.

    Construction, cross-shard dispatch, and aggregation are replaced
    with scatter-gather over the worker supervisor; routing, history,
    and the crash/recover contracts are inherited unchanged.  Use as a
    context manager (or call :meth:`close`) to reap the workers; a GC
    finalizer backstops leaked instances.
    """

    def __init__(self, config: DBConfig, shards: int = 2,
                 flush_horizon: int = 1, tracer=None, metrics=None,
                 history=None) -> None:
        if shards < 1:
            raise ModelError("shards (K) must be at least 1")
        self.config = config
        self.num_shards = shards
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.history = history
        self.scheduler = ShardScheduler(shards)
        self.coordinator = _FacadeCoordinator(
            flush_horizon=flush_horizon, metrics=metrics)
        self._own_metrics = metrics

        per_shard = shard_config(config, shards)
        self.supervisor = WorkerSupervisor(
            per_shard, shards, tracer=self.tracer,
            coordinator=self.coordinator,
            with_metrics=metrics is not None)
        self.coordinator.supervisor = self.supervisor
        self.shards = [ShardProxy(handle)
                       for handle in self.supervisor.handles]
        self.metrics = (_ShardedMetrics(
            metrics, [_RemoteRegistry(h) for h in self.supervisor.handles])
            if metrics is not None else None)

        self._commit_stats = IOStats()
        self.commit_log = GroupCommitLog(
            name="gcommit", page_size=config.log_page_size,
            transfers_per_log_page=config.log_transfers_per_page,
            stats=self._commit_stats, metrics=metrics,
            coordinator=self.coordinator)

        self.stats = _WStatsView(self)
        self.buffer = _WBufferFacade(self)
        self.txns = _WTxnFacade(self)
        self.counters = _WCountersView(self)
        self.checkpointer = (
            _WCheckpointerFacade(self)
            if self.supervisor.handles[0].info["has_checkpointer"]
            else None)
        self._next_txn = 1
        self._finalizer = weakref.finalize(self, _reap, self.supervisor.procs)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._finalizer.alive:
            self.supervisor.close()
            self._finalizer.detach()

    def __enter__(self) -> "WorkerShardedDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def worker_deaths(self) -> int:
        """Worker processes lost and healed so far."""
        return self.supervisor.worker_deaths

    # -- helpers -------------------------------------------------------------

    def _snaps(self) -> list:
        """One statistics snapshot per shard, gathered in one scatter."""
        results = self.supervisor.scatter(range(self.num_shards), "snap")
        return [results[i] for i in sorted(results)]

    @property
    def disks_per_shard(self) -> int:
        return self.supervisor.handles[0].info["disks_per_shard"]

    # -- cross-shard operations (scatter-gather) -----------------------------

    def begin(self, txn_id: int | None = None) -> int:
        if txn_id is None:
            txn_id = self._next_txn
        self._next_txn = max(self._next_txn, txn_id + 1)
        self.supervisor.scatter(range(self.num_shards), "begin", (txn_id,))
        self._h("begin", txn=txn_id)
        return txn_id

    def grants_for(self, txn_id: int) -> bool:
        results = self.supervisor.scatter(range(self.num_shards),
                                          "grants_for", (txn_id,))
        return all(results.values())

    def commit(self, txn_id: int) -> None:
        """Commit on every shard inside one group-commit window.

        The scatter puts all K workers into commit processing
        concurrently; each worker's local coordinator absorbs its log
        forces, the facade appends + defers the global commit record,
        and the horizon flush later drains workers-then-commit-log."""
        with self.coordinator.deferred():
            self.supervisor.scatter(self.scheduler.order(), "commit",
                                    (txn_id,))
            self.commit_log.append(CommitRecord(txn_id=txn_id))
            self.commit_log.force()
        self.coordinator.note_commit()
        self._h("commit", txn=txn_id)

    def abort(self, txn_id: int) -> None:
        """Roll back on every shard — never deferred (the WAL rule):
        each worker forces its abort records before replying."""
        self.supervisor.scatter(self.scheduler.order(), "abort", (txn_id,))
        self._h("abort", txn=txn_id)

    def trim_log(self, archive_floor: int | None = None) -> int:
        self.coordinator.flush()
        results = self.supervisor.scatter(range(self.num_shards), "trim",
                                          (archive_floor,))
        return sum(results.values())

    def crash(self) -> None:
        """Lose main memory on every shard, coordinator drained first.

        Dead workers are healed (journal replay) *before* the drain, so
        the battery-backed-buffer contract covers commits acknowledged
        right up to a worker's death."""
        self.supervisor.heal_dead()
        self.tracer.emit("db.crash")
        self._h("crash")
        self.coordinator.flush()
        self.supervisor.scatter(range(self.num_shards), "crash")
        self.commit_log.crash()

    def recover(self, fault_hook=None) -> dict:
        """Parallel restart: every shard runs analysis/media-scan/redo/
        undo concurrently in its worker; the facade span still reads as
        one crash-to-ready MTTR interval."""
        if fault_hook is not None:
            raise ModelError(
                "worker-process shards cannot ship a fault_hook across "
                "the pipe; use the in-process ShardedDatabase for "
                "recovery fault injection")
        with self.tracer.span("recovery.restart", stats=self.stats,
                              log_split=True, shards=self.num_shards,
                              workers=True):
            self.commit_log.after_crash()
            global_winners = {r.txn_id
                              for r in self.commit_log.scan(CommitRecord)}
            results = self.supervisor.scatter(self.scheduler.order(),
                                              "recover")
            per_shard = sorted(results.items())

            winners: set = set(global_winners)
            losers: set = set()
            totals = dict.fromkeys(
                ("sectors_repaired", "parity_resynced",
                 "parity_undone_pages", "redo_applied", "log_undo_applied",
                 "page_transfers"), 0)
            for i, stats in per_shard:
                winners.update(stats["winners"])
                losers.update(stats["losers"])
                for key in totals:
                    totals[key] += stats[key]
                torn = global_winners.intersection(stats["losers"])
                if torn:
                    raise RecoveryError(
                        f"shard {i} lost globally committed transaction(s) "
                        f"{sorted(torn)}: the group-commit crash contract "
                        "was violated")
            self._h("restart")
        return {
            "winners": sorted(winners),
            "losers": sorted(losers - winners),
            **totals,
            "shards": {i: stats for i, stats in per_shard},
        }

    # -- conformance seams ---------------------------------------------------

    def attach_invariants(self, rules=None) -> WorkerInvariantCollector:
        """Wire an :class:`~repro.check.invariants.InvariantEngine` into
        every worker (``InvariantEngine.attach`` delegates here); rules
        cross the pipe by pickle, so they must be module-level classes."""
        self.supervisor.scatter(range(self.num_shards),
                                "attach_invariants", (rules,))
        collector = WorkerInvariantCollector(self)
        self.invariants = collector
        return collector

    def verify_remote(self) -> list:
        """`verify_database` delegate: each worker verifies its shard
        in-process; the facade checks the global commit log."""
        from .verify import _check_log
        results = self.supervisor.scatter(range(self.num_shards), "verify")
        problems = [f"shard {i}: {problem}"
                    for i in sorted(results)
                    for problem in results[i]]
        problems += _check_log(self.commit_log)
        return problems

    def check_restart_remote(self) -> list:
        """`check_restart` delegate: one-shot restart barrier per worker."""
        results = self.supervisor.scatter(range(self.num_shards),
                                          "check_restart")
        return [violation for i in sorted(results)
                for violation in results[i]]

    # -- monitoring ----------------------------------------------------------

    def statistics(self) -> dict:
        snaps = self._snaps()

        def total(key):
            return sum(snap[key] for snap in snaps)

        commit = self._commit_stats
        references = total("hits") + total("misses")
        return {
            "page_transfers": (total("reads") + total("writes")
                               + commit.reads + commit.writes),
            "reads": total("reads") + commit.reads,
            "writes": total("writes") + commit.writes,
            "buffer_hit_ratio": (total("hits") / references
                                 if references else 0.0),
            "buffer_steals": total("buffer_steals"),
            "unlogged_steals": total("unlogged_steals"),
            "logged_steals": total("logged_steals"),
            "before_images_logged": total("before_images_logged"),
            "promotions": total("promotions"),
            "transactions_committed": snaps[0]["transactions_committed"],
            "transactions_aborted": snaps[0]["transactions_aborted"],
            "active_transactions": snaps[0]["active_transactions"],
            "undo_log_bytes": total("undo_log_bytes"),
            "redo_log_bytes": total("redo_log_bytes"),
            "dirty_groups": total("dirty_groups"),
            "shards": self.num_shards,
            "flush_horizon": self.coordinator.flush_horizon,
            "commit_log_bytes": self.commit_log.size_bytes,
            "deferred_forces": self.coordinator.deferred_forces,
            "batched_flushes": self.coordinator.flushes,
            "workers": True,
            "worker_deaths": self.worker_deaths,
        }
