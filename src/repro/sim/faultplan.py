"""Exhaustive crash-point fault injection with torn-write and
media-error schedules.

The engine runs a scripted workload twice.  The *recording* pass hooks
every disk write and every log-page flush and assigns each a global
sequence index — the **schedule**.  The *sweep* then replays the same
script once per schedule entry ``k`` under a :class:`FaultPlan`:

* writes ``0..k-1`` land normally;
* write ``k`` is perturbed per the plan's ``mode``:

  - ``"clean"`` — lands intact (pure crash-point test);
  - ``"torn"`` — a data page stores half new / half old bytes, a log
    page has its tail mangled after the crash (partial sector write);
  - ``"latent"`` — a data page stores flipped bytes (media error);
    on a log page this behaves like ``"torn"``;

  either way the *intended* checksum is recorded, so the damage
  surfaces as a :class:`~repro.errors.LatentSectorError` (data) or a
  record CRC failure (log) during restart;
* write ``k+1`` raises :class:`CrashPointReached` — the simulated
  power cut.

After the cut the database crashes and restarts.  Every schedule must
end in one of:

* ``"recovered"`` — restart succeeds, :func:`~repro.db.verify.
  verify_database` is clean, and the surviving transactions match the
  committed-state oracle;
* ``"detected"`` — restart refuses with
  :class:`~repro.errors.UnrecoverableDataError`; only acceptable when
  the plan actually destroyed data (``torn``/``latent`` modes);
* ``"violation"`` — anything else: silent corruption, lost committed
  work, or resurrected uncommitted work.  These fail the sweep.

The committed-state oracle tracks, per replay, which commit operations
finished relative to the crash index: a commit whose writes all landed
intact **must** survive; one whose final write was the perturbed one or
that the cut interrupted **may** survive (e.g. a commit record durable
on one duplex copy only); any other transaction **must not** survive.
The expected page image is then derived from the transactions that
actually won, applied in script commit order.

Workload scripts are tuples: ``("begin", t)``, ``("write", t, page,
version)``, ``("update", t, page, version)`` (record mode: overwrite
slot 0), ``("commit", t)``, ``("abort", t)`` with opaque labels ``t``.
Scripts must be conflict-free (no two concurrently-active transactions
touching the same page), since the replay executes them on a single
thread and a lock wait would deadlock the script.  Record-mode scripts
pair with a ``setup`` callable (see :func:`record_fault_setup`) that
formats and seeds the touched pages before the injector attaches, so
seeding writes never enter the schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import NamedTuple

from ..db.verify import verify_database
from ..errors import ReproError, UnrecoverableDataError
from ..storage.page import PAGE_SIZE, ZERO_PAGE, make_page

MODES = ("clean", "torn", "latent")
"""Recognised perturbations of the crash-point write."""


class Violation(NamedTuple):
    """One invariant violation: a machine-matchable kind + detail."""

    kind: str
    detail: str

    def __str__(self) -> str:  # keeps old string-formatting call sites
        return f"{self.kind}: {self.detail}"


def violations_by_kind(violations) -> dict:
    """Count violations per ``kind`` (plain strings count as "other")."""
    counts: dict = {}
    for violation in violations:
        kind = violation.kind if isinstance(violation, Violation) else "other"
        counts[kind] = counts.get(kind, 0) + 1
    return counts


class CrashPointReached(ReproError):
    """The fault plan's crash point fired: the simulated power cut."""

    def __init__(self, index: int) -> None:
        self.index = index
        super().__init__(f"crash point reached at write index {index}")


@dataclass(frozen=True)
class WriteRecord:
    """One entry of the recorded I/O schedule."""

    index: int
    kind: str       # "data" (array disk write) or "log" (log page flush)
    device: int     # disk_id (>= 0) or log device_id (< 0)
    slot: int       # disk slot or log page index


@dataclass(frozen=True)
class FaultPlan:
    """Crash after the ``crash_after``-th write, perturbing that write."""

    crash_after: int
    mode: str = "clean"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")


def engines_of(db) -> list:
    """The single-engine databases behind ``db``: its shards for a
    :class:`~repro.db.sharded.ShardedDatabase`, else ``[db]``."""
    shards = getattr(db, "shards", None)
    return list(shards) if shards is not None else [db]


class FaultInjector:
    """Hooks one database's disks and log devices to a fault plan.

    With ``plan=None`` it records the write schedule; with a plan it
    replays, perturbing write ``crash_after`` and raising
    :class:`CrashPointReached` on the next one.

    Works on both single engines and sharded facades: shard disks share
    local ids 0..D-1, so the schedule records the shard-scoped alias
    ``shard * D + disk_id`` (a plain :class:`Database` keeps its raw
    ids), and the log list covers every shard's WAL plus the global
    commit log.
    """

    def __init__(self, db, plan: FaultPlan | None = None) -> None:
        self.db = db
        self.plan = plan
        self.position = 0
        self.schedule: list = []
        self.injected: WriteRecord | None = None
        self._damaged_log: list = []      # (LogDevice, page_index)
        self._engines = engines_of(db)
        self._disks = {}
        self._disk_list = []              # (alias, disk), attach order
        stride = max(len(e.array.disks) for e in self._engines)
        for shard, engine in enumerate(self._engines):
            for disk in engine.array.disks:
                alias = shard * stride + disk.disk_id
                self._disks[alias] = disk
                self._disk_list.append((alias, disk))
        self._log_devices = {}
        # raw log-device ids come from a process-global counter, so the
        # schedule records a stable per-database alias (-1, -2, ...)
        # instead — two recordings of the same workload then compare equal
        self._device_alias = {}
        for log in self._logs():
            for device in log._devices:
                self._log_devices[device.device_id] = device
                self._device_alias[device.device_id] = \
                    -(len(self._device_alias) + 1)

    def _logs(self):
        logs = []
        for engine in self._engines:
            logs.append(engine.undo_log)
            if engine.redo_log is not engine.undo_log:
                logs.append(engine.redo_log)
        commit_log = getattr(self.db, "commit_log", None)
        if commit_log is not None:
            logs.append(commit_log)
        return logs

    def attach(self) -> None:
        for alias, disk in self._disk_list:
            disk.fault_hook = self._disk_hook(alias)
        for device in self._log_devices.values():
            device.on_page_write = self._on_log_write

    def _disk_hook(self, alias: int):
        # per-disk closure: the disk reports its *local* id, the
        # schedule needs the shard-scoped alias
        return lambda disk_id, slot, payload: self._on_disk_write(
            alias, slot, payload)

    def detach(self) -> None:
        for _alias, disk in self._disk_list:
            disk.fault_hook = None
        for device in self._log_devices.values():
            device.on_page_write = None

    # -- hook bodies -------------------------------------------------------

    def _advance(self, record: WriteRecord) -> bool:
        """Count one write; True when it is the one to perturb."""
        if self.plan is None:
            self.schedule.append(record)
            self.position += 1
            return False
        if record.index > self.plan.crash_after:
            raise CrashPointReached(record.index)
        self.position += 1
        if record.index == self.plan.crash_after:
            self.injected = record
            return self.plan.mode != "clean"
        return False

    def _on_disk_write(self, disk_id: int, slot: int, payload: bytes):
        record = WriteRecord(self.position, "data", disk_id, slot)
        if not self._advance(record):
            return None
        if self.plan.mode == "torn":
            # the head of the sector is the new write, the tail is
            # whatever was there before the power cut
            old = self._disks[disk_id].peek(slot)
            return payload[:PAGE_SIZE // 2] + old[PAGE_SIZE // 2:]
        # latent: the write lands but the medium corrupts it
        return bytes([payload[0] ^ 0xFF]) + payload[1:]

    def _on_log_write(self, device_id: int, page_index: int) -> None:
        record = WriteRecord(self.position, "log",
                             self._device_alias[device_id], page_index)
        if self._advance(record):
            # the page flush is charged normally; the damage is applied
            # to the on-disk bytes after the crash (see apply_log_damage)
            self._damaged_log.append((self._log_devices[device_id],
                                      page_index))

    def apply_log_damage(self) -> int:
        """Mangle the tail of each marked log page (call after
        ``db.crash()``, which first truncates the unforced tail).
        Models a torn log-page write; record CRCs catch it at restart.
        Returns the number of pages damaged."""
        damaged = 0
        for device, page_index in self._damaged_log:
            start = page_index * device.page_size
            end = min(start + device.page_size, len(device._data))
            mid = start + (end - start) // 2
            if mid >= end:
                continue
            for offset in range(mid, end):
                device._data[offset] ^= 0xA5
            damaged += 1
        return damaged


# -- scripted workloads ----------------------------------------------------


def payload_for(label, page: int, version: int) -> bytes:
    """Deterministic page image for a script write."""
    return make_page(f"t{label}p{page}v{version}.")


RECORD_SEED = b"seed"
"""Slot-0 value :func:`record_fault_setup` installs on every page."""


def record_payload_for(label, page: int, version: int) -> bytes:
    """Deterministic slot-0 record value for a script update."""
    return f"t{label}p{page}v{version}".encode()


def default_fault_workload(transactions: int = 2, group_size: int = 4,
                           pages_per_txn: int = 2) -> list:
    """The acceptance workload: each transaction writes its own pages
    (one per parity group, so concurrent steals never share a group),
    rewrites its first page, and — except the first — also rewrites the
    *previous* transaction's first committed page, exercising
    cross-transaction overwrites in the oracle.  Every third
    transaction aborts instead of committing."""

    def page_of(t: int, j: int) -> int:
        return (t * pages_per_txn + j) * group_size

    ops: list = []
    for t in range(transactions):
        ops.append(("begin", t))
        for j in range(pages_per_txn):
            ops.append(("write", t, page_of(t, j), 1))
        ops.append(("write", t, page_of(t, 0), 2))
        if t > 0:
            ops.append(("write", t, page_of(t - 1, 0), 2 + t))
        if t % 3 == 2:
            ops.append(("abort", t))
        else:
            ops.append(("commit", t))
    return ops


def shard_aligned_fault_workload(shards: int, transactions: int = 4,
                                 group_size: int = 4,
                                 pages_per_txn: int = 2) -> list:
    """A fault-sweep script for a K-way sharded database.

    Transaction ``t`` writes only pages routing to shard ``t mod K``
    (global page ``shard + K * local``), one per parity group of that
    shard, and the cross-transaction overwrite targets transaction
    ``t - K`` — the previous owner of the *same* shard.  Keeping every
    transaction single-shard matters: the group-commit crash contract
    makes acknowledged commits atomic, but a commit *interrupted by the
    crash point* between shards may surface on some shards only, which
    a multi-shard transaction would report as a partial state — exactly
    the anomaly the sharded engine documents as out of scope.
    """

    def page_of(t: int, j: int) -> int:
        shard = t % shards
        local = (t // shards * pages_per_txn + j) * group_size
        return shard + shards * local

    ops: list = []
    for t in range(transactions):
        ops.append(("begin", t))
        for j in range(pages_per_txn):
            ops.append(("write", t, page_of(t, j), 1))
        ops.append(("write", t, page_of(t, 0), 2))
        if t >= shards:
            ops.append(("write", t, page_of(t - shards, 0), 2 + t))
        if t % 3 == 2:
            ops.append(("abort", t))
        else:
            ops.append(("commit", t))
    return ops


def record_fault_workload(transactions: int = 2, group_size: int = 4,
                          pages_per_txn: int = 2) -> list:
    """The record-mode acceptance workload: the same shape as
    :func:`default_fault_workload`, but every write is a slot-0
    ``update`` — exercising record logging (deferred before-entries,
    staged redo chains) instead of whole-page images.  Pair with
    :func:`record_fault_setup`."""

    def page_of(t: int, j: int) -> int:
        return (t * pages_per_txn + j) * group_size

    ops: list = []
    for t in range(transactions):
        ops.append(("begin", t))
        for j in range(pages_per_txn):
            ops.append(("update", t, page_of(t, j), 1))
        ops.append(("update", t, page_of(t, 0), 2))
        if t > 0:
            ops.append(("update", t, page_of(t - 1, 0), 2 + t))
        if t % 3 == 2:
            ops.append(("abort", t))
        else:
            ops.append(("commit", t))
    return ops


def record_fault_setup(ops):
    """Setup callable for a record-mode script: format every touched
    page and commit :data:`RECORD_SEED` into slot 0.  Under a REDO-only
    configuration the seeding commits one page per transaction (the
    write-behind gate holds uncommitted pages in the buffer)."""
    pages = workload_pages(ops)

    def setup(db) -> None:
        db.format_record_pages(pages)
        batches = ([[page] for page in pages]
                   if getattr(db.config, "redo_only", False) else [pages])
        for batch in batches:
            txn = db.begin()
            for page in batch:
                db.insert_record(txn, page, RECORD_SEED)
            db.commit(txn)

    return setup


def workload_pages(ops) -> list:
    """Sorted set of pages any script write touches."""
    return sorted({op[2] for op in ops if op[0] in ("write", "update")})


# -- plan execution --------------------------------------------------------


@dataclass
class PlanOutcome:
    """Result of one replayed schedule."""

    plan: FaultPlan
    outcome: str                    # "recovered" | "detected" | "violation"
    violations: list = field(default_factory=list)
    winners: list = field(default_factory=list)
    detail: str = ""
    # per-crash-point recovery profile: wall-clock MTTR plus the restart
    # statistics (sweep databases run untraced, so this is the stats-level
    # view; the span-level breakdown needs a traced run)
    recovery: dict = field(default_factory=dict)


def _execute(db, ops, txn_ids: dict, commit_spans: dict,
             position_of) -> None:
    """Run the script; ``commit_spans[label] = (start, end)`` records the
    global write indices each *completed* commit spanned."""
    for op in ops:
        name, label = op[0], op[1]
        if name == "begin":
            txn_ids[label] = db.begin()
        elif name == "write":
            db.write_page(txn_ids[label], op[2], payload_for(label, op[2],
                                                             op[3]))
        elif name == "update":
            db.update_record(txn_ids[label], op[2], 0,
                             record_payload_for(label, op[2], op[3]))
        elif name == "commit":
            start = position_of()
            # provisional (end=None) marks an in-flight commit: if the
            # crash interrupts it, the commit record may still be
            # durable on one duplex copy, so the oracle must allow
            # either outcome
            commit_spans[label] = (start, None)
            db.commit(txn_ids[label])
            commit_spans[label] = (start, position_of())
        elif name == "abort":
            db.abort(txn_ids[label])
        else:
            raise ValueError(f"unknown script op {name!r}")


def _oracle_sets(commit_spans: dict, plan: FaultPlan) -> tuple:
    """(must, may): labels that must / may survive the crash.

    A commit whose last write index is below the perturbed one landed
    entirely intact — it must survive.  A commit ending exactly on the
    perturbed write must survive under "clean" but only may under
    damage modes (the damaged sector could hold its commit record).
    Interrupted commits may survive (the record can be durable on one
    duplex copy); transactions that never reached commit must not.
    """
    must, may = set(), set()
    k = plan.crash_after
    for label, (start, end) in commit_spans.items():
        if end is None:
            may.add(label)          # interrupted mid-commit
        elif end <= k:
            must.add(label)
        elif end == k + 1:
            (must if plan.mode == "clean" else may).add(label)
        else:
            may.add(label)
    return must, may


def _expected_state(ops, winner_labels: set) -> dict:
    """Page image implied by the winning transactions, applied in
    script commit order."""
    expected = {page: ZERO_PAGE for page in workload_pages(ops)}
    writes: dict = {}               # label -> {page: payload}
    for op in ops:
        if op[0] == "write":
            writes.setdefault(op[1], {})[op[2]] = payload_for(op[1], op[2],
                                                              op[3])
        elif op[0] == "commit" and op[1] in winner_labels:
            expected.update(writes.get(op[1], {}))
    return expected


def _expected_records(ops, winner_labels: set) -> dict:
    """Slot-0 record value implied by the winning transactions, applied
    in script commit order (record-mode scripts)."""
    expected = {page: RECORD_SEED for page in workload_pages(ops)}
    writes: dict = {}               # label -> {page: value}
    for op in ops:
        if op[0] == "update":
            writes.setdefault(op[1], {})[op[2]] = record_payload_for(
                op[1], op[2], op[3])
        elif op[0] == "commit" and op[1] in winner_labels:
            expected.update(writes.get(op[1], {}))
    return expected


def run_plan(make_db, ops, plan: FaultPlan, setup=None) -> PlanOutcome:
    """Replay ``ops`` on a fresh database under ``plan``, crash, recover,
    and judge the outcome against the committed-state oracle.

    ``setup(db)``, if given, runs *before* the injector attaches
    (record-mode seeding: its writes stay out of the schedule)."""
    db = make_db()
    if setup is not None:
        setup(db)
    injector = FaultInjector(db, plan)
    injector.attach()
    txn_ids: dict = {}
    commit_spans: dict = {}
    try:
        try:
            _execute(db, ops, txn_ids, commit_spans,
                     lambda: injector.position)
        except CrashPointReached:
            pass
    finally:
        injector.detach()

    db.crash()
    injector.apply_log_damage()

    violations: list = []
    recover_t0 = perf_counter()
    try:
        stats = db.recover()
    except UnrecoverableDataError as error:
        if plan.mode == "clean":
            violations.append(Violation(
                "unrecoverable", f"clean crash refused recovery: {error}"))
            return PlanOutcome(plan, "violation", violations, [], str(error))
        return PlanOutcome(plan, "detected", [], [], str(error))
    except ReproError as error:
        violations.append(Violation(
            "recovery-error", f"{type(error).__name__}: {error}"))
        return PlanOutcome(plan, "violation", violations, [], str(error))
    recovery = {
        "mttr_ms": round((perf_counter() - recover_t0) * 1e3, 3),
        "winners": len(stats["winners"]),
        "losers": len(stats["losers"]),
        **{key: stats[key]
           for key in ("sectors_repaired", "parity_resynced",
                       "parity_undone_pages", "redo_applied",
                       "log_undo_applied", "page_transfers")
           if key in stats},
    }

    for problem in verify_database(db):
        violations.append(Violation("verify", problem))

    # every surviving restart also satisfies the online invariants
    # (lazy import: repro.check imports this module for Violation)
    from ..check.invariants import check_restart
    violations.extend(check_restart(db))

    label_of = {txn_id: label for label, txn_id in txn_ids.items()}
    winner_labels = {label_of[txn_id] for txn_id in stats["winners"]
                     if txn_id in label_of}
    must, may = _oracle_sets(commit_spans, plan)
    for label in sorted(must - winner_labels, key=repr):
        violations.append(Violation(
            "durability",
            f"transaction {label!r} committed before the crash point "
            "but did not survive recovery"))
    for label in sorted(winner_labels - must - may, key=repr):
        violations.append(Violation(
            "resurrection",
            f"transaction {label!r} never finished committing "
            "but survived recovery"))

    if any(op[0] == "update" for op in ops):
        from ..db.slotted_page import SlottedPage
        for page, value in _expected_records(ops, winner_labels).items():
            actual = SlottedPage.from_bytes(db.disk_page(page)).read(0)
            if actual != value:
                violations.append(Violation(
                    "state",
                    f"page {page} slot 0: on-disk record does not match "
                    f"the oracle (winners "
                    f"{sorted(winner_labels, key=repr)})"))
    else:
        for page, payload in _expected_state(ops, winner_labels).items():
            actual = db.disk_page(page)
            if actual != payload:
                violations.append(Violation(
                    "state",
                    f"page {page}: on-disk bytes do not match the oracle "
                    f"(winners {sorted(winner_labels, key=repr)})"))

    outcome = "violation" if violations else "recovered"
    return PlanOutcome(plan, outcome, violations,
                       sorted(winner_labels, key=repr), recovery=recovery)


# -- sweeps ----------------------------------------------------------------


@dataclass
class FaultSweepReport:
    """Summary of an exhaustive crash-point sweep."""

    schedule: list = field(default_factory=list)    # [WriteRecord]
    results: list = field(default_factory=list)     # [PlanOutcome]
    modes: tuple = MODES

    @property
    def counts(self) -> dict:
        out = {"recovered": 0, "detected": 0, "violation": 0}
        for result in self.results:
            out[result.outcome] = out.get(result.outcome, 0) + 1
        return out

    @property
    def violations(self) -> list:
        return [v for result in self.results for v in result.violations]

    def violations_by_kind(self) -> dict:
        return violations_by_kind(self.violations)

    @property
    def clean(self) -> bool:
        """True when every schedule recovered or detected its damage."""
        return not self.violations

    def recovery_summary(self) -> dict:
        """Aggregate MTTR/cost statistics over the runs that recovered."""
        profiles = [r.recovery for r in self.results if r.recovery]
        if not profiles:
            return {"recovered_runs": 0}
        mttrs = [p["mttr_ms"] for p in profiles]
        return {
            "recovered_runs": len(profiles),
            "mttr_ms": {
                "mean": round(sum(mttrs) / len(mttrs), 3),
                "max": round(max(mttrs), 3),
                "total": round(sum(mttrs), 3),
            },
            "page_transfers": sum(p.get("page_transfers", 0)
                                  for p in profiles),
            "sectors_repaired": sum(p.get("sectors_repaired", 0)
                                    for p in profiles),
            "parity_undone_pages": sum(p.get("parity_undone_pages", 0)
                                       for p in profiles),
            "redo_applied": sum(p.get("redo_applied", 0) for p in profiles),
            "log_undo_applied": sum(p.get("log_undo_applied", 0)
                                    for p in profiles),
        }

    def to_dict(self) -> dict:
        return {
            "write_count": len(self.schedule),
            "modes": list(self.modes),
            "schedule": [{"index": w.index, "kind": w.kind,
                          "device": w.device, "slot": w.slot}
                         for w in self.schedule],
            "counts": self.counts,
            "clean": self.clean,
            "violations_by_kind": self.violations_by_kind(),
            "recovery": self.recovery_summary(),
            "runs": [{
                "crash_after": r.plan.crash_after,
                "mode": r.plan.mode,
                "outcome": r.outcome,
                "winners": [repr(w) for w in r.winners],
                "detail": r.detail,
                "violations": [{"kind": v.kind, "detail": v.detail}
                               for v in r.violations],
                "recovery": r.recovery,
            } for r in self.results],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def record_schedule(make_db, ops, setup=None) -> list:
    """Run the script once without faults; returns its write schedule."""
    db = make_db()
    if setup is not None:
        setup(db)
    injector = FaultInjector(db, plan=None)
    injector.attach()
    try:
        _execute(db, ops, {}, {}, lambda: injector.position)
    finally:
        injector.detach()
    return injector.schedule


def run_sweep(make_db, ops, modes=MODES, tracer=None,
              setup=None) -> FaultSweepReport:
    """Enumerate every crash point of the script under every mode.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) receives one
    ``faultplan.crash_point`` event per schedule run.  ``setup(db)``
    runs on every fresh database before its injector attaches.
    """
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown fault mode {mode!r}")
    schedule = record_schedule(make_db, ops, setup=setup)
    report = FaultSweepReport(schedule=schedule, modes=tuple(modes))
    for entry in schedule:
        for mode in modes:
            result = run_plan(make_db, ops, FaultPlan(entry.index, mode),
                              setup=setup)
            report.results.append(result)
            if tracer is not None and tracer.enabled:
                tracer.emit("faultplan.crash_point",
                            index=entry.index, kind=entry.kind,
                            device=entry.device, slot=entry.slot,
                            mode=mode, outcome=result.outcome,
                            violations=len(result.violations),
                            mttr_ms=result.recovery.get("mttr_ms"))
    return report
