"""Tests for log record serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LogCorruptionError
from repro.wal.records import (AbortRecord, BOTRecord, CheckpointRecord,
                               CommitRecord, PageAfterImage, PageBeforeImage,
                               PageRedoEntry, RecordAfterEntry,
                               RecordBeforeEntry, RecordRedoEntry, RecordType,
                               deserialize)

simple_records = st.one_of(
    st.builds(BOTRecord, txn_id=st.integers(1, 1000)),
    st.builds(CommitRecord, txn_id=st.integers(1, 1000)),
    st.builds(AbortRecord, txn_id=st.integers(1, 1000)),
)
page_records = st.one_of(
    st.builds(PageBeforeImage, txn_id=st.integers(1, 1000),
              page_id=st.integers(0, 10_000), image=st.binary(max_size=64)),
    st.builds(PageAfterImage, txn_id=st.integers(1, 1000),
              page_id=st.integers(0, 10_000), image=st.binary(max_size=64)),
)
record_records = st.one_of(
    st.builds(RecordBeforeEntry, txn_id=st.integers(1, 1000),
              page_id=st.integers(0, 10_000), slot=st.integers(0, 100),
              image=st.binary(max_size=64)),
    st.builds(RecordAfterEntry, txn_id=st.integers(1, 1000),
              page_id=st.integers(0, 10_000), slot=st.integers(0, 100),
              image=st.binary(max_size=64)),
)
checkpoint_records = st.builds(
    CheckpointRecord, txn_id=st.just(0),
    active_txns=st.tuples(st.integers(1, 99)),
    flushed_pages=st.tuples(st.integers(0, 99)),
)
any_record = st.one_of(simple_records, page_records, record_records,
                       checkpoint_records)


class TestRoundTrip:
    @given(any_record)
    def test_serialize_deserialize(self, record):
        record.lsn = 7
        record.prev_lsn = 3
        blob = record.serialize()
        parsed, offset = deserialize(blob)
        assert offset == len(blob)
        assert parsed == record
        assert type(parsed) is type(record)

    @given(st.lists(any_record, min_size=1, max_size=6))
    def test_concatenated_stream(self, records):
        blob = b""
        for lsn, record in enumerate(records, start=1):
            record.lsn = lsn
            blob += record.serialize()
        offset, parsed = 0, []
        while offset < len(blob):
            record, offset = deserialize(blob, offset)
            parsed.append(record)
        assert parsed == records

    @given(any_record)
    def test_serialized_size_matches(self, record):
        assert record.serialized_size == len(record.serialize())


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(LogCorruptionError):
            deserialize(b"\x01\x02")

    def test_truncated_payload(self):
        blob = PageBeforeImage(txn_id=1, page_id=2, image=b"abcdef").serialize()
        with pytest.raises(LogCorruptionError):
            deserialize(blob[:-2])

    def test_unknown_type(self):
        blob = bytearray(BOTRecord(txn_id=1).serialize())
        blob[0] = 0xEE
        with pytest.raises(LogCorruptionError):
            deserialize(bytes(blob))


class TestSemantics:
    def test_record_types_distinct(self):
        seen = {cls.record_type for cls in
                (BOTRecord, CommitRecord, AbortRecord, PageBeforeImage,
                 PageAfterImage, RecordBeforeEntry, RecordAfterEntry,
                 CheckpointRecord, PageRedoEntry, RecordRedoEntry)}
        assert len(seen) == 10
        assert seen == set(RecordType)

    def test_bot_is_small(self):
        """BOT/EOT records are tiny (the model's l_bc = 16 bytes)."""
        assert BOTRecord(txn_id=1).serialized_size <= 40

    def test_page_image_dominated_by_payload(self):
        image = bytes(512)
        record = PageBeforeImage(txn_id=1, page_id=0, image=image)
        assert record.serialized_size < 512 + 60
