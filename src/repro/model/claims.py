"""The paper's claims, as a machine-checkable registry.

EXPERIMENTS.md narrates the reproduction; this module *executes* it:
every quantitative claim the paper makes in prose is encoded as a
:class:`Claim` with an evaluator, so `check_all_claims()` regenerates
the full scorecard in one call (and `benchmarks/bench_claims.py` gates
on it).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import figures, page_logging, record_logging
from .params import high_retrieval, high_update
from .reliability import PAPER_DISK_MTTF_HOURS, farm_mttf


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper.

    Attributes:
        claim_id: short handle (used in reports).
        source: where the paper states it.
        statement: the claim, paraphrased.
        measured: value produced by this reproduction.
        target: the paper's value (None for ordering claims).
        holds: whether the reproduction satisfies it.
    """

    claim_id: str
    source: str
    statement: str
    measured: float
    target: float | None
    holds: bool


def _gain(model, env, C: float) -> float:
    base = model(env(C=C), rda=False).throughput
    rda = model(env(C=C), rda=True).throughput
    return rda / base - 1.0


def check_all_claims() -> list:
    """Evaluate every registered claim; returns :class:`Claim` objects."""
    claims = []

    gain9 = _gain(page_logging.force_toc, high_update, 0.9)
    claims.append(Claim(
        "fig9-gain", "§5.2.1 / Figure 9",
        "RDA improves page FORCE/TOC throughput ≈42% at C=0.9 (high update)",
        round(gain9, 4), 0.42, abs(gain9 - 0.42) <= 0.05))

    low9 = page_logging.force_toc(high_update(C=0.0), rda=False).throughput
    high9 = page_logging.force_toc(high_update(C=0.9), rda=True).throughput
    claims.append(Claim(
        "fig9-axis-low", "Figure 9 axis",
        "high-update ¬RDA throughput ≈48 800 at C=0",
        round(low9), 48800, abs(low9 - 48800) / 48800 <= 0.10))
    claims.append(Claim(
        "fig9-axis-high", "Figure 9 axis",
        "high-update RDA throughput ≈77 300 at C=0.9",
        round(high9), 77300, abs(high9 - 77300) / 77300 <= 0.10))

    gain_ret = _gain(page_logging.force_toc, high_retrieval, 0.9)
    claims.append(Claim(
        "fig9-retrieval-smaller", "§5.2.1",
        "high-retrieval benefit smaller than high-update",
        round(gain_ret, 4), None, gain_ret < gain9))

    force_rda = page_logging.force_toc(high_update(C=0.9), rda=True).throughput
    noforce = page_logging.noforce_acc(high_update(C=0.9), rda=False).throughput
    noforce_rda = page_logging.noforce_acc(high_update(C=0.9),
                                           rda=True).throughput
    force = page_logging.force_toc(high_update(C=0.9), rda=False).throughput
    claims.append(Claim(
        "fig10-acc-beats-toc", "§5.2.2 / Figure 10",
        "¬FORCE/ACC outperforms FORCE/TOC without RDA",
        round(noforce / force, 3), None, noforce > force))
    claims.append(Claim(
        "fig10-reversal", "§5.2.2 and conclusions",
        "with RDA, FORCE/TOC performs best under page logging",
        round(force_rda / max(noforce, noforce_rda), 3), None,
        force_rda > noforce and force_rda > noforce_rda))

    low11 = record_logging.force_toc(high_update(C=0.0), rda=False).throughput
    high11 = record_logging.force_toc(high_update(C=0.9), rda=True).throughput
    claims.append(Claim(
        "fig11-axis", "Figure 11 axis",
        "record FORCE/TOC spans ≈150 600..215 900 (high update)",
        round(high11), 215900,
        abs(low11 - 150600) / 150600 <= 0.10
        and abs(high11 - 215900) / 215900 <= 0.10))

    gain12 = _gain(record_logging.noforce_acc, high_update, 0.9)
    claims.append(Claim(
        "fig12-gain", "§5.3.2 / Figure 12",
        "record ¬FORCE/ACC gains ≈14% from RDA at C=0.9",
        round(gain12, 4), 0.14, abs(gain12 - 0.14) <= 0.04))

    rec_noforce = record_logging.noforce_acc(high_update(C=0.9),
                                             rda=False).throughput
    rec_force_rda = record_logging.force_toc(high_update(C=0.9),
                                             rda=True).throughput
    claims.append(Claim(
        "fig12-no-crossover", "conclusions",
        "under record logging ¬FORCE/ACC keeps its lead even vs FORCE+RDA",
        round(rec_noforce / rec_force_rda, 3), None,
        rec_noforce > rec_force_rda))

    series = figures.figure13(sweep=(5, 45)).curves["% increase"]
    claims.append(Claim(
        "fig13-low", "Figure 13 axis",
        "RDA benefit ≈6% at s=5 (record ¬FORCE/ACC, C=0.9)",
        round(series[0], 2), 6.0, abs(series[0] - 6.0) <= 2.0))
    claims.append(Claim(
        "fig13-high", "Figure 13 axis",
        "RDA benefit ≈70% at s=45",
        round(series[1], 2), 70.0, abs(series[1] - 70.0) <= 6.0))

    days = farm_mttf(PAPER_DISK_MTTF_HOURS, 200) / 24.0
    claims.append(Claim(
        "intro-25-days", "§1 + footnote 1",
        "a large farm sees media failure in under 25 days at 30,000 h MTTF",
        round(days, 2), 25.0, days < 25.0))

    claims.append(Claim(
        "storage-overhead", "§6",
        "RDA's extra storage ≈ (100/N)% of the database",
        round(100.0 / high_update().N, 1), 10.0, True))

    return claims


def format_scorecard(claims=None) -> str:
    """Plain-text scorecard of every claim."""
    claims = claims if claims is not None else check_all_claims()
    lines = [f"{'claim':>22} | {'ok':>4} | {'measured':>10} | {'paper':>8} "
             f"| statement"]
    for claim in claims:
        target = "-" if claim.target is None else f"{claim.target:g}"
        lines.append(f"{claim.claim_id:>22} | {'PASS' if claim.holds else 'FAIL':>4} "
                     f"| {claim.measured:10g} | {target:>8} | {claim.statement}")
    passed = sum(c.holds for c in claims)
    lines.append(f"{passed}/{len(claims)} claims reproduced")
    return "\n".join(lines)
