"""The database facade: the paper's eight recovery configurations, live.

A :class:`Database` wires together a storage backend (constructed via
the :mod:`repro.storage.backend` registry from ``DBConfig.backend``),
the buffer pool, the lock and transaction managers, the duplexed
log(s), the RDA manager, and the recovery manager.  All configuration
branching lives in the composed :class:`~repro.db.policy.
RecoveryPolicy`; the facade just routes.  The axes:

* **page logging / record logging** — what the log carries and the lock
  granularity (page locks vs record locks);
* **FORCE + TOC / ¬FORCE + ACC** — whether commit flushes the
  transaction's pages (TOC needs no checkpoints) or leaves them dirty
  (ACC checkpoints + REDO at restart);
* **RDA / ¬RDA** — whether steals of uncommitted pages are protected by
  the parity twins (no UNDO logging when the Figure 3 rule allows) or by
  classical before-image logging.

The write-back hook (:meth:`Database._writeback`) is the paper's
decision point: every steal either rides the parity twins or pays for a
durable before-image first (the WAL rule is enforced in
:meth:`~repro.db.policy.RecoveryPolicy.writeback`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..buffer import BufferPool
from ..errors import TransactionError
from ..obs.tracer import NULL_TRACER
from ..storage import IOStats, create_backend
from ..storage.kernels import active_tier, available_tiers
from ..storage.page import PAGE_SIZE, ZERO_PAGE
from ..txn import LockManager, LockMode, TransactionManager, TxnState
from ..wal import BOTRecord, CommitRecord, LogManager, PageBeforeImage
from .config import DBConfig
from .policy import RecoveryPolicy
from .recovery import RecoveryManager
from .slotted_page import SlottedPage


class LockWait(TransactionError):
    """The operation must wait for a lock (re-issue it after the grant).

    Raised instead of blocking: no engine ever blocks in place — a
    driver (the :mod:`repro.sim` shard scheduler, which multiplexes
    transactions over one or more shard engines round-robin) suspends
    the transaction and retries the operation when
    :meth:`Database.grants_for` reports the grant.
    """

    def __init__(self, txn_id: int, resource) -> None:
        self.txn_id = txn_id
        self.resource = resource
        super().__init__(f"transaction {txn_id} must wait for {resource!r}")

    def __reduce__(self):
        # survive the worker-protocol pickle round trip with both
        # attributes intact (the driver reads .txn_id/.resource)
        return (LockWait, (self.txn_id, self.resource))


@dataclass
class WriteCounters:
    """Empirical counters behind the model's probabilities.

    ``unlogged_steals / (unlogged_steals + logged_steals)`` is the
    measured complement of the logging probability ``p_l`` (Eq. 5).
    """

    unlogged_steals: int = 0
    logged_steals: int = 0
    committed_writebacks: int = 0
    before_images_logged: int = 0
    promotions: int = 0
    transactions_committed: int = 0
    transactions_aborted: int = 0

    @property
    def steals(self) -> int:
        """All write-backs of uncommitted pages."""
        return self.unlogged_steals + self.logged_steals

    @property
    def unlogged_fraction(self) -> float:
        """Measured 1 - p_l."""
        if self.steals == 0:
            return 0.0
        return self.unlogged_steals / self.steals


class Database:
    """A recoverable page/record store over a redundant disk array.

    Args:
        config: the recovery configuration (one of the paper's eight).
        tracer: optional :class:`~repro.obs.tracer.Tracer`; shared by
            every component so a single trace interleaves storage,
            buffer, transaction, and recovery events.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            shared likewise.
    """

    def __init__(self, config: DBConfig, tracer=None, metrics=None,
                 history=None, log_factory=None) -> None:
        self.config = config
        self.policy = RecoveryPolicy.for_config(config)
        self.stats = IOStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.history = history      # optional check.HistoryRecorder
        self.invariants = None      # optional check.InvariantEngine
        self.array = create_backend(config, stats=self.stats,
                                    tracer=self.tracer, metrics=metrics)
        self.rda = self.policy.protection.make_rda(self)
        self.buffer = BufferPool(config.buffer_capacity, self._fetch,
                                 self._writeback, policy=config.replacement,
                                 steal=config.steal, tracer=self.tracer,
                                 metrics=metrics)
        self.locks = LockManager()
        self.txns = TransactionManager(tracer=self.tracer, stats=self.stats,
                                       metrics=metrics)
        if log_factory is None:
            log_factory = self._default_log_factory
        self.undo_log, self.redo_log, self.checkpointer = \
            self.policy.discipline.build_logs(self, log_factory)
        self.recovery = RecoveryManager(self)
        self.counters = WriteCounters()

        # batched hot path: commit-window write-back runs vectorized
        # through one parity-kernel call per window (semantics and disk
        # schedule identical to the per-page loop; see
        # RecoveryPolicy.writeback_batch and docs/performance.md)
        self.batched = (config.batched
                        and os.environ.get("REPRO_HOTPATH", "") != "legacy")
        if self.batched:
            self.buffer.set_batch_writeback(self._writeback_batch)
        self._m_steals_unlogged = (
            metrics.counter("db.steals").labels(mode="unlogged")
            if metrics is not None else None)
        self._slotted_cache: dict = {}   # page -> (buffered bytes, SlottedPage)
        if self.tracer.enabled:
            self.tracer.emit("kernel.tier", tier=active_tier(),
                             available=list(available_tiers()),
                             batched=self.batched)

        # per-transaction bookkeeping (all lost in a crash)
        self._before_images: dict = {}   # (txn, page) -> pre-txn page bytes
        self._undo_logged: set = set()   # (txn, page) with before-image in log
        self._logged_stolen: set = set()  # (txn, page) stolen WITH logging
        self._last_stolen: dict = {}     # (txn, page) -> last on-disk payload
        self._pending_undo: dict = {}    # txn -> [RecordBeforeEntry] (RDA defer)
        self._pending_redo: dict = {}    # txn -> [RecordRedoEntry] (REDO-only)
        self._bot_written: set = set()
        self._bot_lsns: dict = {}        # txn -> BOT record LSN (for trim_log)
        self._residue: set = set()       # pages with committed-unflushed data

        # REDO-only class: the stand-in for each page's on-disk header
        # LSN — page -> highest chain LSN known reflected on disk.  It
        # deliberately survives crash() (it models durable state) and is
        # advanced only by _write_committed.
        self._durable_page_lsn: dict = {}
        if self.policy.redo_only:
            self.buffer.set_writeback_filter(
                lambda page, frame: self.policy.may_writeback(self, page,
                                                              frame))

    # -- construction helpers --------------------------------------------------------

    @staticmethod
    def _default_log_factory(db: "Database", name: str) -> LogManager:
        """Build one duplexed log charged against the engine's stats.

        The ``log_factory`` constructor argument overrides this — the
        seam :class:`~repro.db.sharded.ShardedDatabase` uses to hand its
        shards group-commit-aware logs.  A factory is called as
        ``factory(db, name)`` while ``db`` is mid-construction (config,
        stats, tracer, and metrics are already set).
        """
        return LogManager(name=name, page_size=db.config.log_page_size,
                          transfers_per_log_page=db.config.
                          log_transfers_per_page,
                          stats=db.stats, metrics=db.metrics)

    @property
    def num_data_pages(self) -> int:
        """S: logical pages in the database."""
        return self.array.num_data_pages

    def load_pages(self, payloads: dict) -> None:
        """Bulk-load initial contents (full-stripe writes, outside any
        transaction).  Missing pages stay zero."""
        geometry = self.array.geometry
        for group in range(geometry.num_groups):
            pages = geometry.group_pages(group)
            images = [payloads.get(p, ZERO_PAGE) for p in pages]
            if all(image == ZERO_PAGE for image in images):
                continue
            self.array.full_stripe_write(group, images)

    def format_record_pages(self, pages) -> None:
        """Initialize the given pages as empty slotted pages."""
        empty = SlottedPage.empty().to_bytes()
        self.load_pages({page: empty for page in pages})

    # -- conformance seams (see repro.check) --------------------------------------------

    def _h(self, op: str, **attrs) -> None:
        """Record one logical operation in the attached history (and
        mirror it onto the trace, so a JSONL trace doubles as the
        history transport)."""
        if self.history is None:
            return
        event = self.history.record(op, **attrs)
        if self.tracer.enabled:
            row = event.to_dict()
            del row["op"]
            self.tracer.emit("history." + op, **row)

    def _barrier(self, name: str, **ctx) -> None:
        if self.invariants is not None:
            self.invariants.barrier(name, **ctx)

    def _on_checkpoint(self, lsn: int) -> None:
        self._h("checkpoint", lsn=lsn)
        self._barrier("checkpoint", lsn=lsn)

    # -- buffer hooks -------------------------------------------------------------------

    def _fetch(self, page: int) -> bytes:
        return self.array.read_page(page)

    def _writeback(self, page: int, payload: bytes, modifiers: frozenset) -> None:
        """The decision point: steal via parity twins or via the log
        (the tree itself lives in :meth:`RecoveryPolicy.writeback`)."""
        self.policy.writeback(self, page, payload, modifiers)

    def _writeback_batch(self, entries: list) -> None:
        """Batched decision point: one commit window of dirty frames
        (see :meth:`RecoveryPolicy.writeback_batch`)."""
        self.policy.writeback_batch(self, entries)

    def _old_disk_version(self, txn_id, page: int):
        """The page's current on-disk bytes, if this transaction knows
        them (first steal: the captured before-image; re-steal: what it
        wrote last time).  Saves one read in the small-write protocol —
        the model's ``a = 3`` case."""
        if txn_id is None:
            return None
        key = (txn_id, page)
        if key in self._last_stolen:
            return self._last_stolen[key]
        before = self._before_images.get(key)
        if before is not None and page not in self._residue \
                and key not in self._logged_stolen:
            return before
        return None

    def _ensure_undo_durable(self, page: int, modifiers) -> None:
        """Append (if deferred) and force the undo information covering
        every uncommitted modifier of this page."""
        appended = False
        for txn_id in sorted(modifiers):
            if self.policy.logging.append_steal_undo(self, txn_id, page):
                appended = True
        if appended or self.undo_log.forced_lsn < self.undo_log.last_lsn:
            self.undo_log.force()

    def _write_committed(self, page: int, payload: bytes,
                         old_data=None) -> None:
        """Parity-tracking write of committed (or log-protected) data."""
        self.policy.protection.write_committed(self, page, payload,
                                               old_data=old_data)
        if self.policy.redo_only:
            # the page image now reflects its whole chain (chained
            # records exist only for committed transactions, and every
            # committed change is in the written frame)
            self._durable_page_lsn[page] = self.redo_log.page_chain_head(page)

    def _append_and_force_redo(self, record) -> int:
        lsn = self.redo_log.append(record)
        self.redo_log.force()
        return lsn

    # -- locking ------------------------------------------------------------------------------

    def _lock(self, txn_id: int, resource, mode: LockMode) -> None:
        if not self.locks.acquire(txn_id, resource, mode):
            raise LockWait(txn_id, resource)

    def grants_for(self, txn_id: int) -> bool:
        """True when the transaction holds no pending waits (safe to
        retry the last operation)."""
        return not self.locks.waiting(txn_id)

    # -- transaction API -----------------------------------------------------------------------

    def begin(self, txn_id: int | None = None) -> int:
        """Start a transaction; returns its id.

        ``txn_id`` pins a caller-assigned id — the sharded engine uses
        this so a global transaction carries one id across every shard
        it touches.
        """
        txn_id = self.txns.begin(txn_id=txn_id).txn_id
        self._h("begin", txn=txn_id)
        return txn_id

    def _ensure_bot(self, txn_id: int) -> None:
        if txn_id not in self._bot_written:
            lsn = self.undo_log.append(BOTRecord(txn_id=txn_id))
            self._bot_written.add(txn_id)
            self._bot_lsns[txn_id] = lsn

    def read_page(self, txn_id: int, page: int) -> bytes:
        """Read a full page under a shared page lock."""
        txn = self.txns.require_active(txn_id)
        self._lock(txn_id, ("page", page), LockMode.SHARED)
        payload = self.buffer.get_page(page)
        txn.note_read(page)
        self._h("read", txn=txn_id, page=page)
        return payload

    def write_page(self, txn_id: int, page: int, payload: bytes) -> None:
        """Replace a full page under an exclusive page lock (page-logging
        mode only)."""
        if self.config.record_logging:
            raise TransactionError(
                "write_page is for page-logging mode; use record operations")
        if len(payload) != PAGE_SIZE:
            raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
        txn = self.txns.require_active(txn_id)
        self._lock(txn_id, ("page", page), LockMode.EXCLUSIVE)
        self._ensure_bot(txn_id)
        current = self.buffer.get_page(page)
        key = (txn_id, page)
        if key not in self._before_images:
            self._before_images[key] = current
            if self.policy.log_page_undo_at_first_write:
                # classical WAL: before-image logged at first modification
                self.undo_log.append(PageBeforeImage(
                    txn_id=txn_id, page_id=page, image=current))
                self._undo_logged.add(key)
                self.counters.before_images_logged += 1
        self.buffer.put_page(page, payload, txn_id)
        txn.note_write(page)
        self._h("write", txn=txn_id, page=page)

    # -- record API (record-logging mode) ------------------------------------------------------------

    def _slotted(self, page: int) -> SlottedPage:
        payload = self.buffer.get_page(page)
        cached = self._slotted_cache.get(page)
        if cached is not None and cached[0] is payload:
            return cached[1]
        sp = SlottedPage.from_bytes(payload)
        self._slotted_cache[page] = (payload, sp)
        return sp

    def _require_record_mode(self) -> None:
        if not self.config.record_logging:
            raise TransactionError(
                "record operations need record-logging mode")

    def read_record(self, txn_id: int, page: int, slot: int) -> bytes:
        """Read one record under a shared record lock."""
        self._require_record_mode()
        txn = self.txns.require_active(txn_id)
        self._lock(txn_id, ("rec", page, slot), LockMode.SHARED)
        txn.note_read(page)
        self._h("read", txn=txn_id, page=page, slot=slot)
        return self._slotted(page).read(slot)

    def _record_modify(self, txn_id: int, page: int, slot: int,
                       before: bytes, after: bytes, mutate) -> None:
        """Shared tail of update/insert/delete: log, mutate, buffer."""
        txn = self.txns.require_active(txn_id)
        self._ensure_bot(txn_id)
        self.policy.protection.maybe_promote(self, page, txn_id)
        self.policy.logging.note_record_modify(self, txn_id, page, slot,
                                               before, after)
        sp = self._slotted(page)
        # drop the cache entry across the mutation: if ``mutate`` raises
        # half-way, the buffered bytes are unchanged but ``sp`` is not —
        # the identity check alone would serve the poisoned parse
        self._slotted_cache.pop(page, None)
        mutate(sp)
        data = sp.to_bytes()
        self.buffer.put_page(page, data, txn_id)
        self._slotted_cache[page] = (data, sp)
        txn.note_record_write(page, slot)
        self._h("write", txn=txn_id, page=page, slot=slot)

    def update_record(self, txn_id: int, page: int, slot: int,
                      data: bytes) -> None:
        """Overwrite one record under an exclusive record lock."""
        self._require_record_mode()
        self.txns.require_active(txn_id)
        self._lock(txn_id, ("rec", page, slot), LockMode.EXCLUSIVE)
        before = self._slotted(page).read(slot)
        self._record_modify(txn_id, page, slot, before, data,
                            lambda sp: sp.update(slot, data))

    def insert_record(self, txn_id: int, page: int, data: bytes) -> int:
        """Insert a record; returns its slot.  Takes an exclusive *page*
        lock (structure modification)."""
        self._require_record_mode()
        self.txns.require_active(txn_id)
        self._lock(txn_id, ("page", page), LockMode.EXCLUSIVE)
        sp = self._slotted(page)
        probe = SlottedPage.from_bytes(sp.to_bytes())
        slot = probe.insert(data)       # find the slot without mutating
        self._lock(txn_id, ("rec", page, slot), LockMode.EXCLUSIVE)
        self._record_modify(txn_id, page, slot, b"", data,
                            lambda target: target.insert(data))
        return slot

    def delete_record(self, txn_id: int, page: int, slot: int) -> bytes:
        """Delete a record under an exclusive record lock; returns the
        removed bytes."""
        self._require_record_mode()
        self.txns.require_active(txn_id)
        self._lock(txn_id, ("rec", page, slot), LockMode.EXCLUSIVE)
        before = self._slotted(page).read(slot)
        self._record_modify(txn_id, page, slot, before, b"",
                            lambda sp: sp.delete(slot))
        return before

    # -- EOT -------------------------------------------------------------------------------------------

    def commit(self, txn_id: int) -> None:
        """Commit: force pages (FORCE) or just the log (¬FORCE), write
        the EOT record, release locks."""
        txn = self.txns.require_active(txn_id)
        if txn.is_update_transaction:
            self._ensure_bot(txn_id)
            self.policy.discipline.flush_at_commit(self, txn_id)
            self.policy.logging.append_commit_images(self, txn)
            self.redo_log.append(CommitRecord(txn_id=txn_id))
            self.undo_log.force()
            self.redo_log.force()
            for group in self.policy.protection.commit_flips(self, txn_id):
                self._h("flip", txn=txn_id, group=group)
            self.buffer.clear_modifier(txn_id)
            self.policy.discipline.note_commit_residue(self, txn)
        self.locks.release_all(txn_id)
        self.txns.finish(txn_id, TxnState.COMMITTED)
        self._forget(txn_id)
        self.counters.transactions_committed += 1
        self._h("commit", txn=txn_id)
        self._barrier("commit", txn=txn_id)

    def _after_image(self, txn_id: int, page: int) -> bytes:
        if page in self.buffer:
            return self.buffer.get_page(page)
        return self._last_stolen[(txn_id, page)]

    def abort(self, txn_id: int) -> None:
        """Roll the transaction back (parity twins and/or log) and
        release its locks."""
        self.recovery.abort(txn_id)
        self._h("abort", txn=txn_id)
        self._barrier("abort", txn=txn_id)

    # -- checkpoints ------------------------------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Take an ACC checkpoint (¬FORCE configurations only)."""
        if self.checkpointer is None:
            raise TransactionError(
                "FORCE/TOC configurations take no checkpoints")
        return self.checkpointer.checkpoint()

    def trim_log(self, archive_floor: int | None = None) -> int:
        """Discard log records no future recovery can need.

        The safe point is the minimum of: the oldest active
        transaction's BOT (its undo must stay reachable); under
        ¬FORCE/ACC, the last checkpoint record (restart REDO starts
        there — with no checkpoint yet, nothing can be trimmed, because
        committed data may exist only in the log); and ``archive_floor``
        — pass the ``dump_lsn`` of the oldest
        :class:`~repro.db.archive.ArchiveCopy` you still intend to roll
        forward from, or leave None if archive media recovery is not in
        use.  Returns the number of records discarded.
        """
        if self.rda is not None:
            # committed steals leave stale WORKING twin headers behind
            # (commit is a memory-only flip); the crash scan resolves
            # them against the commit records this trim may discard, so
            # seal them durably first
            self.rda.seal_stale_working_headers()
        candidates = [self.undo_log.last_lsn + 1]
        for txn in self.txns.active_transactions():
            lsn = self._bot_lsns.get(txn.txn_id)
            if lsn is not None:
                candidates.append(lsn)
        if archive_floor is not None:
            candidates.append(archive_floor + 1)
        return self.policy.discipline.trim_log(self, candidates,
                                               archive_floor)

    # -- failures ----------------------------------------------------------------------------------------------

    def crash(self) -> None:
        """Lose main memory: buffer, lock table, transaction registry,
        Dirty_Set, unforced log tails."""
        self.tracer.emit("db.crash")
        self._h("crash")
        self.buffer.invalidate_all()
        self.locks = LockManager()
        self.txns.lose_memory()
        self.policy.protection.lose_memory(self)
        self.undo_log.crash()
        if self.redo_log is not self.undo_log:
            self.redo_log.crash()
        self._before_images.clear()
        self._undo_logged.clear()
        self._logged_stolen.clear()
        self._last_stolen.clear()
        self._pending_undo.clear()
        self._pending_redo.clear()
        self._bot_written.clear()
        self._bot_lsns.clear()
        self._residue.clear()
        self._slotted_cache.clear()
        # _durable_page_lsn survives: it models on-disk page headers

    def recover(self, fault_hook=None) -> dict:
        """Restart after :meth:`crash`; returns recovery statistics.

        ``fault_hook`` is a test seam: called before each recovery
        write; raising from it simulates a crash during recovery.
        """
        stats = self.recovery.crash_recover(fault_hook=fault_hook)
        self._h("restart")
        self._barrier("restart")
        return stats

    def media_failure(self, disk_id: int) -> None:
        """Fail-stop one disk of the array."""
        self.array.fail_disk(disk_id)

    def media_recover(self, disk_id: int, on_lost_undo: str = "raise"):
        """Rebuild a failed disk from the surviving redundancy."""
        return self.recovery.media_recover(disk_id, on_lost_undo=on_lost_undo)

    # -- bookkeeping --------------------------------------------------------------------------------------------

    def _forget(self, txn_id: int) -> None:
        for key in [k for k in self._before_images if k[0] == txn_id]:
            del self._before_images[key]
        self._undo_logged = {k for k in self._undo_logged if k[0] != txn_id}
        self._logged_stolen = {k for k in self._logged_stolen if k[0] != txn_id}
        for key in [k for k in self._last_stolen if k[0] == txn_id]:
            del self._last_stolen[key]
        self._pending_undo.pop(txn_id, None)
        self._pending_redo.pop(txn_id, None)
        self._bot_written.discard(txn_id)
        self._bot_lsns.pop(txn_id, None)

    # -- inspection (tests/examples; uncounted) ------------------------------------------------------------------

    def disk_page(self, page: int) -> bytes:
        """On-disk bytes of a page (no buffer, no accounting)."""
        return self.array.peek_page(page)

    def committed_view(self, page: int) -> bytes:
        """The page as a new reader would see it (buffer-first)."""
        if page in self.buffer:
            return self.buffer.get_page(page)
        return self.array.peek_page(page)

    def verify_parity(self) -> list:
        """Groups whose parity disagrees with their data (should be [])."""
        return self.array.scrub()

    def statistics(self) -> dict:
        """A monitoring snapshot: transfers, buffer behaviour, steal
        accounting, log sizes, dirty groups, active transactions."""
        stats = {
            "page_transfers": self.stats.total,
            "reads": self.stats.reads,
            "writes": self.stats.writes,
            "buffer_hit_ratio": self.buffer.stats.hit_ratio,
            "buffer_steals": self.buffer.stats.steals,
            "unlogged_steals": self.counters.unlogged_steals,
            "logged_steals": self.counters.logged_steals,
            "before_images_logged": self.counters.before_images_logged,
            "promotions": self.counters.promotions,
            "transactions_committed": self.counters.transactions_committed,
            "transactions_aborted": self.counters.transactions_aborted,
            "active_transactions": len(self.txns.active_transactions()),
            "undo_log_bytes": self.undo_log.size_bytes,
            "redo_log_bytes": self.redo_log.size_bytes,
            "dirty_groups": (len(self.rda.dirty_set)
                             if self.rda is not None else 0),
        }
        return stats
