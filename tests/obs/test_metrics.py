"""Unit tests for counters, gauges, histograms, and the registry."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


def test_counter_increments_and_rejects_decrease():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_are_cached_children():
    c = Counter("wal.records")
    c.labels(type="CommitRecord").inc()
    c.labels(type="CommitRecord").inc()
    c.labels(type="BOTRecord").inc()
    assert c.labels(type="CommitRecord") is c.labels(type="CommitRecord")
    out = {}
    c.collect(out)
    assert out["wal.records{type=CommitRecord}"] == 2
    assert out["wal.records{type=BOTRecord}"] == 1
    assert out["wal.records"] == 0        # parent counts only direct incs


def test_label_keys_are_sorted_in_series_key():
    c = Counter("s")
    c.labels(b=2, a=1).inc()
    out = {}
    c.collect(out)
    assert "s{a=1,b=2}" in out


def test_gauge_moves_both_ways():
    g = Gauge("dirty")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2


def test_histogram_buckets_and_summary():
    h = Histogram("xfers", buckets=(3, 4, 6))
    for value in (3, 4, 4, 5, 100):
        h.observe(value)
    assert h.count == 5
    assert h.min == 3 and h.max == 100
    assert h.mean == pytest.approx(116 / 5)
    out = {}
    h.collect(out)
    doc = out["xfers"]
    assert doc["buckets"] == {"le_3": 1, "le_4": 2, "le_6": 1, "le_inf": 1}


def test_registry_get_or_create_shares_instruments():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_snapshot_is_json_serializable():
    registry = MetricsRegistry()
    registry.counter("ops").inc(7)
    registry.counter("ops").labels(kind="read").inc()
    registry.gauge("depth").set(2)
    registry.histogram("cost").observe(4)
    snap = registry.snapshot()
    assert snap["counters"]["ops"] == 7
    assert snap["counters"]["ops{kind=read}"] == 1
    assert snap["gauges"]["depth"] == 2
    assert snap["histograms"]["cost"]["count"] == 1
    json.dumps(snap)      # must round-trip to JSON without custom encoders
