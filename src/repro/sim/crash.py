"""Failure injection scenarios.

Orchestrated fault campaigns over a :class:`~repro.db.database.Database`
driven by a :class:`~repro.sim.simulator.Simulator`:

* :func:`crash_campaign` — repeated crash/recover cycles under load,
  asserting the committed-state invariant between cycles;
* :func:`media_campaign` — fail and rebuild every disk in turn under a
  running workload, verifying parity and data after each rebuild.

These double as heavy integration tests and as the workload behind the
recovery benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnrecoverableDataError
from .faultplan import Violation, violations_by_kind
from .simulator import Simulator
from .workload import WorkloadSpec


@dataclass
class CampaignResult:
    """Outcome of a failure campaign.

    ``violations`` holds structured :class:`~repro.sim.faultplan.
    Violation` ``(kind, detail)`` tuples; ``str()`` on one gives the old
    flat message.
    """

    cycles: int = 0
    recovered_losers: int = 0
    recovery_transfers: int = 0
    rebuilt_slots: int = 0
    violations: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def by_kind(self) -> dict:
        """Violation counts per kind."""
        return violations_by_kind(self.violations)


def crash_campaign(db, spec: WorkloadSpec, cycles: int,
                   transactions_per_cycle: int = 20,
                   seed: int = 0) -> CampaignResult:
    """Run load, crash, recover — ``cycles`` times — running the full
    consistency verifier after every recovery."""
    from ..db.verify import verify_database

    result = CampaignResult()
    sim = Simulator(db, spec, seed=seed)
    for cycle in range(cycles):
        sim.run(sim.report.transactions + transactions_per_cycle)
        sim.db.crash()
        stats = sim.db.recover()
        result.cycles += 1
        result.recovered_losers += len(stats["losers"])
        result.recovery_transfers += stats["page_transfers"]
        for problem in verify_database(db):
            result.violations.append(
                Violation("verify", f"cycle {cycle}: {problem}"))
    return result


def media_campaign(db, spec: WorkloadSpec, transactions_per_disk: int = 15,
                   seed: int = 0) -> CampaignResult:
    """Fail and rebuild each disk in turn under load.

    Dirty groups whose committed twin is lost adopt the on-disk state
    (``on_lost_undo="adopt"``); the pinned transactions are committed by
    the driver before the next cycle.
    """
    from ..db.verify import verify_database

    result = CampaignResult()
    sim = Simulator(db, spec, seed=seed)
    for disk_id in range(len(db.array.disks)):
        sim.run(sim.report.transactions + transactions_per_disk)
        db.media_failure(disk_id)
        try:
            report = db.media_recover(disk_id, on_lost_undo="adopt")
        except UnrecoverableDataError as error:
            result.violations.append(
                Violation("unrecoverable", f"disk {disk_id}: {error}"))
            break
        result.cycles += 1
        slots = getattr(report, "slots_rebuilt", report)
        result.rebuilt_slots += slots if isinstance(slots, int) else 0
        for problem in verify_database(db):
            result.violations.append(
                Violation("verify", f"disk {disk_id}: {problem}"))
    return result
