"""Tests for transactions and the transaction manager."""

import pytest

from repro.errors import InvalidTransactionState
from repro.txn import Transaction, TransactionManager, TxnState


@pytest.fixture
def tm():
    return TransactionManager()


class TestLifecycle:
    def test_begin_assigns_increasing_ids(self, tm):
        a, b = tm.begin(), tm.begin()
        assert b.txn_id == a.txn_id + 1
        assert a.is_active and b.is_active

    def test_commit(self, tm):
        txn = tm.begin()
        tm.finish(txn.txn_id, TxnState.COMMITTED)
        assert txn.state is TxnState.COMMITTED
        assert tm.committed_ids() == {txn.txn_id}

    def test_abort(self, tm):
        txn = tm.begin()
        tm.finish(txn.txn_id, TxnState.ABORTED)
        assert txn.state is TxnState.ABORTED
        assert tm.committed_ids() == set()

    def test_finish_requires_active(self, tm):
        txn = tm.begin()
        tm.finish(txn.txn_id, TxnState.COMMITTED)
        with pytest.raises(InvalidTransactionState):
            tm.finish(txn.txn_id, TxnState.ABORTED)

    def test_finish_rejects_active_as_outcome(self, tm):
        txn = tm.begin()
        with pytest.raises(ValueError):
            tm.finish(txn.txn_id, TxnState.ACTIVE)

    def test_unknown_txn(self, tm):
        with pytest.raises(InvalidTransactionState):
            tm.get(999)

    def test_active_transactions_in_begin_order(self, tm):
        a, b, c = tm.begin(), tm.begin(), tm.begin()
        tm.finish(b.txn_id, TxnState.COMMITTED)
        assert tm.active_transactions() == [a, c]


class TestCrashBookkeeping:
    def test_lose_memory_clears_registry(self, tm):
        txn = tm.begin()
        tm.lose_memory()
        with pytest.raises(InvalidTransactionState):
            tm.get(txn.txn_id)

    def test_ids_keep_increasing_after_crash(self, tm):
        first = tm.begin()
        tm.lose_memory()
        assert tm.begin().txn_id > first.txn_id

    def test_adopt_restores_and_bumps_ids(self, tm):
        ghost = Transaction(txn_id=41)
        tm.adopt(ghost)
        assert tm.get(41) is ghost
        assert tm.begin().txn_id == 42


class TestTransactionBookkeeping:
    def test_note_read_write_steal(self):
        txn = Transaction(txn_id=1)
        txn.note_read(3)
        txn.note_write(4)
        txn.note_steal(4)
        assert txn.pages_read == {3}
        assert txn.pages_written == {4}
        assert txn.pages_stolen == {4}

    def test_record_write_implies_page_write(self):
        txn = Transaction(txn_id=1)
        txn.note_record_write(7, 2)
        assert (7, 2) in txn.records_written
        assert 7 in txn.pages_written

    def test_update_transaction_flag(self):
        txn = Transaction(txn_id=1)
        assert not txn.is_update_transaction
        txn.note_write(1)
        assert txn.is_update_transaction

    def test_must_commit_default_false(self):
        assert not Transaction(txn_id=1).must_commit
