"""Observability: structured event tracing and metrics.

The paper's argument is an *accounting* argument — every cost is a
countable page-transfer event.  This package makes those events
first-class:

* :class:`~repro.obs.tracer.Tracer` emits typed, timestamped events to a
  pluggable sink (:class:`~repro.obs.tracer.JsonlSink`,
  :class:`~repro.obs.tracer.RingBufferSink`,
  :class:`~repro.obs.tracer.NullSink`), with *spans* for multi-step
  operations (recovery phases, checkpoints, rebuilds) that carry their
  :class:`~repro.storage.iostats.IOStats` delta — so each traced
  operation knows its page-transfer cost;
* :class:`~repro.obs.metrics.MetricsRegistry` holds counters, gauges and
  histograms with labeled children and a JSON-friendly ``snapshot()``;
* :mod:`repro.obs.inspect` aggregates a trace file into a per-event-type
  cost table comparable against the analytical model's predicted
  transfer counts (``python -m repro inspect-trace``);
* :class:`~repro.obs.recovery_profile.RecoveryProfile` turns the restart
  phase spans into per-phase recovery breakdowns, MTTR and availability
  accounting across crash/restart cycles;
* :mod:`repro.obs.export` converts a JSONL trace to Chrome
  trace-event/Perfetto JSON (``python -m repro export-trace``);
* :class:`~repro.obs.drift.DriftDetector` watches measured per-operation
  transfer costs against the analytical model's bands and raises
  structured :class:`~repro.obs.drift.DriftAlarm` events on divergence.

Everything is dependency-free and near-zero overhead when disabled: the
shared :data:`NULL_TRACER` refuses work after one attribute check, so
uninstrumented-feeling hot paths stay hot.
"""

from .drift import DriftAlarm, DriftDetector, check_events
from .export import export_chrome_trace, export_trace_file
from .inspect import (aggregate_events, aggregate_trace_file, event_key,
                      format_cost_table, load_trace, model_expectation,
                      unpriced_ops)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      escape_label_value, prometheus_name)
from .recovery_profile import RecoveryProfile, format_recovery_profile
from .tracer import (NULL_TRACER, BufferedJsonlSink, JsonlSink,
                     LabelledTracer, NullSink, RingBufferSink, Span, Tracer,
                     close_all)

__all__ = [
    "NULL_TRACER",
    "Tracer",
    "LabelledTracer",
    "Span",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "BufferedJsonlSink",
    "close_all",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "prometheus_name",
    "aggregate_events",
    "aggregate_trace_file",
    "event_key",
    "format_cost_table",
    "load_trace",
    "model_expectation",
    "unpriced_ops",
    "DriftAlarm",
    "DriftDetector",
    "check_events",
    "export_chrome_trace",
    "export_trace_file",
    "RecoveryProfile",
    "format_recovery_profile",
]
