"""X8: three-way comparison — WAL vs TWIST vs RDA.

The paper positions RDA between the two classics: TWIST's free undo at
100% storage overhead, and WAL's cheap storage with durable before-image
writes on the steal path.  This bench measures one identical episode —
N single-page transactions, half aborted — under all three schemes, on
write transfers, undo transfers, and storage overhead.
"""

from repro.core import RDAManager
from repro.db import Database, preset
from repro.storage import make_page, make_twin_raid5
from repro.twist import TwistStore

from .conftest import write_table

PAGES = 24
ROUNDS = 24


def episode_twist():
    store = TwistStore(num_pages=PAGES, num_disks=6)
    store.load({p: make_page(p + 1) for p in range(PAGES)})
    store.stats.reset()
    with store.stats.window() as window:
        for i in range(ROUNDS):
            txn = i + 1
            store.write(i % PAGES, make_page(i + 100), txn_id=txn)
            if i % 2:
                store.abort(txn)
            else:
                store.commit(txn)
    return window.total, store.storage_overhead()


def episode_rda():
    array = make_twin_raid5(6, PAGES // 6)
    for g in range(array.geometry.num_groups):
        array.full_stripe_write(
            g, [make_page(bytes([g + 1, j])) for j in range(6)])
    rda = RDAManager(array)
    array.stats.reset()
    with array.stats.window() as window:
        for i in range(ROUNDS):
            txn = i + 1
            page = i % PAGES
            rda.write_uncommitted(page, make_page(i + 100), txn_id=txn)
            if i % 2:
                rda.abort_txn(txn)
            else:
                rda.commit_txn(txn)
    return window.total, array.geometry.storage_overhead()


def episode_wal():
    db = Database(preset("page-force-log", group_size=6,
                         num_groups=PAGES // 6, buffer_capacity=4,
                         log_transfers_per_page=4))
    db.load_pages({p: make_page(p + 1) for p in range(PAGES)})
    db.stats.reset()
    with db.stats.window() as window:
        for i in range(ROUNDS):
            txn = db.begin()
            page = i % PAGES
            db.write_page(txn, page, make_page(i + 100))
            db.buffer.flush_pages_of(txn)        # steal (needs the log)
            if i % 2:
                db.abort(txn)
            else:
                db.commit(txn)
    overhead = 1 / (db.config.group_size + 1)
    return window.total, overhead


def test_three_way_comparison(benchmark, results_dir):
    def campaign():
        return {"TWIST": episode_twist(), "RDA": episode_rda(),
                "WAL": episode_wal()}

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = [f"X8: {ROUNDS} single-page txns (half aborted), transfers "
             "and storage overhead",
             f"{'scheme':>6} | {'transfers':>9} | {'overhead':>8}"]
    for scheme in ("TWIST", "RDA", "WAL"):
        transfers, overhead = results[scheme]
        lines.append(f"{scheme:>6} | {transfers:9d} | {overhead:8.1%}")
    write_table(results_dir, "twist_three_way", "\n".join(lines))

    twist_cost, twist_overhead = results["TWIST"]
    rda_cost, rda_overhead = results["RDA"]
    wal_cost, wal_overhead = results["WAL"]
    # TWIST is cheapest on transfers (1 write, free undo) but costs 2x
    # storage; RDA sits between; WAL pays the log on every steal
    assert twist_cost < rda_cost < wal_cost
    assert wal_overhead < rda_overhead < twist_overhead
    benchmark.extra_info["transfers"] = {
        scheme: cost for scheme, (cost, _) in results.items()}


def test_twist_crash_scan_cost(benchmark):
    """TWIST restart scans 2 slots per PAGE; RDA scans 2 per GROUP —
    the (100/N)% theme again, this time in restart reads."""

    def campaign():
        store = TwistStore(num_pages=PAGES, num_disks=6)
        store.crash()
        with store.stats.window() as twist_window:
            store.recover(committed_txns=set())

        array = make_twin_raid5(6, PAGES // 6)
        rda = RDAManager(array)
        with array.stats.window() as rda_window:
            rda.crash_scan(committed_txns=set())
        return twist_window.reads, rda_window.reads

    twist_reads, rda_reads = benchmark.pedantic(campaign, rounds=1,
                                                iterations=1)
    assert rda_reads < twist_reads
    assert twist_reads == 2 * PAGES
    assert rda_reads == 2 * PAGES // 6
    benchmark.extra_info["twist_reads"] = twist_reads
    benchmark.extra_info["rda_reads"] = rda_reads
