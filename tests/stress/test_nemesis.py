"""Unit tests for the nemesis scheduler and the active-fault registry."""

import pytest

from repro.errors import ModelError
from repro.stress import (FAULT_KINDS, PROFILES, ActiveFaultRegistry,
                          Nemesis, NemesisProfile, resolve_profile)


class TestProfiles:
    def test_builtin_profiles_are_valid(self):
        for name, profile in PROFILES.items():
            assert profile.name == name
            assert profile.enabled_kinds()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            NemesisProfile(name="bad", weights={"meteor": 1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ModelError):
            NemesisProfile(name="idle", weights={"crash": 0.0})

    def test_resolve_by_name_and_passthrough(self):
        profile = resolve_profile("default")
        assert profile is PROFILES["default"]
        assert resolve_profile(profile) is profile
        with pytest.raises(ModelError):
            resolve_profile("no-such-profile")

    def test_default_profile_covers_five_plus_kinds(self):
        # the acceptance criterion needs >=5 distinct kinds injected
        assert len(PROFILES["default"].enabled_kinds()) >= 5

    def test_fault_kinds_have_executors(self):
        from repro.stress.runner import _Campaign
        for kind in FAULT_KINDS:
            assert hasattr(_Campaign, "_do_" + kind)


class TestCoverageCycle:
    def test_every_enabled_kind_drawn_before_any_repeats(self):
        nemesis = Nemesis("default", seed=11)
        kinds = nemesis.profile.enabled_kinds()
        eligible = [k for k in kinds if k != "shard_kill"]
        drawn = [nemesis.draw(eligible) for _ in range(len(eligible))]
        assert sorted(drawn) == sorted(eligible)

    def test_ineligible_kinds_never_drawn_and_never_block(self):
        nemesis = Nemesis("default", seed=3)
        eligible = ["crash", "trim"]
        drawn = [nemesis.draw(eligible) for _ in range(10)]
        assert set(drawn) <= {"crash", "trim"}

    def test_no_eligible_kind_returns_none(self):
        nemesis = Nemesis("crash-only", seed=0)
        assert nemesis.draw(["shard_kill"]) is None

    def test_draw_sequence_deterministic_per_seed(self):
        eligible = [k for k in PROFILES["default"].enabled_kinds()
                    if k != "shard_kill"]
        runs = []
        for _ in range(2):
            nemesis = Nemesis("default", seed=42)
            runs.append([nemesis.draw(eligible) for _ in range(20)])
        assert runs[0] == runs[1]
        other = Nemesis("default", seed=43)
        assert [other.draw(eligible) for _ in range(20)] != runs[0]


class TestRegistry:
    def test_lifecycle_and_labels(self):
        registry = ActiveFaultRegistry()
        crash = registry.open("crash", "boom", tick=0)
        media = registry.open("media", "disk 3", tick=0)
        assert crash.label == "crash#0"
        assert registry.active_labels() == ["crash#0", "media#1"]
        registry.close(crash, tick=0, survived=True)
        assert registry.active_labels() == ["media#1"]
        registry.close(media, tick=1, survived=False)
        assert registry.active_labels() == []
        assert registry.injected == 2
        assert registry.survived == 1
        assert registry.injected_by_kind() == {"crash": 1, "media": 1}
        assert registry.survived_by_kind() == {"crash": 1}

    def test_double_close_rejected(self):
        registry = ActiveFaultRegistry()
        fault = registry.open("trim", "", tick=0)
        registry.close(fault, tick=0, survived=True)
        with pytest.raises(ModelError):
            registry.close(fault, tick=1, survived=True)

    def test_to_dicts_round_trip(self):
        registry = ActiveFaultRegistry()
        fault = registry.open("latent", "page 4", tick=2)
        registry.close(fault, tick=2, survived=True)
        [row] = registry.to_dicts()
        assert row == {"id": 0, "kind": "latent", "detail": "page 4",
                       "opened_tick": 2, "closed_tick": 2, "survived": True}


class TestSchedule:
    def test_record_accumulates_in_order(self):
        nemesis = Nemesis("default", seed=0)
        nemesis.record(0, "crash", {}, "recovered")
        nemesis.record(1, "media", {"disk": 2}, "rebuilt")
        assert [a["index"] for a in nemesis.schedule] == [0, 1]
        assert nemesis.schedule[1]["params"] == {"disk": 2}
