"""X6: shadow paging vs update-in-place + RDA (paper Section 2).

The paper dismisses ATOMIC/shadow propagation for two costs; both are
measured here against the RDA database:

* **table overhead** — every shadow commit rewrites page-table pages
  and the master block;
* **disk scrambling** — remapping destroys physical sequentiality, so
  sequential scans slow down over time; update-in-place (what RDA
  enables cheaply) keeps scans fast forever.
"""

import random

from repro.db import Database, preset
from repro.shadow import ShadowPagedStore
from repro.storage import (ArrayTimer, DiskTimingSpec, make_page, make_raid5,
                           time_read)

from .conftest import write_table

LOGICAL = 60


def shadow_store():
    return ShadowPagedStore(make_raid5(5, 40), logical_pages=LOGICAL)


def rda_db():
    return Database(preset("page-force-rda", group_size=5, num_groups=12,
                           buffer_capacity=12))


def churn_shadow(store, updates, seed=3):
    rng = random.Random(seed)
    for _ in range(updates):
        store.begin()
        store.write(rng.randrange(LOGICAL), make_page(rng.randrange(256)))
        store.commit()


def test_scrambling_growth(benchmark, results_dir):
    def campaign():
        store = shadow_store()
        points = []
        for updates in (0, 50, 100, 200):
            churn_shadow(store, updates - (points[-1][0] if points else 0))
            points.append((updates, store.scrambling()))
        return points

    points = benchmark.pedantic(campaign, rounds=1, iterations=1)
    values = [s for _, s in points]
    assert values[0] == 1.0            # freshly loaded: sequential
    assert values[-1] > 2.0            # scrambled after churn
    assert values == sorted(values) or values[-1] > values[0]
    write_table(results_dir, "shadow_scrambling",
                "X6: shadow-paging disk scrambling (mean physical gap "
                "between logically adjacent pages)\n" + "\n".join(
                    f"after {u:4d} updates: {s:6.2f}" for u, s in points))
    benchmark.extra_info["scrambling"] = {str(u): round(s, 2)
                                          for u, s in points}


def test_scan_latency_after_churn(benchmark, results_dir):
    """Price the scrambling in milliseconds with the timing model."""

    def campaign():
        spec = DiskTimingSpec()
        store = shadow_store()
        geometry = store.array.geometry

        def scan_ms(mapping):
            timer = ArrayTimer(spec, geometry.capacity_per_disk,
                               geometry.num_disks)
            for logical in range(LOGICAL):
                time_read(timer, geometry, mapping(logical))
            return timer.elapsed_ms / LOGICAL

        fresh = scan_ms(lambda logical: store._table[logical])
        churn_shadow(store, 300)
        scrambled = scan_ms(lambda logical: store._table[logical])
        return fresh, scrambled

    fresh, scrambled = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert scrambled > fresh
    write_table(results_dir, "shadow_scan_latency",
                "X6: sequential scan, ms per page\n"
                f"freshly loaded shadow store: {fresh:6.2f}\n"
                f"after 300 updates          : {scrambled:6.2f}\n"
                "update-in-place (RDA) stays at the fresh figure")
    benchmark.extra_info["fresh_ms"] = round(fresh, 2)
    benchmark.extra_info["scrambled_ms"] = round(scrambled, 2)


def test_commit_overhead_vs_rda(benchmark, results_dir):
    """Transfers per small committed update: shadow pays data + table
    + master; RDA pays data + parity and flips a bit in memory."""

    def campaign():
        store = shadow_store()
        with store.array.stats.window() as shadow_window:
            for i in range(20):
                store.begin()
                store.write(i % LOGICAL, make_page(i + 1))
                store.commit()
        db = rda_db()
        with db.stats.window() as rda_window:
            for i in range(20):
                txn = db.begin()
                db.write_page(txn, i % db.num_data_pages, make_page(i + 1))
                db.commit(txn)
        return shadow_window.total / 20, rda_window.total / 20

    shadow_cost, rda_cost = benchmark.pedantic(campaign, rounds=1,
                                               iterations=1)
    write_table(results_dir, "shadow_commit_cost",
                "X6: transfers per single-page committed update\n"
                f"shadow paging        : {shadow_cost:5.1f}\n"
                f"update-in-place + RDA: {rda_cost:5.1f}")
    assert shadow_cost > 0 and rda_cost > 0
    benchmark.extra_info["shadow"] = shadow_cost
    benchmark.extra_info["rda"] = rda_cost
