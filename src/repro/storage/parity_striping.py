"""Factories for parity-striped arrays (Gray, Horst & Walker).

Paper Figure 2 (single parity) and Figure 5 (twin parity).  Parity
striping keeps data *sequential on each disk* — only the parity areas
are striped — which Gray et al. argue suits OLTP better than data
striping: a small request engages one arm, and sequential scans keep
their locality.  In this library the difference is captured by the
``SEQUENTIAL`` placement of :class:`~repro.storage.geometry.Geometry`;
the redundancy mechanics are shared with the RAID-5 arrays.
"""

from __future__ import annotations

from .array import SingleParityArray
from .geometry import parity_striping_geometry
from .iostats import IOStats
from .twin_array import TwinParityArray


def make_parity_striped(group_size: int, num_groups: int,
                        stats: IOStats | None = None) -> SingleParityArray:
    """A parity-striped array (Figure 2): sequential data placement,
    one parity page per group."""
    return SingleParityArray(
        parity_striping_geometry(group_size, num_groups, twin=False), stats=stats)


def make_twin_parity_striped(group_size: int, num_groups: int,
                             stats: IOStats | None = None) -> TwinParityArray:
    """Parity striping with twin parity pages for RDA recovery
    (Figure 5)."""
    return TwinParityArray(
        parity_striping_geometry(group_size, num_groups, twin=True), stats=stats)
