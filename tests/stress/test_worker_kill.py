"""The ``worker_kill`` nemesis: attribution and worker-mode gating.

Satellite of the worker-process PR: SIGKILLing a shard worker
mid-campaign must surface through the supervisor as a crash the stress
harness can drive — journal-replay heal, group-commit drain, restart
recovery — with every judged window closing clean and every violation
(there must be none) attributable to the fault that was in flight.
"""

import json

from repro.stress import StressOptions, StressRunner


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


def run_worker_cell(seed, ops=96, **kwargs):
    options = StressOptions(preset="page-force-rda", shards=2, seed=seed,
                            ops=ops, batch_size=8, baseline=False,
                            workers=True, clock=FakeClock(), **kwargs)
    return StressRunner(options).run()


class TestWorkerKillNemesis:
    def test_worker_kill_injected_and_survived(self):
        report = run_worker_cell(seed=7)
        assert report.workers is True
        assert report.clean, report.violations[:3]
        injected = report.injected_by_kind.get("worker_kill", 0)
        assert injected >= 1
        assert report.survived_by_kind.get("worker_kill") == injected
        assert report.worker_deaths >= injected

    def test_worker_kill_attribution_windows_close_clean(self):
        """Regression: a worker death must never leave a conformance
        violation attributed to its open window — the heal + drain +
        recover sequence is supposed to be invisible to the oracles."""
        report = run_worker_cell(seed=7)
        kills = [fault for fault in report.faults
                 if fault["kind"] == "worker_kill"]
        assert kills, "campaign never drew worker_kill"
        for fault in kills:
            assert fault["closed_tick"] is not None
            assert fault["survived"] is True
        blamed = [violation for violation in report.violations
                  if any(label.startswith("worker_kill#")
                         for label in violation["active_faults"])]
        assert blamed == []

    def test_worker_mode_gates_in_process_only_faults(self):
        """latent/torn_log/mutant reach into shard engine internals and
        must never be drawn against worker-process shards."""
        report = run_worker_cell(seed=7)
        drawn = set(report.injected_by_kind)
        assert not drawn & {"latent", "torn_log", "mutant"}

    def test_in_process_mode_never_draws_worker_kill(self):
        options = StressOptions(preset="page-force-rda", shards=2, seed=7,
                                ops=96, batch_size=8, baseline=False,
                                workers=False, clock=FakeClock())
        report = StressRunner(options).run()
        assert report.workers is False
        assert "worker_kill" not in report.injected_by_kind

    def test_worker_cell_deterministic_per_seed(self):
        first = run_worker_cell(seed=5)
        second = run_worker_cell(seed=5)
        assert (json.dumps(first.to_dict(), sort_keys=True)
                == json.dumps(second.to_dict(), sort_keys=True))
