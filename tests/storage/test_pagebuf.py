"""PagePool: slab round-trips, free-list accounting, and the leak
tripwire over whole simulate runs.

The pool is pure bookkeeping — it never touches slab contents — so the
properties here are about accounting: every checkout is matched by a
giveback, recycled slabs come back at the exact requested size, and a
full simulation leaves the process-wide :data:`~repro.storage.pagebuf.POOL`
with zero slabs outstanding (``in_use`` back to its pre-run value).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, preset
from repro.sim import Simulator, WorkloadSpec
from repro.storage.page import PAGE_SIZE
from repro.storage.pagebuf import POOL, PagePool


# -- unit accounting ----------------------------------------------------------------------


def test_checkout_size_and_reuse():
    pool = PagePool()
    slab = pool.checkout(3)
    assert isinstance(slab, bytearray)
    assert len(slab) == 3 * PAGE_SIZE
    assert pool.in_use == 1 and pool.reuses == 0
    pool.giveback(slab)
    assert pool.in_use == 0 and pool.free_count() == 1
    again = pool.checkout(3)
    assert again is slab          # recycled, not reallocated
    assert pool.reuses == 1
    pool.giveback(again)


def test_bins_are_exact_size():
    pool = PagePool()
    small = pool.checkout(1)
    pool.giveback(small)
    big = pool.checkout(2)        # must not hand back the 1-page slab
    assert len(big) == 2 * PAGE_SIZE
    assert big is not small
    pool.giveback(big)
    assert pool.free_count() == 2


def test_borrow_gives_back_on_error():
    pool = PagePool()
    try:
        with pool.borrow(2) as slab:
            assert len(slab) == 2 * PAGE_SIZE
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert pool.in_use == 0 and pool.free_count() == 1


def test_clear_drops_free_slabs_only():
    pool = PagePool()
    held = pool.checkout(1)
    pool.giveback(pool.checkout(1))
    pool.clear()
    assert pool.free_count() == 0
    assert pool.in_use == 1       # checked-out slab unaffected
    pool.giveback(held)


# -- property: arbitrary checkout/giveback interleavings ----------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8),
                min_size=1, max_size=30),
       st.data())
def test_interleaved_round_trips_preserve_accounting(sizes, data):
    """Random interleaving of checkouts and givebacks: slab contents
    round-trip per page, and the counters always reconcile."""
    pool = PagePool()
    live = []                     # (slab, fill byte)
    for i, pages in enumerate(sizes):
        slab = pool.checkout(pages)
        assert len(slab) == pages * PAGE_SIZE
        fill = i & 0xFF
        view = memoryview(slab)
        for p in range(pages):
            view[p * PAGE_SIZE:(p + 1) * PAGE_SIZE] = \
                bytes([fill]) * PAGE_SIZE
        live.append((slab, fill))
        if live and data.draw(st.booleans()):
            slab_back, expect = live.pop(data.draw(
                st.integers(min_value=0, max_value=len(live) - 1)))
            # contents survive exactly until giveback
            assert bytes(slab_back) == bytes([expect]) * len(slab_back)
            pool.giveback(slab_back)
        assert pool.in_use == len(live)
        assert pool.high_water >= pool.in_use
    for slab, expect in live:
        assert bytes(slab) == bytes([expect]) * len(slab)
        pool.giveback(slab)
    assert pool.in_use == 0
    assert pool.checkouts == len(sizes)
    # every free slab came from a checkout (bins are per-size, so the
    # free list can exceed high_water when sizes vary — but never this)
    assert pool.free_count() <= pool.checkouts


# -- leak tripwire over full simulations --------------------------------------------------


LEAK_PRESETS = [
    "page-force-rda",
    "page-noforce-rda",
    "record-force-rda",
    "record-noforce-rda",
]


def _one_run(name, spec):
    db = Database(preset(name, group_size=5, num_groups=12,
                         buffer_capacity=16))
    sim = Simulator(db, spec, seed=13)
    if db.config.record_logging:
        sim.seed_records()
    sim.run(40, crash_every=15)


def test_pool_drains_after_every_simulate_preset():
    """The shared POOL must have no slabs outstanding after a run —
    a stuck ``in_use`` means a batched write path skipped a giveback
    (e.g. an early return inside a checkout/giveback window).  A
    repeated identical run must also leave the free list unchanged:
    steady state means every checkout was satisfied by reuse."""
    spec = WorkloadSpec(concurrency=3, pages_per_txn=4,
                        update_txn_fraction=0.9, update_probability=0.9,
                        abort_probability=0.05, communality=0.5)
    for name in LEAK_PRESETS:
        baseline = POOL.in_use
        _one_run(name, spec)
        assert POOL.in_use == baseline, f"{name}: leaked pool slabs"
        steady = POOL.free_count()
        _one_run(name, spec)
        assert POOL.in_use == baseline, f"{name}: leaked pool slabs"
        assert POOL.free_count() == steady, \
            f"{name}: free list grew on an identical second run"
