"""Odds-and-ends coverage for the Database facade."""

import pytest

from repro.db import Database, preset
from repro.errors import InvalidTransactionState, TransactionError
from repro.storage import make_page


def make_db(name="page-force-rda", **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    return Database(preset(name, **defaults))


class TestViews:
    def test_committed_view_prefers_buffer(self):
        db = make_db("page-noforce-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"buffered"))
        db.commit(t)
        assert db.committed_view(0) == make_page(b"buffered")
        assert db.disk_page(0) != make_page(b"buffered")   # lazy

    def test_committed_view_falls_back_to_disk(self):
        db = make_db()
        db.load_pages({3: make_page(b"ondisk")})
        assert db.committed_view(3) == make_page(b"ondisk")

    def test_num_data_pages(self):
        db = make_db()
        assert db.num_data_pages == 32


class TestLoadPages:
    def test_load_skips_all_zero_groups(self):
        db = make_db()
        before = db.stats.total
        db.load_pages({})
        assert db.stats.total == before

    def test_load_maintains_parity(self):
        db = make_db()
        db.load_pages({p: make_page(p + 1) for p in range(10)})
        assert db.verify_parity() == []

    def test_format_record_pages_only_listed(self):
        db = make_db("record-force-rda")
        db.format_record_pages([0, 5])
        from repro.db import SlottedPage
        assert SlottedPage.from_bytes(db.disk_page(0)).record_count == 0
        assert db.verify_parity() == []


class TestTransactionSurface:
    def test_operations_on_finished_txn_rejected(self):
        db = make_db()
        t = db.begin()
        db.commit(t)
        with pytest.raises(InvalidTransactionState):
            db.write_page(t, 0, make_page(b"x"))
        with pytest.raises(InvalidTransactionState):
            db.read_page(t, 0)
        with pytest.raises(InvalidTransactionState):
            db.commit(t)
        with pytest.raises(InvalidTransactionState):
            db.abort(t)

    def test_read_only_commit_writes_no_log(self):
        db = make_db()
        t = db.begin()
        db.read_page(t, 0)
        before = db.undo_log.last_lsn, db.redo_log.last_lsn
        db.commit(t)
        assert (db.undo_log.last_lsn, db.redo_log.last_lsn) == before

    def test_read_only_abort(self):
        db = make_db()
        t = db.begin()
        db.read_page(t, 0)
        db.abort(t)
        assert db.counters.transactions_aborted == 1

    def test_grants_for_reports_waiting(self):
        from repro.db.database import LockWait
        db = make_db()
        a, b = db.begin(), db.begin()
        db.write_page(a, 0, make_page(b"a"))
        with pytest.raises(LockWait):
            db.write_page(b, 0, make_page(b"b"))
        assert not db.grants_for(b)
        db.commit(a)
        assert db.grants_for(b)
        db.abort(b)


class TestCounters:
    def test_commit_abort_counts(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        t = db.begin()
        db.write_page(t, 1, make_page(b"y"))
        db.abort(t)
        assert db.counters.transactions_committed == 1
        assert db.counters.transactions_aborted == 1

    def test_unlogged_fraction_zero_without_steals(self):
        db = make_db("page-noforce-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        assert db.counters.unlogged_fraction == 0.0
        assert db.counters.steals == 0


class TestStatistics:
    def test_snapshot_keys_and_values(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        stats = db.statistics()
        assert stats["transactions_committed"] == 1
        assert stats["page_transfers"] > 0
        assert stats["undo_log_bytes"] > 0
        assert stats["active_transactions"] == 0
        assert 0.0 <= stats["buffer_hit_ratio"] <= 1.0

    def test_dirty_groups_tracked(self):
        db = make_db()
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.buffer.flush_pages_of(t)
        assert db.statistics()["dirty_groups"] == 1
        db.commit(t)
        assert db.statistics()["dirty_groups"] == 0

    def test_baseline_reports_zero_dirty_groups(self):
        db = make_db("page-force-log")
        assert db.statistics()["dirty_groups"] == 0


class TestResidueInteraction:
    def test_residue_steal_is_logged_even_with_rda(self):
        """Committed-but-unflushed data under a new uncommitted change
        must not ride the parity twins (the rewind would lose it)."""
        db = make_db("page-noforce-rda", buffer_capacity=4)
        t = db.begin()
        db.write_page(t, 0, make_page(b"committed"))
        db.commit(t)                            # residue on page 0
        loser = db.begin()
        db.write_page(loser, 0, make_page(b"uncommitted"))
        db.buffer.flush_page(0)                 # steal with residue
        assert db.counters.logged_steals >= 1
        assert db.counters.unlogged_steals == 0
        db.abort(loser)
        assert db.committed_view(0) == make_page(b"committed")
