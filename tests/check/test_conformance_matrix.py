"""Acceptance sweep: every recovery class x RDA on/off x page/record
locking runs clean under full conformance checking — online
invariants, differential reads, final-state diff, structural
verification and serializability analysis — with and without
mid-load crashes."""

import pytest

from repro.check import analyze, run_conformance
from repro.db import all_preset_names


@pytest.mark.parametrize("name", all_preset_names())
def test_preset_runs_clean(name):
    run = run_conformance(name, transactions=25, seed=0)
    assert run.violations == [], [str(v) for v in run.violations]
    ser = run.serializability
    assert ser.serializable and ser.recoverable
    assert ser.avoids_cascading_aborts and ser.strict
    assert ser.anomalies == []
    assert run.clean


@pytest.mark.parametrize("name", all_preset_names())
def test_preset_runs_clean_with_crashes(name):
    run = run_conformance(name, transactions=25, seed=4, crash_every=8)
    assert run.violations == [], [str(v) for v in run.violations]
    assert run.serializability.clean
    assert run.history.of_op("restart")


def test_strict_2pl_yields_strict_histories():
    # the theory link: the lock manager is strict 2PL, so every
    # recorded history must classify as ST (not merely serializable)
    run = run_conformance("record-noforce-rda", transactions=30, seed=7)
    report = analyze(run.history)
    assert report.strict
    assert report.serial_order is not None
