"""Live model-drift detection: measured transfer costs vs the paper.

The analytical model prices every operation class in page transfers
(:mod:`repro.model.operations`): an unbuffered small write costs 4, a
buffered one 3, an RDA commit 0, an undo-via-parity 5–6.  The simulator
is supposed to *realize* those prices — when it stops doing so (a
regression in the write path, a mispriced batch expansion, a policy
change that silently adds I/O) every downstream number the repo reports
is wrong.

:class:`DriftDetector` watches the live event stream (tracer observer)
or replays a recorded trace, accumulates the measured mean transfers
per model-priced operation variant, and raises a structured
:class:`DriftAlarm` when a mean leaves its predicted band by more than
``tolerance``.  Operation classes whose price depends on array width N
(degraded reads, reconstruct-writes) have no constant band and are
never checked.

Detected state is exported two ways: per-variant ``model.drift`` gauges
in a :class:`~repro.obs.metrics.MetricsRegistry` (measured − predicted,
in transfers) and, when a tracer is supplied, a ``model.drift_alarm``
trace event per offending variant (emitted once — alarms are
deduplicated so a 10⁶-op run cannot flood the trace).
"""

from __future__ import annotations

from typing import NamedTuple

from ..model.operations import predicted_band
from .inspect import event_key


class DriftAlarm(NamedTuple):
    """One operation variant outside its predicted transfer band."""

    key: str            # operation variant, e.g. array.small_write[...]
    measured: float     # observed mean transfers per operation
    lo: float           # model band lower bound
    hi: float           # model band upper bound
    count: int          # observations behind the mean
    drift: float        # signed distance outside the band (transfers)

    def describe(self) -> str:
        band = f"{self.lo:g}" if self.lo == self.hi else \
            f"{self.lo:g}..{self.hi:g}"
        return (f"{self.key}: mean {self.measured:.3f} transfers over "
                f"{self.count} ops, model predicts {band} "
                f"(drift {self.drift:+.3f})")


class _Series:
    __slots__ = ("count", "transfers")

    def __init__(self) -> None:
        self.count = 0
        self.transfers = 0

    def add(self, count: int, transfers) -> None:
        self.count += count
        self.transfers += transfers

    @property
    def mean(self) -> float:
        return self.transfers / self.count if self.count else 0.0


class DriftDetector:
    """Compares measured per-operation transfer costs to the model.

    Args:
        tolerance: allowed relative excursion outside the band — the
            band ``[lo, hi]`` is widened to ``[lo - slack, hi + slack]``
            with ``slack = tolerance * max(hi, 1)``.  Zero-priced
            operations (``rda.commit``) therefore still tolerate only
            ``tolerance`` transfers of noise.
        min_count: observations required before a variant is judged
            (single-op means are noisy and the model prices steady
            state).
        metrics: optional registry; per-variant drift gauges and an
            alarm counter are kept there.
        tracer: optional tracer; each alarm emits one
            ``model.drift_alarm`` event.
    """

    def __init__(self, tolerance: float = 0.05, min_count: int = 4,
                 metrics=None, tracer=None) -> None:
        self.tolerance = tolerance
        self.min_count = min_count
        self.metrics = metrics
        self.tracer = tracer
        self.alarms: list = []
        self._series: dict = {}
        self._alarmed: set = set()

    # -- measurement intake --------------------------------------------------

    def observe(self, event: dict) -> None:
        """Tracer-observer hook: fold one event into the per-variant
        series (expanding coalesced batch events exactly the way
        :func:`repro.obs.inspect.aggregate_events` prices them)."""
        name = event.get("name")
        attrs = event.get("attrs") or {}
        if name == "array.small_write_batch":
            buffered = attrs.get("buffered_pages", 0)
            plain = attrs.get("pages", 0) - buffered
            if buffered:
                self._add("array.small_write[buffered=True,twins=1]",
                          buffered, 3 * buffered)
            if plain:
                self._add("array.small_write[buffered=False,twins=1]",
                          plain, 4 * plain)
            return
        if name == "rda.commit":
            flips = attrs.get("groups", 0)
            if flips:
                self._add("rda.twin_flip", flips, 0)
            self._add(event_key(name, attrs), 1, attrs.get("transfers", 0))
            return
        if "transfers" not in attrs:
            return
        self._add(event_key(name, attrs), 1, attrs["transfers"])

    def _add(self, key: str, count: int, transfers) -> None:
        band = predicted_band(key)
        if band is None:
            return  # unpriced or N-dependent: the model has no number
        series = self._series.get(key)
        if series is None:
            series = _Series()
            self._series[key] = series
        series.add(count, transfers)
        self._check(key, series, band)

    # -- judgement -----------------------------------------------------------

    def _check(self, key: str, series: _Series, band) -> None:
        if series.count < self.min_count:
            return
        lo, hi = band
        slack = self.tolerance * max(hi, 1.0)
        mean = series.mean
        if lo - slack <= mean <= hi + slack:
            if self.metrics is not None:
                drift = 0.0 if lo <= mean <= hi else \
                    (mean - hi if mean > hi else mean - lo)
                self.metrics.gauge("model.drift").labels(op=key).set(
                    round(drift, 4))
            return
        drift = mean - hi if mean > hi else mean - lo
        if self.metrics is not None:
            self.metrics.gauge("model.drift").labels(op=key).set(
                round(drift, 4))
        if key in self._alarmed:
            return
        self._alarmed.add(key)
        alarm = DriftAlarm(key=key, measured=round(mean, 4), lo=lo, hi=hi,
                           count=series.count, drift=round(drift, 4))
        self.alarms.append(alarm)
        if self.metrics is not None:
            self.metrics.counter("model.drift_alarms").inc()
        if self.tracer is not None:
            self.tracer.emit("model.drift_alarm", key=alarm.key,
                             measured=alarm.measured, lo=alarm.lo,
                             hi=alarm.hi, n=alarm.count, drift=alarm.drift)

    # -- results -------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True while no variant has left its band."""
        return not self.alarms

    def attach(self, tracer) -> "DriftDetector":
        """Convenience: ``tracer.add_observer(self.observe)``; returns
        self for chaining."""
        tracer.add_observer(self.observe)
        return self

    def summary(self) -> dict:
        """JSON-friendly verdict: measured means, bands and alarms."""
        return {
            "clean": self.clean,
            "tolerance": self.tolerance,
            "min_count": self.min_count,
            "checked": {
                key: {"count": series.count,
                      "mean_transfers": round(series.mean, 4),
                      "band": list(predicted_band(key) or ())}
                for key, series in sorted(self._series.items())
            },
            "alarms": [alarm._asdict() for alarm in self.alarms],
        }


def check_events(events, tolerance: float = 0.05,
                 min_count: int = 4) -> DriftDetector:
    """Replay a recorded trace through a fresh detector (offline
    ``repro drift-check``)."""
    detector = DriftDetector(tolerance=tolerance, min_count=min_count)
    for event in events:
        detector.observe(event)
    return detector
