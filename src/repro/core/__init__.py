"""The RDA recovery core: parity groups, twin management, checkpoints."""

from .checkpoint import ACCCheckpointer
from .parity_group import DirtyEntry, DirtySet
from .rda import RDAManager

__all__ = ["ACCCheckpointer", "DirtyEntry", "DirtySet", "RDAManager"]
