"""Queueing extension: from page transfers to utilization and latency.

The paper's throughput model counts page transfers per availability
interval and ignores device queueing.  This module closes the loop with
a standard M/M/1 treatment: given a transaction cost ``c_E`` (page
transfers, from any of the cost models), a disk count, and a mean
per-transfer service time, it answers:

* what device utilization a transaction rate implies,
* the M/M/1 mean response time per transfer at that utilization,
* the maximum sustainable transaction rate (utilization → 1), and
* the full throughput-latency curve.

Because RDA lowers ``c_E``, it raises the saturation point — the same
win the paper reports, expressed in transactions/second instead of
transactions per 5·10⁶ transfers.
"""

from __future__ import annotations

from ..errors import ModelError


def _check(c_E: float, num_disks: int, service_ms: float) -> None:
    if c_E <= 0:
        raise ModelError("c_E must be positive")
    if num_disks < 1:
        raise ModelError("need at least one disk")
    if service_ms <= 0:
        raise ModelError("service time must be positive")


def utilization(txn_rate: float, c_E: float, num_disks: int,
                service_ms: float) -> float:
    """Per-disk utilization at ``txn_rate`` transactions/second,
    assuming transfers spread evenly over the disks."""
    _check(c_E, num_disks, service_ms)
    if txn_rate < 0:
        raise ModelError("transaction rate must be non-negative")
    transfers_per_second = txn_rate * c_E
    per_disk = transfers_per_second / num_disks
    return per_disk * (service_ms / 1000.0)


def response_time_ms(rho: float, service_ms: float) -> float:
    """M/M/1 mean response time per transfer at utilization ``rho``.

    Raises:
        ModelError: at or beyond saturation (rho >= 1).
    """
    if not 0.0 <= rho < 1.0:
        raise ModelError(f"utilization {rho} outside [0, 1)")
    return service_ms / (1.0 - rho)


def max_txn_rate(c_E: float, num_disks: int, service_ms: float) -> float:
    """Transactions/second at which the disks saturate."""
    _check(c_E, num_disks, service_ms)
    transfers_per_second = num_disks * (1000.0 / service_ms)
    return transfers_per_second / c_E


def txn_response_ms(txn_rate: float, c_E: float, num_disks: int,
                    service_ms: float) -> float:
    """Mean response time of one whole transaction (its c_E transfers
    served at the prevailing utilization)."""
    rho = utilization(txn_rate, c_E, num_disks, service_ms)
    return c_E * response_time_ms(rho, service_ms)


def throughput_latency_curve(c_E: float, num_disks: int, service_ms: float,
                             points: int = 8) -> list:
    """``(txn_rate, txn_response_ms)`` pairs up to 95% of saturation."""
    if points < 2:
        raise ModelError("need at least two curve points")
    ceiling = max_txn_rate(c_E, num_disks, service_ms) * 0.95
    out = []
    for index in range(points):
        rate = ceiling * (index + 1) / points
        out.append((rate, txn_response_ms(rate, c_E, num_disks, service_ms)))
    return out


def saturation_gain(c_E_baseline: float, c_E_rda: float) -> float:
    """Relative increase in sustainable transaction rate from RDA.

    Independent of disk count and service time:
    rate_max ∝ 1 / c_E, so the gain is ``c_E_baseline / c_E_rda − 1``.
    """
    if min(c_E_baseline, c_E_rda) <= 0:
        raise ModelError("costs must be positive")
    return c_E_baseline / c_E_rda - 1.0
