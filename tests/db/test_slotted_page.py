"""Tests for the slotted-page record layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.slotted_page import PageFullError, SlottedPage
from repro.storage.page import PAGE_SIZE


class TestBasics:
    def test_empty_page(self):
        sp = SlottedPage.empty()
        assert sp.slot_count == 0
        assert sp.record_count == 0
        assert sp.slots() == []

    def test_insert_read(self):
        sp = SlottedPage.empty()
        slot = sp.insert(b"hello")
        assert sp.read(slot) == b"hello"
        assert sp.record_count == 1

    def test_insert_assigns_increasing_slots(self):
        sp = SlottedPage.empty()
        assert [sp.insert(b"a"), sp.insert(b"b"), sp.insert(b"c")] == [0, 1, 2]

    def test_update_same_slot(self):
        sp = SlottedPage.empty()
        slot = sp.insert(b"old")
        sp.update(slot, b"new and longer")
        assert sp.read(slot) == b"new and longer"

    def test_delete_leaves_tombstone(self):
        sp = SlottedPage.empty()
        a = sp.insert(b"a")
        b = sp.insert(b"b")
        assert sp.delete(a) == b"a"
        assert sp.slots() == [b]
        assert sp.slot_count == 2       # tombstone remains

    def test_tombstone_reused(self):
        sp = SlottedPage.empty()
        a = sp.insert(b"a")
        sp.insert(b"b")
        sp.delete(a)
        assert sp.insert(b"c") == a

    def test_read_bad_slot(self):
        sp = SlottedPage.empty()
        with pytest.raises(KeyError):
            sp.read(0)
        slot = sp.insert(b"x")
        sp.delete(slot)
        with pytest.raises(KeyError):
            sp.read(slot)

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage.empty().insert(b"")

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            SlottedPage.empty().insert("text")


class TestPlace:
    def test_place_at_future_slot(self):
        sp = SlottedPage.empty()
        sp.place(3, b"x")
        assert sp.read(3) == b"x"
        assert sp.slot_count == 4
        assert sp.slots() == [3]

    def test_place_overwrites(self):
        sp = SlottedPage.empty()
        slot = sp.insert(b"a")
        sp.place(slot, b"bb")
        assert sp.read(slot) == b"bb"

    def test_place_respects_capacity(self):
        sp = SlottedPage.empty()
        with pytest.raises(PageFullError):
            sp.place(0, b"z" * PAGE_SIZE)


class TestCapacity:
    def test_page_full_on_insert(self):
        sp = SlottedPage.empty()
        big = b"x" * 200
        inserted = 0
        with pytest.raises(PageFullError):
            for _ in range(100):
                sp.insert(big)
                inserted += 1
        assert 1 <= inserted < 100
        assert sp.used_bytes <= PAGE_SIZE

    def test_update_growth_bounded(self):
        sp = SlottedPage.empty()
        slot = sp.insert(b"a")
        with pytest.raises(PageFullError):
            sp.update(slot, b"z" * PAGE_SIZE)
        assert sp.read(slot) == b"a"    # unchanged on failure

    def test_free_space_decreases(self):
        sp = SlottedPage.empty()
        before = sp.free_space
        sp.insert(b"12345678")
        assert sp.free_space < before


class TestSerialization:
    def test_roundtrip(self):
        sp = SlottedPage.empty()
        a = sp.insert(b"alpha")
        sp.insert(b"beta")
        sp.delete(a)
        blob = sp.to_bytes()
        assert len(blob) == PAGE_SIZE
        again = SlottedPage.from_bytes(blob)
        assert again.slots() == sp.slots()
        assert again.read(1) == b"beta"

    def test_zero_page_parses_empty(self):
        sp = SlottedPage.from_bytes(bytes(PAGE_SIZE))
        assert sp.record_count == 0

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage.from_bytes(b"xx")

    def test_corrupt_directory_rejected(self):
        blob = bytearray(SlottedPage.empty().to_bytes())
        blob[0:2] = (5).to_bytes(2, "little")     # claims 5 slots
        blob[4:8] = (60000).to_bytes(2, "little") + (9000).to_bytes(2, "little")
        with pytest.raises(ValueError):
            SlottedPage.from_bytes(bytes(blob))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "update", "delete"]),
                              st.binary(min_size=1, max_size=40),
                              st.integers(0, 30)),
                    max_size=40))
    def test_random_ops_roundtrip(self, ops):
        """Property: a shadow dict and the page agree after any op
        sequence, across serialization."""
        sp = SlottedPage.empty()
        shadow = {}
        for op, data, pick in ops:
            if op == "insert":
                try:
                    slot = sp.insert(data)
                except PageFullError:
                    continue
                shadow[slot] = data
            elif shadow:
                slots = sorted(shadow)
                slot = slots[pick % len(slots)]
                if op == "update":
                    try:
                        sp.update(slot, data)
                    except PageFullError:
                        continue
                    shadow[slot] = data
                else:
                    sp.delete(slot)
                    del shadow[slot]
        again = SlottedPage.from_bytes(sp.to_bytes())
        assert set(again.slots()) == set(shadow)
        for slot, data in shadow.items():
            assert again.read(slot) == data
