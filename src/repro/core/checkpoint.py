"""Checkpointing disciplines (paper Section 2, "Checkpointing Schemes").

* **TOC** (transaction-oriented): every commit propagates the
  transaction's pages — this is just the FORCE discipline at EOT, so it
  needs no separate machinery; the paper models it with checkpoint cost
  ``c_c = 0``.
* **ACC** (action-consistent): taken between update statements; flushes
  the dirty buffer pages and writes a checkpoint record naming the
  transactions active at the checkpoint.  Crash recovery REDOes
  committed work from the last checkpoint record forward.

:class:`ACCCheckpointer` is dependency-injected (flush / log / active-set
callables) so it can be unit-tested without a full database; the
:class:`~repro.db.database.Database` wires the real ones in.  It also
tracks work done since the last checkpoint so a driver can checkpoint
every *I* cost units — the model's checkpoint interval.
"""

from __future__ import annotations

from ..obs.tracer import NULL_TRACER
from ..wal.records import CheckpointRecord


class ACCCheckpointer:
    """Action-consistent checkpoint generator.

    Args:
        flush_dirty: zero-arg callable flushing every dirty buffer page;
            returns the flushed page ids.
        append_and_force: callable taking a log record, appending it to
            the (redo) log and forcing it durable; returns the LSN.
        active_txn_ids: zero-arg callable returning ids of transactions
            active right now (the checkpoint is action-consistent, not
            transaction-consistent, so these may be non-empty).
        interval: cost units between automatic checkpoints (the model's
            ``I``); None disables :meth:`maybe_checkpoint`.
        tracer: event tracer; each checkpoint becomes a ``checkpoint``
            span carrying the flushed-page count and (with ``stats``)
            the transfers it cost.
        stats: shared page-transfer counters to bind to checkpoint spans.
        metrics: optional registry for ``checkpoint.taken``.
        on_checkpoint: optional callable invoked with the checkpoint
            record's LSN after each checkpoint (the database's
            conformance barrier).
    """

    def __init__(self, flush_dirty, append_and_force, active_txn_ids,
                 interval: float | None = None, tracer=None, stats=None,
                 metrics=None, on_checkpoint=None) -> None:
        self._flush_dirty = flush_dirty
        self._append_and_force = append_and_force
        self._active_txn_ids = active_txn_ids
        self._on_checkpoint = on_checkpoint
        self.interval = interval
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._stats = stats
        self._m_taken = (metrics.counter("checkpoint.taken")
                         if metrics is not None else None)
        self._work_since = 0.0
        self.checkpoints_taken = 0
        self.last_checkpoint_lsn = None

    def checkpoint(self) -> int:
        """Take a checkpoint now; returns the checkpoint record's LSN."""
        with self.tracer.span("checkpoint", stats=self._stats) as span:
            flushed = tuple(self._flush_dirty())
            record = CheckpointRecord(txn_id=0,
                                      active_txns=tuple(self._active_txn_ids()),
                                      flushed_pages=flushed)
            lsn = self._append_and_force(record)
            span.set(flushed=len(flushed), lsn=lsn)
        if self._m_taken is not None:
            self._m_taken.inc()
        self.checkpoints_taken += 1
        self.last_checkpoint_lsn = lsn
        self._work_since = 0.0
        if self._on_checkpoint is not None:
            self._on_checkpoint(lsn)
        return lsn

    def note_work(self, cost_units: float) -> None:
        """Accumulate work toward the next automatic checkpoint."""
        self._work_since += cost_units

    def maybe_checkpoint(self) -> int | None:
        """Checkpoint if the configured interval has elapsed.

        Returns the LSN if a checkpoint was taken, else None.
        """
        if self.interval is None or self._work_since < self.interval:
            return None
        return self.checkpoint()
