"""Reliability arithmetic for the paper's motivation (Section 1).

The paper motivates array-based media recovery with two numbers:

* a disk MTTF of **30,000 hours** (footnote 1), and
* the observation that a large installation's time-to-media-failure is
  then *"less than 25 days"* — with 200 independent disks,
  30,000 h / 200 ≈ 6.25 days between disk failures somewhere.

This module provides the standard closed forms so those claims — and
the redundancy alternatives' — can be compared:

* unprotected farm: MTTDL = MTTF / n;
* mirrored pairs:   MTTDL ≈ MTTF² / (2 n_pairs · MTTR);
* RAID-5 group:     MTTDL ≈ MTTF² / (G (G-1) · MTTR) for a G-disk group,
  and / n_groups for a farm of groups.

All times in hours.
"""

from __future__ import annotations

from ..errors import ModelError

PAPER_DISK_MTTF_HOURS = 30_000.0
"""The paper's assumed per-disk MTTF (footnote 1)."""


def _check(mttf: float, count: int, mttr: float = 1.0) -> None:
    if mttf <= 0 or mttr <= 0:
        raise ModelError("MTTF and MTTR must be positive")
    if count < 1:
        raise ModelError("need at least one disk")


def farm_mttf(disk_mttf: float, disks: int) -> float:
    """Mean time to the first disk failure among ``disks`` drives."""
    _check(disk_mttf, disks)
    return disk_mttf / disks


def unprotected_mttdl(disk_mttf: float, disks: int) -> float:
    """Data loss on the first failure: MTTDL equals the farm MTTF."""
    return farm_mttf(disk_mttf, disks)


def mirrored_mttdl(disk_mttf: float, pairs: int, mttr: float) -> float:
    """MTTDL of ``pairs`` mirrored pairs with repair time ``mttr``:
    data dies when the mirror fails during a repair window."""
    _check(disk_mttf, pairs, mttr)
    per_pair = disk_mttf ** 2 / (2.0 * mttr)
    return per_pair / pairs


def raid5_group_mttdl(disk_mttf: float, group_disks: int,
                      mttr: float) -> float:
    """MTTDL of one ``group_disks``-wide parity group (N data + 1
    parity): loss needs a second failure inside the repair window."""
    _check(disk_mttf, group_disks, mttr)
    if group_disks < 2:
        raise ModelError("a parity group needs at least 2 disks")
    return disk_mttf ** 2 / (group_disks * (group_disks - 1) * mttr)


def raid5_farm_mttdl(disk_mttf: float, group_disks: int, groups: int,
                     mttr: float) -> float:
    """MTTDL of a farm of ``groups`` independent parity groups."""
    _check(disk_mttf, groups, mttr)
    return raid5_group_mttdl(disk_mttf, group_disks, mttr) / groups


def raid6_group_mttdl(disk_mttf: float, group_disks: int,
                      mttr: float) -> float:
    """MTTDL of a double-parity (RAID-6) group: loss needs a *third*
    failure inside two nested repair windows,

        MTTDL ≈ MTTF³ / (G (G−1)(G−2) · MTTR²).
    """
    _check(disk_mttf, group_disks, mttr)
    if group_disks < 3:
        raise ModelError("a double-parity group needs at least 3 disks")
    return disk_mttf ** 3 / (group_disks * (group_disks - 1)
                             * (group_disks - 2) * mttr ** 2)


def raid6_farm_mttdl(disk_mttf: float, group_disks: int, groups: int,
                     mttr: float) -> float:
    """MTTDL of a farm of double-parity groups."""
    _check(disk_mttf, groups, mttr)
    return raid6_group_mttdl(disk_mttf, group_disks, mttr) / groups


def storage_overhead(scheme: str, group_size: int = 10) -> float:
    """Fraction of raw capacity spent on redundancy.

    ``"none"`` → 0, ``"mirroring"`` → 0.5, ``"raid5"`` → 1/(N+1),
    ``"twin-parity"`` → 2/(N+2) (the RDA organization),
    ``"raid6"`` → 2/(N+2) (P+Q double parity).
    """
    if scheme == "none":
        return 0.0
    if scheme == "mirroring":
        return 0.5
    if group_size < 2:
        raise ModelError("group_size must be at least 2")
    if scheme == "raid5":
        return 1.0 / (group_size + 1)
    if scheme in ("twin-parity", "raid6"):
        return 2.0 / (group_size + 2)
    raise ModelError(f"unknown scheme {scheme!r}")


def paper_motivation_table(disks: int = 200, mttr_hours: float = 24.0,
                           group_size: int = 10) -> list:
    """The intro's comparison, as rows of
    ``(scheme, mttdl_hours, overhead)`` for a ``disks``-drive farm."""
    mttf = PAPER_DISK_MTTF_HOURS
    raid_groups = max(1, disks // (group_size + 1))
    twin_groups = max(1, disks // (group_size + 2))
    return [
        ("unprotected", unprotected_mttdl(mttf, disks),
         storage_overhead("none")),
        ("mirroring", mirrored_mttdl(mttf, disks // 2, mttr_hours),
         storage_overhead("mirroring")),
        ("raid5", raid5_farm_mttdl(mttf, group_size + 1, raid_groups,
                                   mttr_hours),
         storage_overhead("raid5", group_size)),
        ("twin-parity (RDA)", raid5_farm_mttdl(mttf, group_size + 2,
                                               twin_groups, mttr_hours),
         storage_overhead("twin-parity", group_size)),
    ]
