"""Crash- and media-recovery tests across all eight configurations.

The invariant: after any crash + restart, the database equals the serial
effects of committed transactions only (atomicity + durability).
"""

import pytest

from repro.db import Database, preset
from repro.storage import make_page

PAGE_PRESETS = ["page-force-rda", "page-force-log",
                "page-noforce-rda", "page-noforce-log"]
RECORD_PRESETS = ["record-force-rda", "record-force-log",
                  "record-noforce-rda", "record-noforce-log"]


def make_db(name, **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    db = Database(preset(name, **defaults))
    if db.config.record_logging:
        db.format_record_pages(range(db.num_data_pages))
    return db


@pytest.fixture(params=PAGE_PRESETS)
def pdb(request):
    return make_db(request.param)


@pytest.fixture(params=RECORD_PRESETS)
def rdb(request):
    return make_db(request.param)


class TestPageModeCrash:
    def test_committed_survives(self, pdb):
        t = pdb.begin()
        pdb.write_page(t, 0, make_page(b"durable"))
        pdb.commit(t)
        pdb.crash()
        stats = pdb.recover()
        assert t in stats["winners"]
        t2 = pdb.begin()
        assert pdb.read_page(t2, 0) == make_page(b"durable")

    def test_uncommitted_buffered_vanishes(self, pdb):
        t = pdb.begin()
        pdb.write_page(t, 0, make_page(b"ghost"))
        pdb.crash()
        pdb.recover()
        t2 = pdb.begin()
        assert pdb.read_page(t2, 0) == bytes(512)

    def test_uncommitted_stolen_rolled_back(self, pdb):
        pdb.load_pages({0: make_page(b"base")})
        loser = pdb.begin()
        pdb.write_page(loser, 0, make_page(b"stolen"))
        spill = pdb.begin()
        for p in range(4, 18):
            pdb.write_page(spill, p, make_page(bytes([p])))
        pdb.commit(spill)
        assert pdb.disk_page(0) == make_page(b"stolen")
        pdb.crash()
        stats = pdb.recover()
        assert loser in stats["losers"]
        t2 = pdb.begin()
        assert pdb.read_page(t2, 0) == make_page(b"base")
        assert pdb.verify_parity() == []

    def test_mixed_winners_and_losers_same_group(self, pdb):
        pages = pdb.array.geometry.group_pages(0)
        winner = pdb.begin()
        pdb.write_page(winner, pages[0], make_page(b"win"))
        pdb.commit(winner)
        loser = pdb.begin()
        pdb.write_page(loser, pages[1], make_page(b"lose"))
        spill = pdb.begin()
        for p in range(8, 20):
            pdb.write_page(spill, p, make_page(bytes([p])))
        pdb.commit(spill)
        pdb.crash()
        pdb.recover()
        t = pdb.begin()
        assert pdb.read_page(t, pages[0]) == make_page(b"win")
        assert pdb.read_page(t, pages[1]) == bytes(512)
        assert pdb.verify_parity() == []

    def test_double_crash(self, pdb):
        t = pdb.begin()
        pdb.write_page(t, 0, make_page(b"v"))
        pdb.commit(t)
        pdb.crash()
        pdb.recover()
        pdb.crash()
        pdb.recover()
        t2 = pdb.begin()
        assert pdb.read_page(t2, 0) == make_page(b"v")

    def test_recovery_is_idempotent_under_repeat(self, pdb):
        loser = pdb.begin()
        pdb.write_page(loser, 0, make_page(b"x"))
        spill = pdb.begin()
        for p in range(4, 18):
            pdb.write_page(spill, p, make_page(bytes([p])))
        pdb.commit(spill)
        pdb.crash()
        first = pdb.recover()
        pdb.crash()
        second = pdb.recover()
        assert loser not in second["losers"]    # abort record persisted
        t = pdb.begin()
        assert pdb.read_page(t, 0) == bytes(512)

    def test_work_after_recovery(self, pdb):
        t = pdb.begin()
        pdb.write_page(t, 0, make_page(b"a"))
        pdb.commit(t)
        pdb.crash()
        pdb.recover()
        t2 = pdb.begin()
        pdb.write_page(t2, 0, make_page(b"b"))
        pdb.commit(t2)
        t3 = pdb.begin()
        assert pdb.read_page(t3, 0) == make_page(b"b")
        assert pdb.verify_parity() == []


class TestNoForceSpecifics:
    @pytest.fixture(params=["page-noforce-rda", "page-noforce-log"])
    def db(self, request):
        return make_db(request.param)

    def test_committed_unflushed_redone(self, db):
        t = db.begin()
        db.write_page(t, 0, make_page(b"only-in-log"))
        db.commit(t)
        assert db.disk_page(0) != make_page(b"only-in-log")
        db.crash()
        stats = db.recover()
        assert stats["redo_applied"] >= 1
        assert db.disk_page(0) == make_page(b"only-in-log")

    def test_checkpoint_bounds_redo(self, db):
        for i in range(3):
            t = db.begin()
            db.write_page(t, i, make_page(bytes([i + 1])))
            db.commit(t)
        db.checkpoint()
        t = db.begin()
        db.write_page(t, 5, make_page(b"after-cp"))
        db.commit(t)
        db.crash()
        stats = db.recover()
        assert stats["redo_applied"] == 1     # only the post-checkpoint txn
        t2 = db.begin()
        for i in range(3):
            assert db.read_page(t2, i) == make_page(bytes([i + 1]))
        assert db.read_page(t2, 5) == make_page(b"after-cp")

    def test_residue_after_loser_steal_recovers(self, db):
        """Committed-unflushed data under a loser's stolen page."""
        t = db.begin()
        db.write_page(t, 0, make_page(b"committed"))
        db.commit(t)                                  # residue on page 0
        loser = db.begin()
        db.write_page(loser, 0, make_page(b"loser"))
        spill = db.begin()
        for p in range(4, 18):
            db.write_page(spill, p, make_page(bytes([p])))
        db.commit(spill)
        db.crash()
        db.recover()
        t2 = db.begin()
        assert db.read_page(t2, 0) == make_page(b"committed")
        assert db.verify_parity() == []


class TestRecordModeCrash:
    def test_committed_record_survives(self, rdb):
        t = rdb.begin()
        slot = rdb.insert_record(t, 0, b"durable")
        rdb.commit(t)
        rdb.crash()
        rdb.recover()
        t2 = rdb.begin()
        assert rdb.read_record(t2, 0, slot) == b"durable"

    def test_loser_update_rolled_back(self, rdb):
        t = rdb.begin()
        slot = rdb.insert_record(t, 0, b"v0")
        rdb.commit(t)
        if rdb.checkpointer is not None:
            rdb.checkpoint()
        loser = rdb.begin()
        rdb.update_record(loser, 0, slot, b"v1")
        spill = rdb.begin()
        for p in range(1, 14):
            rdb.insert_record(spill, p, b"spill")
        rdb.commit(spill)
        rdb.crash()
        rdb.recover()
        t2 = rdb.begin()
        assert rdb.read_record(t2, 0, slot) == b"v0"
        assert rdb.verify_parity() == []

    def test_interleaved_txns_on_one_page(self, rdb):
        setup = rdb.begin()
        a = rdb.insert_record(setup, 0, b"aaa")
        b = rdb.insert_record(setup, 0, b"bbb")
        rdb.commit(setup)
        winner, loser = rdb.begin(), rdb.begin()
        rdb.update_record(winner, 0, a, b"WIN")
        rdb.update_record(loser, 0, b, b"LOSE")
        rdb.commit(winner)
        rdb.crash()
        rdb.recover()
        t = rdb.begin()
        assert rdb.read_record(t, 0, a) == b"WIN"
        assert rdb.read_record(t, 0, b) == b"bbb"

    def test_loser_insert_and_delete_undone(self, rdb):
        setup = rdb.begin()
        keep = rdb.insert_record(setup, 0, b"keep")
        rdb.commit(setup)
        if rdb.checkpointer is not None:
            rdb.checkpoint()
        loser = rdb.begin()
        ghost = rdb.insert_record(loser, 0, b"ghost")
        rdb.delete_record(loser, 0, keep)
        spill = rdb.begin()
        for p in range(1, 14):
            rdb.insert_record(spill, p, b"spill")
        rdb.commit(spill)
        rdb.crash()
        rdb.recover()
        t = rdb.begin()
        assert rdb.read_record(t, 0, keep) == b"keep"
        with pytest.raises(KeyError):
            rdb.read_record(t, 0, ghost)


class TestMediaRecovery:
    @pytest.mark.parametrize("name", PAGE_PRESETS)
    def test_single_disk_failure_full_rebuild(self, name):
        db = make_db(name)
        for p in range(0, db.num_data_pages, 3):
            t = db.begin()
            db.write_page(t, p, make_page(bytes([p % 250 + 1])))
            db.commit(t)
        if db.checkpointer is not None:
            db.checkpoint()
        else:
            db.buffer.flush_all_dirty()
        db.media_failure(2)
        db.media_recover(2)
        for p in range(0, db.num_data_pages, 3):
            assert db.disk_page(p) == make_page(bytes([p % 250 + 1])), (name, p)
        assert db.verify_parity() == []

    def test_degraded_reads_while_failed(self):
        db = make_db("page-force-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"v"))
        db.commit(t)
        victim = db.array.geometry.data_address(0).disk
        db.media_failure(victim)
        t2 = db.begin()
        assert db.read_page(t2, 0) == make_page(b"v")   # degraded read
        db.media_recover(victim)
        assert db.disk_page(0) == make_page(b"v")

    def test_rebuild_with_active_dirty_group(self):
        db = make_db("page-force-rda")
        db.load_pages({0: make_page(b"base")})
        t = db.begin()
        db.write_page(t, 0, make_page(b"active"))
        spill = db.begin()
        for p in range(4, 18):
            db.write_page(spill, p, make_page(bytes([p])))
        db.commit(spill)
        group = db.array.geometry.group_of(0)
        assert db.rda.dirty_set.is_dirty(group)
        victim = db.array.geometry.data_address(0).disk
        db.media_failure(victim)
        db.media_recover(victim)
        # undo capability survived the rebuild
        db.abort(t)
        assert db.disk_page(0) == make_page(b"base")
