"""Group commit: batched log forces with a configurable flush horizon.

A log force is the dominant fixed cost of a small committing
transaction: a partial log page is flushed to both mirror copies for
one transaction's few hundred bytes.  Group commit amortizes it — the
coordinator collects the forces requested during a commit, acknowledges
the transaction, and performs one *batched* force after every
``flush_horizon`` commits, so H commits' records ride the same page
flushes.

The batching window is bounded by the crash contract: a crash (or an
explicit barrier such as a checkpoint or an abort's immediate force)
first drains the coordinator, so every acknowledged commit is durable
before any post-crash state is observable.  Forces requested *outside*
a deferral window — the WAL rule's pre-steal forces, abort records —
bypass the coordinator and hit the devices immediately; a later batched
flush of already-flushed bytes is free (the log device charges only
new bytes past the charged watermark).

``flush_horizon=1`` degenerates to classical per-commit forcing.
"""

from __future__ import annotations

from contextlib import contextmanager

from .log import LogManager


class GroupCommitCoordinator:
    """Collects deferred log forces and flushes them in batches.

    One coordinator is shared by every log participating in group
    commit (the shards' WALs and the global commit log of a
    :class:`~repro.db.sharded.ShardedDatabase`).

    Args:
        flush_horizon: commits per batched force (H).  1 = force at
            every commit (the classical discipline).
        metrics: optional registry; counts
            ``wal.group_commit.deferred_forces`` and
            ``wal.group_commit.flushes``.
    """

    def __init__(self, flush_horizon: int = 1, metrics=None) -> None:
        if flush_horizon < 1:
            raise ValueError("flush_horizon must be at least 1")
        self.flush_horizon = flush_horizon
        self._depth = 0
        self._pending: list = []        # logs with deferred forces, in order
        self._commits_since_flush = 0
        self.deferred_forces = 0        # force requests absorbed by batching
        self.flushes = 0                # batched flushes performed
        self._m_deferred = (metrics.counter("wal.group_commit.deferred_forces")
                            if metrics is not None else None)
        self._m_flushes = (metrics.counter("wal.group_commit.flushes")
                           if metrics is not None else None)

    @property
    def deferring(self) -> bool:
        """True inside a :meth:`deferred` window."""
        return self._depth > 0

    @property
    def pending_logs(self) -> int:
        """Logs with a force outstanding."""
        return len(self._pending)

    @contextmanager
    def deferred(self):
        """A window in which participating logs' forces are deferred
        (wrap one commit's log work in it)."""
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1

    def defer_force(self, log) -> None:
        """Record that ``log`` owes a force (called by the log itself)."""
        if log not in self._pending:
            self._pending.append(log)
        self.deferred_forces += 1
        if self._m_deferred is not None:
            self._m_deferred.inc()

    def covers(self, log) -> bool:
        """True while ``log`` has a deferred force outstanding — its
        whole tail is then durable-at-crash under the drain contract."""
        return log in self._pending

    def note_commit(self) -> None:
        """One commit completed; flush if the horizon is reached."""
        self._commits_since_flush += 1
        if self._commits_since_flush >= self.flush_horizon:
            self.flush()

    def flush(self) -> int:
        """Force every log with a deferred force; returns how many had
        one outstanding.  Idempotent — safe as a crash/checkpoint
        barrier.  Each log leaves the pending list only *after* its
        force completes, so a flush interrupted by a simulated power
        cut keeps the rest pending and the crash drain finishes the
        job (acknowledged commits stay durable)."""
        self._commits_since_flush = 0
        flushed = self._drain()
        if flushed:
            self.flushes += 1
            if self._m_flushes is not None:
                self._m_flushes.inc()
        return flushed

    def _drain(self) -> int:
        """Force the pending logs; returns how many were forced.

        Split out of :meth:`flush` so coordinators spanning process
        boundaries (the worker facade's) can extend the drain to remote
        participants while keeping the horizon/counter bookkeeping in
        one place.
        """
        flushed = 0
        while self._pending:
            self._pending[0].force_now()
            self._pending.pop(0)
            flushed += 1
        return flushed

    def absorb_deferred(self, count: int) -> None:
        """Fold ``count`` deferral events performed by a *remote*
        participant (a shard worker's local coordinator) into this
        coordinator's accounting, so facade-level statistics and
        metrics match the in-process engine exactly."""
        if count <= 0:
            return
        self.deferred_forces += count
        if self._m_deferred is not None:
            self._m_deferred.inc(count)


class GroupCommitLog(LogManager):
    """A duplexed log whose forces may be deferred to a coordinator.

    Inside a coordinator's :meth:`~GroupCommitCoordinator.deferred`
    window, :meth:`force` registers with the coordinator instead of
    flushing; everywhere else it behaves exactly like
    :class:`~repro.wal.log.LogManager` (WAL-rule forces stay
    synchronous).
    """

    def __init__(self, *args, coordinator=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator
        # Physical partial-page accounting: each force containing new
        # bytes rewrites (and re-charges) the current partial page.
        # The plain LogManager's charge-once watermark already *assumes*
        # idealized batching; making the rewrite explicit here is what
        # lets group commit's amortization show up in the transfer
        # counts (see docs/observability.md).
        for device in self._devices:
            device.reforce_partial = True

    def force(self) -> None:
        if self.coordinator is not None and self.coordinator.deferring:
            self.coordinator.defer_force(self)
            return
        super().force()

    def force_now(self) -> None:
        """The real force, bypassing deferral (coordinator flush path)."""
        LogManager.force(self)

    @property
    def durable_lsn(self) -> int:
        """With a batched force pending, the whole tail is durable: a
        crash drains the coordinator before truncating log tails."""
        if self.coordinator is not None and self.coordinator.covers(self):
            return self.last_lsn
        return self.forced_lsn
