#!/usr/bin/env python3
"""Media recovery: every disk fails once, the database survives.

Exercises the redundancy claims of Section 3: single-disk failures are
masked by degraded reads, and a replaced disk is rebuilt from group
mates + parity.  Includes the subtle twin-parity cases: losing the
*working* twin of a dirty group (undo survives) and losing the
*committed* twin (undo is gone — the owning transaction gets pinned to
commit).

Run:  python examples/media_recovery.py
"""

from repro.db import Database, preset
from repro.errors import RecoveryError
from repro.sim import Simulator, WorkloadSpec
from repro.storage import make_page


def main():
    db = Database(preset("page-force-rda", group_size=5, num_groups=20,
                         buffer_capacity=30))
    spec = WorkloadSpec(concurrency=4, pages_per_txn=6, communality=0.5,
                        abort_probability=0.05)
    sim = Simulator(db, spec, seed=11)

    print("=== rolling failure of every disk under load ===")
    for disk_id in range(len(db.array.disks)):
        sim.run(sim.report.transactions + 12)
        db.media_failure(disk_id)
        report = db.media_recover(disk_id, on_lost_undo="adopt")
        pinned = [t.txn_id for t in db.txns.active_transactions()
                  if t.must_commit]
        note = f", pinned txns {pinned}" if pinned else ""
        print(f"disk {disk_id}: rebuilt {report.slots_rebuilt} slots"
              f"{note}; scrub: {db.verify_parity() or 'clean'}")
    print(sim.report.summary())

    print("\n=== losing the WORKING twin of a dirty group ===")
    db = Database(preset("page-force-rda", group_size=4, num_groups=8,
                         buffer_capacity=6))
    db.load_pages({0: make_page(b"before")})
    t = db.begin()
    db.write_page(t, 0, make_page(b"uncommitted"))
    spill = db.begin()
    for p in range(4, 16):
        db.write_page(spill, p, make_page(bytes([p])))
    db.commit(spill)
    group = db.array.geometry.group_of(0)
    entry = db.rda.dirty_set.entry(group)
    working_disk = db.array.geometry.parity_addresses(group)[entry.working_twin].disk
    db.media_failure(working_disk)
    db.media_recover(working_disk)
    db.abort(t)
    print("after rebuild + abort, page 0:", db.disk_page(0)[:6],
          "(undo capability survived the failure)")

    print("\n=== losing the COMMITTED twin of a dirty group ===")
    db = Database(preset("page-force-rda", group_size=4, num_groups=8,
                         buffer_capacity=6))
    t = db.begin()
    db.write_page(t, 0, make_page(b"pinned"))
    spill = db.begin()
    for p in range(4, 16):
        db.write_page(spill, p, make_page(bytes([p])))
    db.commit(spill)
    group = db.array.geometry.group_of(0)
    entry = db.rda.dirty_set.entry(group)
    committed_disk = db.array.geometry.parity_addresses(group)[1 - entry.working_twin].disk
    db.media_failure(committed_disk)
    report = db.media_recover(committed_disk, on_lost_undo="adopt")
    print(f"undo lost for groups {list(report.lost_undo_groups)}; "
          f"transaction {t} is now pinned to commit:")
    try:
        db.abort(t)
    except RecoveryError as error:
        print("  abort refused:", error)
    db.commit(t)
    print("  commit succeeded; scrub:", db.verify_parity() or "clean")


if __name__ == "__main__":
    main()
