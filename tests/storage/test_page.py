"""Unit tests for page primitives, XOR algebra, and parity headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.page import (HEADER_SIZE, PAGE_SIZE, ZERO_PAGE, NO_PAGE,
                                NO_TXN, ParityHeader, TwinState, compute_parity,
                                make_page, pack_header,
                                reconstruct_before_image, unpack_header,
                                xor_into, xor_pages)

pages = st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE)


class TestMakePage:
    def test_zero_fill(self):
        assert make_page() == ZERO_PAGE
        assert len(make_page()) == PAGE_SIZE

    def test_bytes_fill_repeats(self):
        page = make_page(b"ab")
        assert page[:4] == b"abab"
        assert len(page) == PAGE_SIZE

    def test_str_fill(self):
        assert make_page("xy")[:2] == b"xy"

    def test_int_fill(self):
        assert make_page(7) == bytes([7]) * PAGE_SIZE

    def test_int_fill_out_of_range(self):
        with pytest.raises(ValueError):
            make_page(300)

    def test_fill_longer_than_page_truncates(self):
        page = make_page(b"z" * (PAGE_SIZE + 100))
        assert len(page) == PAGE_SIZE


class TestXor:
    def test_identity(self):
        assert xor_pages() == ZERO_PAGE

    def test_self_inverse(self):
        page = make_page(b"data")
        assert xor_pages(page, page) == ZERO_PAGE

    def test_zero_is_neutral(self):
        page = make_page(b"data")
        assert xor_pages(page, ZERO_PAGE) == page

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            xor_pages(b"short")

    def test_xor_into_matches_xor_pages(self):
        a, b = make_page(1), make_page(2)
        acc = bytearray(a)
        xor_into(acc, b)
        assert bytes(acc) == xor_pages(a, b)

    def test_xor_into_size_check(self):
        with pytest.raises(ValueError):
            xor_into(bytearray(3), make_page())

    @given(pages, pages, pages)
    def test_associative_commutative(self, a, b, c):
        assert xor_pages(a, xor_pages(b, c)) == xor_pages(xor_pages(a, b), c)
        assert xor_pages(a, b) == xor_pages(b, a)

    @given(st.lists(pages, min_size=1, max_size=6))
    def test_parity_reconstructs_any_member(self, data):
        parity = compute_parity(data)
        for i, member in enumerate(data):
            others = [p for j, p in enumerate(data) if j != i]
            assert xor_pages(parity, *others) == member


class TestBeforeImageIdentity:
    """The core undo identity of the paper: D_old = (P ⊕ P') ⊕ D_new."""

    @given(st.lists(pages, min_size=2, max_size=6), st.data())
    def test_single_update(self, group, data):
        committed = compute_parity(group)
        index = data.draw(st.integers(0, len(group) - 1))
        new_page = data.draw(pages)
        working = xor_pages(committed, group[index], new_page)
        recovered = reconstruct_before_image(working, committed, new_page)
        assert recovered == group[index]

    @given(st.lists(pages, min_size=2, max_size=4),
           st.lists(pages, min_size=1, max_size=5), st.data())
    def test_repeated_resteal_same_page(self, group, versions, data):
        """Re-stealing the same page keeps the identity valid (paper
        Figure 3's self-loop on the dirty state)."""
        committed = compute_parity(group)
        index = data.draw(st.integers(0, len(group) - 1))
        working = committed
        current = group[index]
        for version in versions:
            working = xor_pages(working, current, version)
            current = version
        assert reconstruct_before_image(working, committed, current) == group[index]

    @given(st.lists(pages, min_size=3, max_size=5), pages, pages, st.data())
    def test_survives_logged_write_to_both_twins(self, group, new_i, new_j, data):
        """A logged write applied to BOTH twins preserves the identity
        for the unlogged dirty page (paper Figure 6 discussion)."""
        committed = compute_parity(group)
        i = data.draw(st.integers(0, len(group) - 1))
        j = data.draw(st.integers(0, len(group) - 1).filter(lambda x: x != i))
        working = xor_pages(committed, group[i], new_i)      # unlogged steal of i
        delta_j = xor_pages(group[j], new_j)                 # logged write of j
        working = xor_pages(working, delta_j)
        committed = xor_pages(committed, delta_j)
        assert reconstruct_before_image(working, committed, new_i) == group[i]


class TestParityHeader:
    def test_defaults(self):
        header = ParityHeader()
        assert header.timestamp == 0
        assert header.txn_id == NO_TXN
        assert header.dirty_page_index == NO_PAGE
        assert header.state is TwinState.OBSOLETE

    def test_with_replaces_fields(self):
        header = ParityHeader().with_(timestamp=9, state=TwinState.WORKING)
        assert header.timestamp == 9
        assert header.state is TwinState.WORKING
        assert header.txn_id == NO_TXN

    def test_pack_size(self):
        assert len(pack_header(ParityHeader())) == HEADER_SIZE

    @given(st.integers(0, 2**40), st.integers(-1, 2**31), st.integers(-1, 200),
           st.sampled_from(list(TwinState)))
    def test_roundtrip(self, ts, txn, idx, state):
        header = ParityHeader(ts, txn, idx, state)
        assert unpack_header(pack_header(header)) == header

    def test_unpack_rejects_short_blob(self):
        with pytest.raises(ValueError):
            unpack_header(b"\x00" * 4)

    def test_unpack_rejects_bad_magic(self):
        blob = bytearray(pack_header(ParityHeader()))
        blob[-1] ^= 0xFF
        with pytest.raises(ValueError):
            unpack_header(bytes(blob))
