"""Tests for the sensitivity-sweep helper."""

import pytest

from repro.errors import ModelError
from repro.model.page_logging import force_toc, noforce_acc
from repro.model.record_logging import noforce_acc as record_noforce
from repro.model.sensitivity import SweepResult, rda_gain_sweep, sweep


class TestSweepMechanics:
    def test_basic_sweep_shape(self):
        result = sweep(force_toc, "C", (0.1, 0.5, 0.9))
        assert result.values == (0.1, 0.5, 0.9)
        assert len(result.baseline) == 3
        assert len(result.with_rda) == 3
        assert len(result.gains) == 3

    def test_overrides_apply(self):
        narrow = sweep(force_toc, "P", (2, 6), C=0.9)
        assert all(g > 0 for g in narrow.gains)

    def test_unknown_parameter(self):
        with pytest.raises(ModelError):
            sweep(force_toc, "T", (1, 2))

    def test_gain_shorthand(self):
        pairs = rda_gain_sweep(force_toc, "C", (0.1, 0.9))
        assert [v for v, _ in pairs] == [0.1, 0.9]

    def test_format_table(self):
        table = sweep(force_toc, "C", (0.1, 0.9)).format_table()
        assert "RDA gain vs C" in table
        assert table.count("\n") >= 3


class TestSensitivityShapes:
    """Directional claims implied by the model's structure."""

    def test_gain_rises_with_concurrency(self):
        """More concurrent update transactions -> more pending pages K
        -> higher p_l -> the benefit shrinks; but the baseline's
        backout/log pressure grows faster: net gain still positive."""
        gains = dict(rda_gain_sweep(force_toc, "P", (2, 6, 24), C=0.9))
        assert all(g > 0 for g in gains.values())

    def test_gain_rises_with_update_probability(self):
        gains = [g for _, g in rda_gain_sweep(force_toc, "p_u",
                                              (0.1, 0.5, 0.9), C=0.9)]
        assert gains == sorted(gains)

    def test_gain_falls_with_group_size(self):
        """Figure 13's dual: larger N packs K into fewer groups."""
        gains = [g for _, g in rda_gain_sweep(force_toc, "N",
                                              (2, 10, 50), C=0.9)]
        assert gains == sorted(gains, reverse=True)

    def test_bigger_database_helps(self):
        gains = [g for _, g in rda_gain_sweep(force_toc, "S",
                                              (500, 5000, 50000), C=0.9)]
        assert gains == sorted(gains)

    def test_abort_probability_dilutes_rda_gain(self):
        """RDA's win is on the forward path (no durable before-images);
        its parity rewind costs about as much per abort as a log
        restore, so a higher abort rate mildly dilutes the gain without
        ever erasing it."""
        gains = [g for _, g in rda_gain_sweep(record_noforce, "p_b",
                                              (0.0, 0.05, 0.2), C=0.9)]
        assert gains == sorted(gains, reverse=True)
        assert all(g > 0 for g in gains)

    def test_buffer_size_affects_steal_probability(self):
        """A tighter buffer steals more pages, raising what ¬FORCE RDA
        can save."""
        result = sweep(noforce_acc, "B", (60, 300), C=0.5)
        assert result.gains[0] > result.gains[1]
