"""Tier-equivalence property tests for the vectorized page kernels.

Every registered kernel tier (numpy when installed, stdlib, reference)
must agree **byte-for-byte** with the pure-loop reference tier on all
five operations, including the degenerate edges the parity algebra
relies on: the zero-operand reduction (XOR identity), the zero
coefficient (annihilator), and the identity coefficient.  The public
page/GF functions are additionally exercised under each tier via
``use_kernel`` to prove the rewiring did not change their semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import kernels
from repro.storage.gf256 import (gf_pow, page_mul, page_xor, q_parity,
                                 solve_two_erasures)
from repro.storage.page import PAGE_SIZE, xor_into, xor_pages

REFERENCE = kernels.KERNELS["reference"]
TIERS = kernels.available_tiers()

pages = st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE)
coefficients = st.integers(0, 255)
page_lists = st.lists(pages, min_size=0, max_size=6)


def tier_params():
    return pytest.mark.parametrize("tier", TIERS)


class TestTierRegistry:
    def test_reference_and_stdlib_always_present(self):
        assert "reference" in TIERS
        assert "stdlib" in TIERS

    def test_active_tier_is_registered(self):
        assert kernels.active_tier() in TIERS

    def test_set_kernel_rejects_unknown(self):
        with pytest.raises(ValueError):
            kernels.set_kernel("cuda")

    def test_use_kernel_restores_previous(self):
        before = kernels.active_tier()
        with kernels.use_kernel("reference"):
            assert kernels.active_tier() == "reference"
        assert kernels.active_tier() == before

    def test_mul_table_zero_and_identity_rows(self):
        assert kernels.MUL_TABLES[0] == bytes(256)
        assert kernels.MUL_TABLES[1] == bytes(range(256))


@tier_params()
class TestKernelEquivalence:
    """Each tier agrees with the reference loops on raw kernel ops."""

    @given(a=pages, b=pages)
    def test_xor(self, tier, a, b):
        assert kernels.KERNELS[tier].xor(a, b) == REFERENCE.xor(a, b)

    @given(group=page_lists)
    def test_xor_accumulate(self, tier, group):
        kernel = kernels.KERNELS[tier]
        assert (kernel.xor_accumulate(group, PAGE_SIZE)
                == REFERENCE.xor_accumulate(group, PAGE_SIZE))

    def test_xor_accumulate_zero_operands_is_identity(self, tier):
        assert kernels.KERNELS[tier].xor_accumulate([], PAGE_SIZE) == bytes(PAGE_SIZE)

    @given(acc=pages, page=pages)
    def test_xor_inplace(self, tier, acc, page):
        mine, theirs = bytearray(acc), bytearray(acc)
        kernels.KERNELS[tier].xor_inplace(mine, page)
        REFERENCE.xor_inplace(theirs, page)
        assert mine == theirs

    @given(coefficient=coefficients, page=pages)
    def test_gf_scale(self, tier, coefficient, page):
        assert (kernels.KERNELS[tier].gf_scale(coefficient, page)
                == REFERENCE.gf_scale(coefficient, page))

    @given(page=pages)
    def test_gf_scale_zero_and_identity_coefficients(self, tier, page):
        kernel = kernels.KERNELS[tier]
        assert kernel.gf_scale(0, page) == bytes(PAGE_SIZE)
        assert kernel.gf_scale(1, page) == page

    @given(group=page_lists, data=st.data())
    def test_gf_scale_accumulate(self, tier, group, data):
        coeffs = [data.draw(coefficients) for _ in group]
        pairs = list(zip(coeffs, group))
        assert (kernels.KERNELS[tier].gf_scale_accumulate(pairs, PAGE_SIZE)
                == REFERENCE.gf_scale_accumulate(pairs, PAGE_SIZE))


@tier_params()
class TestPublicApiUnderEachTier:
    """The six public functions keep exact semantics on every tier."""

    @given(group=st.lists(pages, min_size=0, max_size=5))
    def test_xor_pages(self, tier, group):
        with kernels.use_kernel(tier):
            result = xor_pages(*group)
        with kernels.use_kernel("reference"):
            expected = xor_pages(*group)
        assert result == expected

    def test_xor_pages_rejects_short_operand(self, tier):
        with kernels.use_kernel(tier):
            with pytest.raises(ValueError):
                xor_pages(bytes(PAGE_SIZE), bytes(PAGE_SIZE - 1))

    @given(acc=pages, page=pages)
    def test_xor_into(self, tier, acc, page):
        buffer = bytearray(acc)
        with kernels.use_kernel(tier):
            xor_into(buffer, page)
        reference_buffer = bytearray(acc)
        with kernels.use_kernel("reference"):
            xor_into(reference_buffer, page)
        assert buffer == reference_buffer

    @given(coefficient=coefficients, page=pages)
    def test_page_mul(self, tier, coefficient, page):
        with kernels.use_kernel(tier):
            result = page_mul(coefficient, page)
        with kernels.use_kernel("reference"):
            expected = page_mul(coefficient, page)
        assert result == expected

    @given(a=pages, b=pages)
    def test_page_xor(self, tier, a, b):
        with kernels.use_kernel(tier):
            result = page_xor(a, b)
        with kernels.use_kernel("reference"):
            expected = page_xor(a, b)
        assert result == expected

    @given(group=st.lists(pages, min_size=1, max_size=6))
    def test_q_parity(self, tier, group):
        with kernels.use_kernel(tier):
            result = q_parity(group)
        with kernels.use_kernel("reference"):
            expected = q_parity(group)
        assert result == expected

    @settings(max_examples=25)
    @given(group=st.lists(pages, min_size=2, max_size=5), data=st.data())
    def test_solve_two_erasures_roundtrip(self, tier, group, data):
        """On every tier the solver recovers the erased members exactly."""
        i = data.draw(st.integers(0, len(group) - 1))
        j = data.draw(st.integers(0, len(group) - 1).filter(lambda x: x != i))
        i, j = sorted((i, j))
        with kernels.use_kernel(tier):
            p_star = xor_pages(*(page for index, page in enumerate(group)
                                 if index in (i, j)))
            q_star = q_parity(group)
            for index, page in enumerate(group):
                if index in (i, j):
                    continue
                q_star = page_xor(q_star, page_mul(gf_pow(2, index), page))
            d_i, d_j = solve_two_erasures(i, j, p_star, q_star)
        assert d_i == group[i]
        assert d_j == group[j]
