"""X1: cross-validating Eq. 5 against the executable system.

Not a figure from the paper — the authors evaluated analytically only.
We run the real database+simulator and compare the measured fraction of
steals that required an UNDO record with the model's logging
probability p_l.  The model is an upper bound (it charges as if all K
uncommitted pages were pending simultaneously; in the running system
commits continuously clean groups), so we assert same order of
magnitude and correct direction, not equality.
"""

from repro.db import Database, preset
from repro.model import logging_probability
from repro.sim import Simulator, WorkloadSpec

from .conftest import write_table

N, GROUPS, BUFFER = 5, 40, 40
SPEC = dict(concurrency=4, pages_per_txn=6, update_txn_fraction=0.8,
            update_probability=0.9, abort_probability=0.01)


def measured_p_l(C: float, transactions: int = 300, seed: int = 17) -> tuple:
    db = Database(preset("page-force-rda", group_size=N, num_groups=GROUPS,
                         buffer_capacity=BUFFER))
    spec = WorkloadSpec(communality=C, **SPEC)
    Simulator(db, spec, seed=seed).run(transactions)
    return 1.0 - db.counters.unlogged_fraction, db.counters.steals


def test_crossval_eq5(benchmark, results_dir):
    def campaign():
        rows = []
        for C in (0.2, 0.5, 0.8):
            K = SPEC["concurrency"] * SPEC["update_txn_fraction"] * \
                SPEC["pages_per_txn"] * SPEC["update_probability"] / 2.0
            predicted = logging_probability(K, N * GROUPS, N)
            measured, steals = measured_p_l(C)
            rows.append((C, predicted, measured, steals))
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)
    lines = ["X1: Eq. 5 p_l vs measured steal-logging fraction",
             f"{'C':>5} | {'p_l model':>10} | {'p_l measured':>12} | {'steals':>7}"]
    for C, predicted, measured, steals in rows:
        lines.append(f"{C:5.1f} | {predicted:10.3f} | {measured:12.3f} "
                     f"| {steals:7d}")
        # same order of magnitude; model is the upper bound
        assert measured <= predicted * 1.5
        assert measured > predicted / 10.0
    write_table(results_dir, "crossval_eq5", "\n".join(lines))
    benchmark.extra_info["rows"] = [
        {"C": C, "model": round(p, 4), "measured": round(m, 4)}
        for C, p, m, _ in rows]


def test_crossval_gain_direction(benchmark, results_dir):
    """The live system's RDA gain moves the way the model says."""

    def campaign():
        gains = {}
        for C in (0.2, 0.8):
            results = {}
            for name in ("page-force-rda", "page-force-log"):
                db = Database(preset(name, group_size=N, num_groups=GROUPS,
                                     buffer_capacity=BUFFER))
                spec = WorkloadSpec(communality=C, **SPEC)
                report = Simulator(db, spec, seed=23).run(250)
                results[name] = report.throughput()
            gains[C] = results["page-force-rda"] / results["page-force-log"]
        return gains

    gains = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert all(g > 1.0 for g in gains.values())
    write_table(results_dir, "crossval_gain",
                "X1b: live-system RDA gain (FORCE/TOC)\n" + "\n".join(
                    f"C={C}: x{g:.3f}" for C, g in sorted(gains.items())))
    benchmark.extra_info["gains"] = {str(k): round(v, 3)
                                     for k, v in gains.items()}
