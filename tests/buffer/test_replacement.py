"""Tests for replacement policies in isolation."""

import pytest

from repro.buffer.replacement import ClockPolicy, LRUPolicy, make_policy
from repro.errors import BufferFullError


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        for frame in (0, 1, 2):
            policy.touch(frame)
        policy.touch(0)
        assert policy.choose_victim([0, 1, 2]) == 1

    def test_restricted_candidates(self):
        policy = LRUPolicy()
        for frame in (0, 1, 2):
            policy.touch(frame)
        assert policy.choose_victim([2]) == 2

    def test_untouched_frame_ranks_oldest(self):
        policy = LRUPolicy()
        policy.touch(0)
        assert policy.choose_victim([0, 5]) == 5

    def test_forget(self):
        policy = LRUPolicy()
        policy.touch(0)
        policy.touch(1)
        policy.forget(0)
        assert policy.choose_victim([0, 1]) in (0, 1)

    def test_empty_raises(self):
        with pytest.raises(BufferFullError):
            LRUPolicy().choose_victim([])


class TestClock:
    def test_second_chance(self):
        policy = ClockPolicy()
        for frame in (0, 1, 2):
            policy.touch(frame)
        # first sweep clears 0's bit then 1's... eventually a victim emerges
        victim = policy.choose_victim([0, 1, 2])
        assert victim in (0, 1, 2)

    def test_unreferenced_evicted_first(self):
        policy = ClockPolicy()
        policy.touch(1)
        assert policy.choose_victim([0, 1]) == 0

    def test_hand_advances(self):
        policy = ClockPolicy()
        first = policy.choose_victim([0, 1, 2])
        second = policy.choose_victim([0, 1, 2])
        assert first != second

    def test_empty_raises(self):
        with pytest.raises(BufferFullError):
            ClockPolicy().choose_victim([])

    def test_forget_clears_bit(self):
        policy = ClockPolicy()
        policy.touch(0)
        policy.forget(0)
        assert policy.choose_victim([0]) == 0


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("clock"), ClockPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("2q")
