"""Tests for the RDA recovery manager over a real twin-parity array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DirtySet, RDAManager
from repro.errors import ParityGroupError, RecoveryError
from repro.storage import (TwinState, make_page, make_twin_raid5, xor_pages)
from repro.storage.page import PAGE_SIZE


@pytest.fixture
def rda():
    array = make_twin_raid5(4, 6)
    for g in range(array.geometry.num_groups):
        array.full_stripe_write(
            g, [make_page(bytes([g + 1, i + 1]))
                for i in range(array.geometry.group_size)])
    return RDAManager(array)


def original(page_id, rda):
    geo = rda.array.geometry
    g = geo.group_of(page_id)
    i = geo.index_in_group(page_id)
    return make_page(bytes([g + 1, i + 1]))


class TestWriteRule:
    def test_clean_group_needs_no_log(self, rda):
        assert not rda.needs_undo_log(0, txn_id=1)

    def test_dirty_other_page_needs_log(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        other = next(p for p in rda.array.geometry.group_pages(group) if p != 0)
        assert rda.needs_undo_log(other, txn_id=1)

    def test_dirty_same_page_same_txn_needs_no_log(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        assert not rda.needs_undo_log(0, txn_id=1)

    def test_dirty_same_page_other_txn_needs_log(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        assert rda.needs_undo_log(0, txn_id=2)

    def test_unlogged_violation_raises(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        other = next(p for p in rda.array.geometry.group_pages(group) if p != 0)
        with pytest.raises(ParityGroupError):
            rda.write_uncommitted(other, make_page(b"y"), txn_id=1)


class TestCosts:
    """Per-operation page-transfer costs the analytical model assumes."""

    def test_first_steal_costs_four(self, rda):
        with rda.array.stats.window() as w:
            rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        assert w.total == 4

    def test_first_steal_with_buffered_old_costs_three(self, rda):
        with rda.array.stats.window() as w:
            rda.write_uncommitted(0, make_page(b"x"), txn_id=1,
                                  old_data=original(0, rda))
        assert w.total == 3

    def test_write_into_dirty_group_costs_six(self, rda):
        """The model's a + 2: both twins updated."""
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        other = next(p for p in rda.array.geometry.group_pages(group) if p != 0)
        with rda.array.stats.window() as w:
            rda.write_uncommitted(other, make_page(b"y"), txn_id=2, logged=True)
        assert w.total == 6

    def test_commit_costs_zero_transfers(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        with rda.array.stats.window() as w:
            rda.commit_txn(1)
        assert w.total == 0

    def test_abort_costs_five_or_four(self, rda):
        """Paper Section 5.2.1: recovering a page from the parity may
        take up to 5-6 I/Os; here: 2 twin reads + D_new read + restore
        write + working-twin invalidation."""
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        with rda.array.stats.window() as w:
            rda.abort_txn(1)
        assert w.total == 5          # 2 twins + D_new + restore + header
        rda.write_uncommitted(0, make_page(b"y"), txn_id=2)
        with rda.array.stats.window() as w:
            rda.abort_txn(2, buffered={0: make_page(b"y")})
        assert w.total == 4          # D_new supplied


class TestAbortViaParityAlone:
    def test_restores_exact_before_image(self, rda):
        before = original(0, rda)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        restored = rda.abort_txn(1)
        assert restored == {0: before}
        assert rda.array.read_page(0) == before
        assert rda.array.scrub() == []

    def test_restores_after_resteal_chain(self, rda):
        before = original(0, rda)
        for version in (b"v1", b"v2", b"v3"):
            rda.write_uncommitted(0, make_page(version), txn_id=1)
        rda.abort_txn(1)
        assert rda.array.read_page(0) == before

    def test_restores_despite_logged_writes_into_group(self, rda):
        """Committed/logged writes into the dirty group update both twins
        and must not disturb the unlogged page's undo."""
        before = original(0, rda)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        others = [p for p in rda.array.geometry.group_pages(group) if p != 0]
        rda.write_committed(others[0], make_page(b"committed"))
        rda.write_uncommitted(others[1], make_page(b"logged"), txn_id=2,
                              logged=True)
        rda.abort_txn(1)
        assert rda.array.read_page(0) == before
        assert rda.array.read_page(others[0]) == make_page(b"committed")
        assert rda.array.read_page(others[1]) == make_page(b"logged")

    def test_multi_group_abort(self, rda):
        pages = [0, rda.array.geometry.group_pages(1)[0],
                 rda.array.geometry.group_pages(2)[0]]
        befores = {p: original(p, rda) for p in pages}
        for p in pages:
            rda.write_uncommitted(p, make_page(b"mod"), txn_id=1)
        restored = rda.abort_txn(1)
        assert restored == befores

    def test_working_twin_invalidated(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        working = rda.dirty_set.entry(group).working_twin
        rda.abort_txn(1)
        _, header = rda.array.peek_twin(group, working)
        assert header.state is TwinState.INVALID

    def test_abort_without_steals_is_noop(self, rda):
        assert rda.abort_txn(42) == {}


class TestCommit:
    def test_commit_flips_current_twin(self, rda):
        group = rda.array.geometry.group_of(0)
        old_current = rda.current_twin(group)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        assert rda.commit_txn(1) == [group]
        assert rda.current_twin(group) == 1 - old_current
        assert not rda.dirty_set.is_dirty(group)

    def test_new_steal_after_commit_uses_other_twin(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        rda.commit_txn(1)
        rda.write_uncommitted(0, make_page(b"y"), txn_id=2)
        restored = rda.abort_txn(2)
        assert restored == {0: make_page(b"x")}
        assert rda.array.read_page(0) == make_page(b"x")

    def test_parity_consistent_after_commit(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        rda.commit_txn(1)
        assert rda.array.scrub() == []


class TestPromotion:
    def test_promote_materializes_before_image(self, rda):
        before = original(0, rda)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        logged = {}

        def log_fn(txn_id, page_id, image):
            logged[(txn_id, page_id)] = image

        txn_id, page_id = rda.promote_to_logged(group, log_fn)
        assert (txn_id, page_id) == (1, 0)
        assert logged[(1, 0)] == before
        assert not rda.dirty_set.is_dirty(group)
        # the working twin was adopted as current: parity matches data
        assert rda.array.scrub() == []

    def test_promoted_group_accepts_new_steal(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        rda.promote_to_logged(group, lambda *a: None)
        other = next(p for p in rda.array.geometry.group_pages(group) if p != 0)
        rda.write_uncommitted(other, make_page(b"y"), txn_id=2)
        restored = rda.abort_txn(2)
        assert restored[other] == original(other, rda)


class TestCrashScan:
    def test_finds_loser_dirty_groups(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)   # loser
        rda.write_uncommitted(rda.array.geometry.group_pages(1)[0],
                              make_page(b"y"), txn_id=2)      # winner
        rda.commit_txn(2)
        losers = rda.crash_scan(committed_txns={2})
        assert [(e.txn_id, e.page_id) for e in losers] == [(1, 0)]

    def test_scan_rebuilds_dirty_set_for_undo(self, rda):
        before = original(0, rda)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        rda.lose_memory()                       # crash
        losers = rda.crash_scan(committed_txns=set())
        assert len(losers) == 1
        rda.abort_txn(1)
        assert rda.array.read_page(0) == before

    def test_scan_sets_current_twin_for_winners(self, rda):
        group = rda.array.geometry.group_of(0)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        working = rda.dirty_set.entry(group).working_twin
        rda.commit_txn(1)
        rda.lose_memory()
        rda.crash_scan(committed_txns={1})
        assert rda.current_twin(group) == working

    def test_scan_cost_is_two_reads_per_group(self, rda):
        with rda.array.stats.window() as w:
            rda.crash_scan(committed_txns=set())
        assert w.reads == 2 * rda.array.geometry.num_groups
        assert w.writes == 0

    def test_scan_clock_advances_past_disk_stamps(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        stamp = rda.dirty_set.entry(rda.array.geometry.group_of(0)).working_timestamp
        rda.lose_memory()
        rda.crash_scan(committed_txns=set())
        assert rda.array.next_timestamp() > stamp


class TestMediaHooks:
    def test_rebuild_clean_disk(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        rda.commit_txn(1)
        victim = rda.array.geometry.data_address(0).disk
        rda.array.fail_disk(victim)
        report, must_commit = rda.rebuild_disk(victim)
        assert must_commit == set()
        assert rda.array.read_page(0) == make_page(b"x")

    def test_rebuild_preserves_undo_of_dirty_group(self, rda):
        before = original(0, rda)
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        working = rda.dirty_set.entry(group).working_twin
        working_disk = rda.array.geometry.parity_addresses(group)[working].disk
        rda.array.fail_disk(working_disk)
        report, must_commit = rda.rebuild_disk(working_disk)
        assert must_commit == set()
        rda.abort_txn(1)
        assert rda.array.read_page(0) == before

    def test_lost_committed_twin_adopt_pins_txn(self, rda):
        rda.write_uncommitted(0, make_page(b"x"), txn_id=1)
        group = rda.array.geometry.group_of(0)
        working = rda.dirty_set.entry(group).working_twin
        committed_disk = rda.array.geometry.parity_addresses(group)[1 - working].disk
        rda.array.fail_disk(committed_disk)
        report, must_commit = rda.rebuild_disk(committed_disk,
                                               on_lost_undo="adopt")
        assert must_commit == {1}
        assert not rda.dirty_set.is_dirty(group)
        assert rda.array.scrub() == []


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_random_interleaving_abort_restores_and_parity_holds(data):
    """Property: across random interleavings of steals, re-steals,
    committed writes, commits and aborts, (1) every aborted transaction's
    pages return to their pre-transaction images and (2) parity stays
    consistent."""
    array = make_twin_raid5(3, 4)
    for g in range(array.geometry.num_groups):
        array.full_stripe_write(
            g, [make_page(bytes([g + 1, i + 1]))
                for i in range(array.geometry.group_size)])
    rda = RDAManager(array)
    pristine = {p: array.peek_page(p) for p in range(array.num_data_pages)}
    expectations = dict(pristine)     # what each page should show at the end
    live = {}                         # txn -> {page: before_image}
    next_txn = [1]

    steps = data.draw(st.integers(5, 25), label="steps")
    for _ in range(steps):
        action = data.draw(st.sampled_from(
            ["steal", "commit", "abort", "committed_write"]), label="action")
        if action == "steal":
            page = data.draw(st.integers(0, array.num_data_pages - 1),
                             label="page")
            group = array.geometry.group_of(page)
            entry = rda.dirty_set.get(group)
            payload = data.draw(st.binary(min_size=PAGE_SIZE,
                                          max_size=PAGE_SIZE), label="payload")
            if entry is None:
                txn = next_txn[0]
                next_txn[0] += 1
                rda.write_uncommitted(page, payload, txn_id=txn)
                live[txn] = {page: expectations[page]}
            elif entry.page_id == page:
                rda.write_uncommitted(page, payload, txn_id=entry.txn_id)
            else:
                continue
        elif action == "committed_write":
            page = data.draw(st.integers(0, array.num_data_pages - 1),
                             label="cpage")
            group = array.geometry.group_of(page)
            entry = rda.dirty_set.get(group)
            if entry is not None and entry.page_id == page:
                continue   # would need promotion; out of scope here
            payload = data.draw(st.binary(min_size=PAGE_SIZE,
                                          max_size=PAGE_SIZE), label="cpayload")
            rda.write_committed(page, payload)
            expectations[page] = payload
        elif live:
            txn = data.draw(st.sampled_from(sorted(live)), label="txn")
            pages = live.pop(txn)
            if action == "commit":
                rda.commit_txn(txn)
                for page in pages:
                    expectations[page] = array.peek_page(page)
            else:
                rda.abort_txn(txn)
                for page, before in pages.items():
                    assert array.peek_page(page) == before

    for txn in sorted(live):
        rda.abort_txn(txn)
        for page, before in live[txn].items():
            assert array.peek_page(page) == before
    assert array.scrub() == []
    for page, expected in expectations.items():
        assert array.peek_page(page) == expected
