"""Behavioral tests for the Database facade in page-logging mode."""

import pytest

from repro.db import Database, preset
from repro.errors import DeadlockError, TransactionError
from repro.db.database import LockWait
from repro.storage import make_page


def make_db(name, **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    return Database(preset(name, **defaults))


PAGE_PRESETS = ["page-force-rda", "page-force-log",
                "page-noforce-rda", "page-noforce-log"]


@pytest.fixture(params=PAGE_PRESETS)
def db(request):
    return make_db(request.param)


class TestReadWrite:
    def test_initial_pages_zero(self, db):
        t = db.begin()
        assert db.read_page(t, 0) == bytes(len(db.read_page(t, 0)))

    def test_write_visible_to_same_txn(self, db):
        t = db.begin()
        db.write_page(t, 3, make_page(b"mine"))
        assert db.read_page(t, 3) == make_page(b"mine")

    def test_commit_makes_durable_view(self, db):
        t = db.begin()
        db.write_page(t, 3, make_page(b"v"))
        db.commit(t)
        t2 = db.begin()
        assert db.read_page(t2, 3) == make_page(b"v")

    def test_load_pages_bulk(self, db):
        db.load_pages({0: make_page(b"a"), 5: make_page(b"b")})
        t = db.begin()
        assert db.read_page(t, 0) == make_page(b"a")
        assert db.read_page(t, 5) == make_page(b"b")
        assert db.verify_parity() == []

    def test_record_api_rejected_in_page_mode(self, db):
        t = db.begin()
        with pytest.raises(TransactionError):
            db.read_record(t, 0, 0)

    def test_wrong_page_size_rejected(self, db):
        t = db.begin()
        with pytest.raises(ValueError):
            db.write_page(t, 0, b"small")


class TestAbort:
    def test_abort_in_buffer_only(self, db):
        db.load_pages({0: make_page(b"base")})
        t = db.begin()
        db.write_page(t, 0, make_page(b"changed"))
        db.abort(t)
        t2 = db.begin()
        assert db.read_page(t2, 0) == make_page(b"base")

    def test_abort_after_steal(self, db):
        db.load_pages({0: make_page(b"base")})
        t = db.begin()
        db.write_page(t, 0, make_page(b"changed"))
        spill = db.begin()
        for p in range(1, 14):
            db.write_page(spill, p, make_page(bytes([p])))
        db.commit(spill)
        assert db.disk_page(0) == make_page(b"changed")   # stolen
        db.abort(t)
        assert db.disk_page(0) == make_page(b"base")
        assert db.verify_parity() == []

    def test_abort_read_only(self, db):
        t = db.begin()
        db.read_page(t, 0)
        db.abort(t)   # no log traffic required; must not raise

    def test_abort_releases_locks(self, db):
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.abort(t)
        t2 = db.begin()
        db.write_page(t2, 0, make_page(b"y"))   # no LockWait
        db.commit(t2)

    def test_abort_restores_multiple_pages(self, db):
        db.load_pages({p: make_page(bytes([100 + p])) for p in range(4)})
        t = db.begin()
        for p in range(4):
            db.write_page(t, p, make_page(b"bad"))
        spill = db.begin()
        for p in range(8, 20):
            db.write_page(spill, p, make_page(bytes([p])))
        db.commit(spill)
        db.abort(t)
        t2 = db.begin()
        for p in range(4):
            assert db.read_page(t2, p) == make_page(bytes([100 + p]))


class TestLocking:
    def test_write_conflict_waits(self, db):
        a, b = db.begin(), db.begin()
        db.write_page(a, 0, make_page(b"a"))
        with pytest.raises(LockWait):
            db.write_page(b, 0, make_page(b"b"))
        db.commit(a)
        db.write_page(b, 0, make_page(b"b"))    # grant arrived with release
        db.commit(b)

    def test_readers_share(self, db):
        a, b = db.begin(), db.begin()
        db.read_page(a, 0)
        db.read_page(b, 0)
        db.commit(a)
        db.commit(b)

    def test_deadlock_detected(self, db):
        a, b = db.begin(), db.begin()
        db.write_page(a, 0, make_page(b"a"))
        db.write_page(b, 1, make_page(b"b"))
        with pytest.raises(LockWait):
            db.write_page(a, 1, make_page(b"a"))
        with pytest.raises(DeadlockError):
            db.write_page(b, 0, make_page(b"b"))
        db.abort(b)        # victim aborts; a's waiting write is granted
        db.write_page(a, 1, make_page(b"a"))
        db.commit(a)


class TestForceDiscipline:
    def test_force_flushes_at_commit(self):
        db = make_db("page-force-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"forced"))
        db.commit(t)
        assert db.disk_page(0) == make_page(b"forced")

    def test_noforce_leaves_dirty(self):
        db = make_db("page-noforce-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"lazy"))
        db.commit(t)
        assert db.disk_page(0) != make_page(b"lazy")
        assert db.buffer.is_dirty(0)

    def test_checkpoint_flushes_residue(self):
        db = make_db("page-noforce-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"lazy"))
        db.commit(t)
        db.checkpoint()
        assert db.disk_page(0) == make_page(b"lazy")
        assert not db.buffer.is_dirty(0)

    def test_force_mode_has_no_checkpoints(self):
        db = make_db("page-force-rda")
        with pytest.raises(TransactionError):
            db.checkpoint()


class TestRDASpecifics:
    def test_unlogged_steal_counted(self):
        db = make_db("page-force-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)            # FORCE: flush = steal while active
        assert db.counters.unlogged_steals >= 1
        assert db.counters.before_images_logged == 0

    def test_baseline_logs_before_images(self):
        db = make_db("page-force-log")
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        assert db.counters.before_images_logged >= 1

    def test_two_pages_same_group_second_is_logged(self):
        db = make_db("page-force-rda")
        group_pages = db.array.geometry.group_pages(0)
        t = db.begin()
        db.write_page(t, group_pages[0], make_page(b"a"))
        db.write_page(t, group_pages[1], make_page(b"b"))
        db.commit(t)
        assert db.counters.unlogged_steals == 1
        assert db.counters.logged_steals == 1
        assert db.counters.before_images_logged == 1

    def test_pages_in_distinct_groups_all_unlogged(self):
        db = make_db("page-force-rda")
        geo = db.array.geometry
        t = db.begin()
        for g in range(3):
            db.write_page(t, geo.group_pages(g)[0], make_page(bytes([g + 1])))
        db.commit(t)
        assert db.counters.unlogged_steals == 3
        assert db.counters.logged_steals == 0


class TestNoStealDiscipline:
    def test_no_steal_never_logs_undo(self):
        db = make_db("page-force-log", steal=False, buffer_capacity=20)
        t = db.begin()
        for p in range(6):
            db.write_page(t, p, make_page(bytes([p + 1])))
        # nothing reached disk before commit, so no undo info was needed
        assert all(db.disk_page(p) == bytes(512) for p in range(6))
        assert db.counters.steals == 0
        db.commit(t)
        for p in range(6):
            assert db.disk_page(p) == make_page(bytes([p + 1]))

    def test_no_steal_buffer_exhaustion(self):
        from repro.errors import BufferFullError
        db = make_db("page-force-log", steal=False, buffer_capacity=4)
        t = db.begin()
        with pytest.raises(BufferFullError):
            for p in range(10):
                db.write_page(t, p, make_page(bytes([p + 1])))

    def test_no_steal_abort_is_pure_memory(self):
        db = make_db("page-force-rda", steal=False, buffer_capacity=20)
        db.load_pages({0: make_page(b"base")})
        t = db.begin()
        db.write_page(t, 0, make_page(b"scratch"))
        data_writes_before = sum(d.write_count for d in db.array.disks)
        with db.stats.window() as w:
            db.abort(t)
        # only the duplexed abort record hits storage; no data-page I/O
        assert sum(d.write_count for d in db.array.disks) == data_writes_before
        assert w.reads == 0
        t2 = db.begin()
        assert db.read_page(t2, 0) == make_page(b"base")


class TestMustCommitPin:
    def test_lost_undo_forbids_abort(self):
        db = make_db("page-force-rda")
        db.load_pages({0: make_page(b"base")})
        t = db.begin()
        db.write_page(t, 0, make_page(b"stolen"))
        # force a steal without committing
        spill = db.begin()
        for p in range(4, 18):
            db.write_page(spill, p, make_page(bytes([p])))
        db.commit(spill)
        group = db.array.geometry.group_of(0)
        entry = db.rda.dirty_set.get(group)
        assert entry is not None and entry.txn_id == t
        committed_twin = 1 - entry.working_twin
        disk = db.array.geometry.parity_addresses(group)[committed_twin].disk
        db.media_failure(disk)
        db.media_recover(disk, on_lost_undo="adopt")
        from repro.errors import RecoveryError
        with pytest.raises(RecoveryError):
            db.abort(t)
        db.commit(t)   # committing is still fine
