"""Service-time observation for live runs.

:class:`TimedObserver` hooks every disk of a database's array and
accumulates a :class:`~repro.storage.timing.DiskTimer` per disk while a
workload runs, turning the transfer counts the model reasons about into
milliseconds: total device busy time, the busiest arm (a lower bound on
wall-clock), utilization balance, and seek counts.

Usage::

    observer = TimedObserver.attach(db)
    run_workload(db, spec, 200)
    print(observer.summary())
    observer.detach()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.timing import DiskTimer, DiskTimingSpec


@dataclass
class TimedObserver:
    """Per-disk service-time accounting attached to a live database."""

    spec: DiskTimingSpec
    timers: dict = field(default_factory=dict)
    _attached: list = field(default_factory=list)

    @classmethod
    def attach(cls, db, spec: DiskTimingSpec | None = None) -> "TimedObserver":
        """Hook all array disks of ``db``; returns the observer."""
        observer = cls(spec=spec if spec is not None else DiskTimingSpec())
        for disk in db.array.disks:
            observer.timers[disk.disk_id] = DiskTimer(observer.spec,
                                                      disk.capacity)
            if disk.on_access is not None:
                raise RuntimeError(
                    f"disk {disk.disk_id} already has an access hook")
            disk.on_access = observer._on_access
            observer._attached.append(disk)
        return observer

    def detach(self) -> None:
        """Remove the hooks."""
        for disk in self._attached:
            disk.on_access = None
        self._attached.clear()

    def _on_access(self, disk_id: int, slot: int, kind: str) -> None:
        self.timers[disk_id].access(slot)

    # -- results -----------------------------------------------------------------

    @property
    def total_busy_ms(self) -> float:
        """Sum of device busy time (an upper bound on wall time for a
        fully serial schedule)."""
        return sum(t.busy_ms for t in self.timers.values())

    @property
    def busiest_ms(self) -> float:
        """Busy time of the hottest arm (a lower bound on wall time)."""
        if not self.timers:
            return 0.0
        return max(t.busy_ms for t in self.timers.values())

    @property
    def total_seeks(self) -> int:
        """Arm movements across all disks."""
        return sum(t.seeks for t in self.timers.values())

    def balance(self) -> float:
        """Hottest arm / mean arm busy time (1.0 = perfectly even)."""
        values = [t.busy_ms for t in self.timers.values()]
        if not values or sum(values) == 0:
            return 1.0
        return max(values) / (sum(values) / len(values))

    def summary(self) -> str:
        """One-line digest."""
        return (f"busy {self.total_busy_ms:.0f} ms total, "
                f"hottest arm {self.busiest_ms:.0f} ms, "
                f"{self.total_seeks} seeks, balance {self.balance():.2f}")
