"""Tests for log truncation: bounded log growth without losing recovery."""

import pytest

from repro.db import ArchiveManager, Database, preset
from repro.errors import LogCorruptionError
from repro.storage import make_page


def make_db(name, **kw):
    defaults = dict(group_size=4, num_groups=8, buffer_capacity=6)
    defaults.update(kw)
    return Database(preset(name, **defaults))


class TestLogManagerTruncation:
    def test_truncate_drops_records(self):
        db = make_db("page-noforce-log")
        for i in range(3):
            t = db.begin()
            db.write_page(t, i, make_page(bytes([i + 1])))
            db.commit(t)
        log = db.undo_log
        before = len(log.records())
        dropped = log.truncate_before(log.last_lsn - 1)
        assert dropped == before - 2
        assert log.base_lsn == log.last_lsn - 1
        with pytest.raises(LogCorruptionError):
            log.get(1)

    def test_truncate_is_idempotent(self):
        db = make_db("page-noforce-log")
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        log = db.undo_log
        log.truncate_before(2)
        assert log.truncate_before(2) == 0

    def test_appends_continue_after_truncation(self):
        db = make_db("page-noforce-log")
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        log = db.undo_log
        last = log.last_lsn
        log.truncate_before(last + 1)       # drop everything
        t2 = db.begin()
        db.write_page(t2, 1, make_page(b"y"))
        db.commit(t2)
        assert log.last_lsn > last
        assert log.verify_duplex()

    def test_truncated_log_survives_crash(self):
        db = make_db("page-noforce-log")
        for i in range(2):
            t = db.begin()
            db.write_page(t, i, make_page(bytes([i + 1])))
            db.commit(t)
        db.checkpoint()
        db.trim_log()
        t = db.begin()
        db.write_page(t, 5, make_page(b"after-trim"))
        db.commit(t)
        db.crash()
        db.recover()
        t2 = db.begin()
        assert db.read_page(t2, 5) == make_page(b"after-trim")
        assert db.read_page(t2, 0) == make_page(bytes([1]))


class TestDatabaseTrim:
    def test_noforce_requires_checkpoint(self):
        db = make_db("page-noforce-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.commit(t)
        assert db.trim_log() == 0           # no checkpoint yet: no trim

    def test_noforce_trims_to_checkpoint(self):
        db = make_db("page-noforce-rda")
        for i in range(3):
            t = db.begin()
            db.write_page(t, i, make_page(bytes([i + 1])))
            db.commit(t)
        db.checkpoint()
        dropped = db.trim_log()
        assert dropped > 0
        # recovery still works
        t = db.begin()
        db.write_page(t, 5, make_page(b"post"))
        db.commit(t)
        db.crash()
        db.recover()
        t2 = db.begin()
        for i in range(3):
            assert db.read_page(t2, i) == make_page(bytes([i + 1]))
        assert db.read_page(t2, 5) == make_page(b"post")

    def test_active_transaction_blocks_its_undo(self):
        db = make_db("page-noforce-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"mine"))
        db.checkpoint()
        db.trim_log()
        # the active transaction can still abort after the trim
        db.abort(t)
        t2 = db.begin()
        assert db.read_page(t2, 0) == bytes(512)

    def test_force_trims_undo_log(self):
        db = make_db("page-force-rda")
        for i in range(3):
            t = db.begin()
            db.write_page(t, i, make_page(bytes([i + 1])))
            db.commit(t)
        assert db.trim_log() > 0
        db.crash()
        db.recover()
        t2 = db.begin()
        for i in range(3):
            assert db.read_page(t2, i) == make_page(bytes([i + 1]))

    def test_force_loser_after_trim_still_undone(self):
        db = make_db("page-force-rda")
        t = db.begin()
        db.write_page(t, 0, make_page(b"old"))
        db.commit(t)
        db.trim_log()
        loser = db.begin()
        db.write_page(loser, 0, make_page(b"loser"))
        db.buffer.flush_pages_of(loser)
        db.crash()
        db.recover()
        t2 = db.begin()
        assert db.read_page(t2, 0) == make_page(b"old")

    def test_quiescent_force_trim_respects_archive(self):
        db = make_db("page-force-log")
        t = db.begin()
        db.write_page(t, 0, make_page(b"v1"))
        db.commit(t)
        manager = ArchiveManager(db)
        copy = manager.dump()
        t = db.begin()
        db.write_page(t, 0, make_page(b"v2"))
        db.commit(t)
        db.trim_log(archive_floor=copy.dump_lsn)
        victim = db.array.geometry.data_address(0).disk
        db.media_failure(victim)
        manager.restore_failed_disk(victim)
        assert db.disk_page(0) == make_page(b"v2")

    def test_nonquiescent_force_keeps_redo(self):
        db = make_db("page-force-log")
        t = db.begin()
        db.write_page(t, 0, make_page(b"v1"))
        db.commit(t)
        pin = db.begin()
        db.write_page(pin, 1, make_page(b"active"))
        before = len(db.redo_log.records())
        db.trim_log(archive_floor=0)
        assert len(db.redo_log.records()) == before
        db.abort(pin)
