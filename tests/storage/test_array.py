"""Tests for single-parity arrays: small writes, degraded mode, rebuild."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnrecoverableDataError
from repro.storage import (IOStats, make_page, make_parity_striped, make_raid5,
                           xor_pages)
from repro.storage.page import PAGE_SIZE


@pytest.fixture(params=["raid5", "parity_striped"])
def array(request):
    maker = make_raid5 if request.param == "raid5" else make_parity_striped
    return maker(4, 8)


def fill(array, seed=0):
    """Load every data page with a distinct payload; returns the payloads."""
    payloads = {}
    for p in range(array.num_data_pages):
        payload = make_page(bytes([(p + seed) % 256, (p * 7 + seed) % 256]))
        array.write_page(p, payload)
        payloads[p] = payload
    return payloads


class TestSmallWrite:
    def test_write_then_read(self, array):
        array.write_page(3, make_page(b"three"))
        assert array.read_page(3) == make_page(b"three")

    def test_parity_maintained(self, array):
        fill(array)
        assert array.scrub() == []

    def test_small_write_costs_four_transfers(self, array):
        array.write_page(0, make_page(1))
        with array.stats.window() as w:
            array.write_page(0, make_page(2))
        assert w.total == 4
        assert w.reads == 2 and w.writes == 2

    def test_small_write_with_buffered_old_costs_three(self, array):
        old = make_page(1)
        array.write_page(0, old)
        with array.stats.window() as w:
            array.write_page(0, make_page(2), old_data=old)
        assert w.total == 3
        assert w.reads == 1 and w.writes == 2

    def test_read_costs_one_transfer(self, array):
        array.write_page(0, make_page(1))
        with array.stats.window() as w:
            array.read_page(0)
        assert w.total == 1

    def test_wrong_size_rejected(self, array):
        with pytest.raises(ValueError):
            array.write_page(0, b"tiny")

    def test_stale_old_data_breaks_parity(self, array):
        """The 3-transfer path trusts the caller; a wrong old image must
        be detectable by the scrubber (documents the contract)."""
        array.write_page(0, make_page(1))
        array.write_page(0, make_page(2), old_data=make_page(9))
        assert array.scrub() != []


class TestFullStripeWrite:
    def test_costs_n_plus_one_writes(self, array):
        payloads = [make_page(i + 1) for i in range(4)]
        with array.stats.window() as w:
            array.full_stripe_write(0, payloads)
        assert w.reads == 0
        assert w.writes == 5

    def test_parity_correct(self, array):
        payloads = [make_page(i + 1) for i in range(4)]
        array.full_stripe_write(2, payloads)
        assert array.scrub() == []
        for page, payload in zip(array.geometry.group_pages(2), payloads):
            assert array.read_page(page) == payload

    def test_wrong_count_rejected(self, array):
        with pytest.raises(ValueError):
            array.full_stripe_write(0, [make_page(1)])


class TestDegradedMode:
    def test_degraded_read_reconstructs(self, array):
        payloads = fill(array)
        victim = array.geometry.data_address(5).disk
        array.fail_disk(victim)
        assert array.read_page(5) == payloads[5]

    def test_degraded_read_costs_group_size_transfers(self, array):
        fill(array)
        victim = array.geometry.data_address(5).disk
        array.fail_disk(victim)
        with array.stats.window() as w:
            array.read_page(5)
        assert w.total == array.geometry.group_size  # N-1 data + 1 parity

    def test_write_to_failed_data_disk_absorbed_by_parity(self, array):
        payloads = fill(array)
        victim = array.geometry.data_address(5).disk
        array.fail_disk(victim)
        array.write_page(5, make_page(b"new5"))
        assert array.read_page(5) == make_page(b"new5")
        # other pages unaffected
        group = array.geometry.group_of(5)
        for mate in array.geometry.group_pages(group):
            if mate != 5:
                assert array.read_page(mate) == payloads[mate]

    def test_write_with_failed_parity_disk(self, array):
        fill(array)
        group = array.geometry.group_of(0)
        parity_disk = array.geometry.parity_addresses(group)[0].disk
        array.fail_disk(parity_disk)
        array.write_page(0, make_page(b"np"))
        assert array.read_page(0) == make_page(b"np")

    def test_double_failure_unrecoverable(self, array):
        fill(array)
        group = array.geometry.group_of(0)
        disks = [array.geometry.data_address(p).disk
                 for p in array.geometry.group_pages(group)]
        array.fail_disk(disks[0])
        array.fail_disk(disks[1])
        with pytest.raises(UnrecoverableDataError):
            array.read_page(0)

    def test_data_plus_parity_failure_unrecoverable(self, array):
        fill(array)
        group = array.geometry.group_of(0)
        array.fail_disk(array.geometry.data_address(0).disk)
        array.fail_disk(array.geometry.parity_addresses(group)[0].disk)
        with pytest.raises(UnrecoverableDataError):
            array.read_page(0)


class TestRebuild:
    @pytest.mark.parametrize("victim", [0, 2, 4])
    def test_rebuild_restores_exact_contents(self, array, victim):
        payloads = fill(array)
        array.fail_disk(victim)
        array.rebuild_disk(victim)
        assert array.failed_disks() == []
        assert array.scrub() == []
        for page, payload in payloads.items():
            assert array.read_page(page) == payload

    def test_rebuild_slot_count(self, array):
        fill(array)
        array.fail_disk(0)
        rebuilt = array.rebuild_disk(0)
        data_slots = len(array.geometry.pages_on_disk(0))
        parity_slots = len(array.geometry.groups_with_parity_on(0))
        assert rebuilt == data_slots + parity_slots

    def test_rebuild_with_second_failure_raises(self, array):
        fill(array)
        array.fail_disk(0)
        array.fail_disk(1)
        with pytest.raises(UnrecoverableDataError):
            array.rebuild_disk(0)


class TestLoadBalance:
    def test_rotated_parity_spreads_writes(self):
        """RAID-4 would hammer one parity disk; rotation must not."""
        array = make_raid5(4, 20)
        for p in range(array.num_data_pages):
            array.write_page(p, make_page(p % 256))
        assert array.stats.imbalance() < 1.5


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_write_sequences_keep_parity(data):
    """Property: any sequence of small writes leaves every group's parity
    equal to the XOR of its data pages."""
    array = make_raid5(data.draw(st.integers(2, 5), label="N"),
                       data.draw(st.integers(2, 6), label="G"))
    operations = data.draw(st.lists(
        st.tuples(st.integers(0, array.num_data_pages - 1),
                  st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE),
                  st.booleans()),
        max_size=30), label="ops")
    shadow = {p: bytes(PAGE_SIZE) for p in range(array.num_data_pages)}
    for page, payload, use_buffered in operations:
        old = shadow[page] if use_buffered else None
        array.write_page(page, payload, old_data=old)
        shadow[page] = payload
    assert array.scrub() == []
    for page, expected in shadow.items():
        assert array.peek_page(page) == expected
