"""Tests for the recovery profiler: phase breakdowns, MTTR,
availability, and the simulator wiring — the paper's availability
argument, measured."""

import pytest

from repro.db import Database, ShardedDatabase, preset
from repro.obs import RecoveryProfile, RingBufferSink, Tracer
from repro.obs.recovery_profile import format_recovery_profile
from repro.sim import Simulator, WorkloadSpec
from repro.storage import make_page

RECOVERY_CLASSES = ("page-force-rda", "page-noforce-rda",
                    "record-force-rda", "record-noforce-rda")


def make_db(name, tracer, shards=1):
    config = preset(name, group_size=4, num_groups=16, buffer_capacity=12)
    if shards > 1:
        return ShardedDatabase(config, shards=shards, tracer=tracer)
    return Database(config, tracer=tracer)


def run_with_crashes(name, shards=1, transactions=30, crash_every=10):
    tracer = Tracer(RingBufferSink())
    db = make_db(name, tracer, shards=shards)
    spec = WorkloadSpec(concurrency=3, pages_per_txn=3)
    simulator = Simulator(db, spec, seed=1)
    if simulator.record_mode:
        simulator.seed_records()
    report = simulator.run(transactions, crash_every=crash_every)
    return report, simulator


class TestObserverMode:
    """RecoveryProfile driven purely by the event stream."""

    def test_cycle_opens_on_crash_and_closes_on_restart_end(self):
        tracer = Tracer(RingBufferSink())
        db = make_db("page-force-rda", tracer)
        profile = RecoveryProfile(recovery_class="x").attach(tracer)
        t = db.begin()
        db.write_page(t, 0, make_page(b"x"))
        db.crash()
        assert profile.crashes == 0          # cycle still open
        db.recover()
        assert profile.crashes == 1
        doc = profile.to_dict()
        assert doc["recovery_class"] == "x"
        cycle = doc["cycles"][0]
        assert cycle["mttr_ms"] is not None and cycle["mttr_ms"] >= 0
        assert "analysis" in cycle["phases"]

    def test_phase_rows_carry_transfer_split(self):
        tracer = Tracer(RingBufferSink())
        db = make_db("page-noforce-rda", tracer)
        profile = RecoveryProfile().attach(tracer)
        t = db.begin()
        db.write_page(t, 0, make_page(b"y"))
        db.commit(t)
        db.crash()
        db.recover()
        phases = profile.to_dict()["phases"]
        for row in phases.values():
            assert row["transfers"] == (row["page_transfers"]
                                        + row["log_transfers"])
            assert row["transfers"] == row["reads"] + row["writes"]
        # ¬FORCE redo replays the committed write from the log: the
        # phase must show log reads, split out from page transfers
        assert phases["redo"]["log_transfers"] > 0

    def test_sharded_restarts_do_not_close_cycle_early(self):
        tracer = Tracer(RingBufferSink())
        db = make_db("page-force-rda", tracer, shards=2)
        profile = RecoveryProfile().attach(tracer)
        t = db.begin()
        db.write_page(t, 0, make_page(b"z"))
        db.write_page(t, 1, make_page(b"z"))
        db.commit(t)
        db.crash()
        db.recover()
        # one facade-level cycle, not one per shard restart
        assert profile.crashes == 1
        doc = profile.to_dict()
        assert set(doc["shards"]) == {"0", "1"}


class TestExplicitMarks:
    def test_marks_measure_mttr_with_injected_clock(self):
        ticks = iter([10.0, 10.5])
        profile = RecoveryProfile(clock=lambda: next(ticks))
        profile.begin_cycle()
        profile.end_cycle({"page_transfers": 7, "winners": [1], "losers": []})
        (cycle,) = profile.to_dict()["cycles"]
        assert cycle["mttr_ms"] == pytest.approx(500.0)
        assert cycle["stats"]["page_transfers"] == 7
        assert cycle["stats"]["winners"] == 1

    def test_availability_ratio(self):
        ticks = iter([0.0, 0.25])
        profile = RecoveryProfile(clock=lambda: next(ticks))
        profile.begin_cycle()
        profile.end_cycle()
        profile.finalize(run_wall_ms=1000.0)
        doc = profile.to_dict()
        assert doc["availability"] == pytest.approx(0.75)
        assert doc["mttr_ms"]["mean"] == pytest.approx(250.0)

    def test_finalize_closes_dangling_cycle(self):
        profile = RecoveryProfile()
        profile.begin_cycle()
        profile.finalize()
        assert profile.crashes == 1


class TestSimulatorWiring:
    """Acceptance: per-phase breakdown and MTTR for all four recovery
    classes, on single-engine and sharded databases."""

    @pytest.mark.parametrize("name", RECOVERY_CLASSES)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_profile_reports_phases_and_mttr(self, name, shards):
        report, simulator = run_with_crashes(name, shards=shards)
        profile = report.extra["recovery_profile"]
        assert profile["crashes"] == report.crashes > 0
        assert profile["recovery_class"] == \
            simulator.db.config.algorithm_name
        assert profile["mttr_ms"]["mean"] > 0
        assert profile["mttr_ms"]["max"] >= profile["mttr_ms"]["mean"]
        assert len(profile["mttr_ms"]["per_cycle"]) == profile["crashes"]
        assert 0.0 <= profile["availability"] <= 1.0
        phases = profile["phases"]
        assert "analysis" in phases
        # the class's signature phase appears with wall time accounted
        signature = ("redo" if "noforce" in name else
                     "parity_undo" if "rda" in name else "undo")
        assert signature in phases
        for row in phases.values():
            assert row["count"] > 0
            assert row["wall_ms"] >= 0
        if shards > 1:
            assert set(profile["shards"]) == \
                {str(i) for i in range(shards)}

    def test_untraced_run_has_no_profile(self):
        db = make_db("page-force-rda", None)
        simulator = Simulator(db, WorkloadSpec(concurrency=2,
                                               pages_per_txn=3), seed=1)
        report = simulator.run(20, crash_every=10)
        assert simulator.profile is None
        assert "recovery_profile" not in report.extra

    def test_crashless_run_has_no_profile_entry(self):
        tracer = Tracer(RingBufferSink())
        db = make_db("page-force-rda", tracer)
        simulator = Simulator(db, WorkloadSpec(concurrency=2,
                                               pages_per_txn=3), seed=1)
        report = simulator.run(10)
        assert "recovery_profile" not in report.extra


class TestFormatting:
    def test_format_lists_phases(self):
        report, _ = run_with_crashes("page-noforce-rda")
        text = format_recovery_profile(report.extra["recovery_profile"])
        assert "MTTR mean" in text
        assert "availability" in text
        assert "analysis" in text
        assert "redo" in text
