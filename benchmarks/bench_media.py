"""X5: media recovery — parity rebuild vs the archive+log baseline.

The paper's motivating comparison (Section 1): classical media recovery
restores the lost disk from an archive copy rolled forward through the
redo log, and requires periodic full dumps; a redundant array rebuilds
from parity with no dumps at all.  Also prints the reliability table
behind the intro's "media failure in under 25 days" claim.
"""

from repro.db import ArchiveManager, Database, preset
from repro.model.reliability import paper_motivation_table
from repro.storage import make_page

from .conftest import write_table

SIZES = dict(group_size=5, num_groups=20, buffer_capacity=20)


def loaded_db(name):
    db = Database(preset(name, **SIZES))
    for page in range(0, db.num_data_pages, 2):
        t = db.begin()
        db.write_page(t, page, make_page(bytes([page % 250 + 1])))
        db.commit(t)
    db.buffer.flush_all_dirty()
    return db


def test_parity_rebuild_vs_archive_restore(benchmark, results_dir):
    def campaign():
        # RDA path: rebuild from parity, no dump ever taken
        rda = loaded_db("page-force-rda")
        rda.media_failure(2)
        before = rda.stats.total
        rda.media_recover(2)
        rebuild_cost = rda.stats.total - before
        assert rda.verify_parity() == []

        # classical path: full dump + restore-from-archive + log replay
        wal = loaded_db("page-force-log")
        manager = ArchiveManager(wal)
        dump_cost = manager.dump().transfers
        t = wal.begin()
        wal.write_page(t, 0, make_page(b"post-dump"))
        wal.commit(t)
        wal.media_failure(2)
        restore_cost = manager.restore_failed_disk(2)
        assert wal.verify_parity() == []
        return rebuild_cost, dump_cost, restore_cost

    rebuild, dump, restore = benchmark.pedantic(campaign, rounds=1,
                                                iterations=1)
    write_table(results_dir, "media_comparison",
                "X5: media recovery cost (page transfers)\n"
                f"parity rebuild (RDA array, no dumps): {rebuild}\n"
                f"archive baseline: dump {dump} + restore {restore} "
                f"(dumps recur; rebuild does not)")
    # per incident the two are the same order (rebuilding a disk reads
    # roughly the whole array; so does a dump).  The array's win is that
    # dumps RECUR on a schedule whether or not a disk ever fails, and
    # the log replay grows with the time since the last dump — amortized
    # over any dump schedule the baseline costs strictly more:
    assert 3 * dump + restore > rebuild
    assert rebuild < 2 * (dump + restore)
    benchmark.extra_info["rebuild"] = rebuild
    benchmark.extra_info["dump"] = dump
    benchmark.extra_info["restore"] = restore


def test_reliability_motivation_table(benchmark, results_dir):
    table = benchmark(paper_motivation_table)
    lines = ["X5: MTTDL for a 200-disk farm (disk MTTF 30,000 h, MTTR 24 h)",
             f"{'scheme':>20} | {'MTTDL (days)':>14} | {'overhead':>8}"]
    for scheme, mttdl, overhead in table:
        lines.append(f"{scheme:>20} | {mttdl / 24:14.0f} | {overhead:8.1%}")
    write_table(results_dir, "media_reliability", "\n".join(lines))
    by_name = {row[0]: row for row in table}
    # the intro's claim: an unprotected farm loses data within ~a week
    assert by_name["unprotected"][1] / 24 < 25
    # parity protection buys orders of magnitude at ~1/10th the storage
    assert by_name["twin-parity (RDA)"][1] > 50 * by_name["unprotected"][1]
    assert by_name["twin-parity (RDA)"][2] < by_name["mirroring"][2]
