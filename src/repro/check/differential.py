"""Differential checking against a trivial reference database.

The reference is a dict with transaction staging — no buffer pool,
no parity, no log, no recovery.  Whatever the real engine's steal /
force / twin machinery does, every read a transaction performs and
every committed value it leaves behind must match what the dict says.
The :class:`DifferentialMirror` receives the same operation stream the
:class:`~repro.sim.simulator.Simulator` drives (via its ``conformance``
hook), compares as it goes, and diffs the final committed state.

:func:`run_conformance` bundles the whole apparatus — history
recorder, online invariant engine, mirror, structural verification and
serializability analysis — into a single verdict per configuration;
:func:`conformance_matrix` sweeps all recovery classes x RDA on/off x
page/record locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..db import (Database, ShardedDatabase, all_preset_names,
                  extended_preset_names, make_sharded, preset)
from ..db.slotted_page import SlottedPage
from ..db.verify import verify_database
from ..sim import Simulator, WorkloadSpec
from ..sim.faultplan import Violation
from ..storage.page import ZERO_PAGE
from .history import History, HistoryRecorder
from .invariants import InvariantEngine
from .serializability import SerializabilityReport, analyze

Resource = Tuple[int, Optional[int]]


class ReferenceDatabase:
    """Committed dict + per-transaction staging; the oracle's model of
    what a correct database does."""

    def __init__(self, default: bytes = ZERO_PAGE):
        self.committed: Dict[Resource, bytes] = {}
        self.default = default
        self._staged: Dict[int, Dict[Resource, bytes]] = {}

    def seed(self, values: Dict[Resource, bytes]) -> None:
        self.committed.update(values)

    def begin(self, txn: int) -> None:
        self._staged[txn] = {}

    def read(self, txn: int, resource: Resource) -> bytes:
        staged = self._staged.get(txn, {})
        if resource in staged:
            return staged[resource]
        return self.committed.get(resource, self.default)

    def write(self, txn: int, resource: Resource, value: bytes) -> None:
        self._staged.setdefault(txn, {})[resource] = value

    def commit(self, txn: int) -> None:
        self.committed.update(self._staged.pop(txn, {}))

    def abort(self, txn: int) -> None:
        self._staged.pop(txn, None)

    def crash(self) -> None:
        """Main memory dies: every in-flight transaction's staging is
        gone; committed state survives (that is the recovery promise)."""
        self._staged.clear()


class DifferentialMirror:
    """Implements the simulator's ``conformance`` protocol: mirrors
    each operation into a :class:`ReferenceDatabase` and records a
    violation whenever the real engine's answer diverges."""

    def __init__(self, record_mode: bool = False):
        self.record_mode = record_mode
        default = b"" if record_mode else ZERO_PAGE
        self.reference = ReferenceDatabase(default=default)
        self.violations: List[Violation] = []
        self.reads_checked = 0

    def seed(self, values: Dict[Resource, bytes]) -> None:
        self.reference.seed(values)

    # -- the simulator hook protocol -----------------------------------------

    def begin(self, txn: int) -> None:
        self.reference.begin(txn)

    def read(self, txn: int, page: int, slot: Optional[int],
             value: bytes) -> None:
        expected = self.reference.read(txn, (page, slot))
        self.reads_checked += 1
        if value != expected:
            self.violations.append(Violation(
                "read-divergence",
                f"txn {txn} read {_res_name(page, slot)}: engine returned "
                f"{value[:24]!r}, reference says {expected[:24]!r}"))

    def write(self, txn: int, page: int, slot: Optional[int],
              value: bytes) -> None:
        self.reference.write(txn, (page, slot), value)

    def commit(self, txn: int) -> None:
        self.reference.commit(txn)

    def abort(self, txn: int) -> None:
        self.reference.abort(txn)

    def crash(self) -> None:
        self.reference.crash()

    # -- end-state diff ------------------------------------------------------

    def final_state_diff(self, db: Database) -> List[Violation]:
        """Compare every committed reference value against the real
        database's committed view (buffer-first, like a new reader)."""
        violations: List[Violation] = []
        if self.record_mode:
            for (page, slot), expected in sorted(self.reference.committed.items()):
                actual = SlottedPage.from_bytes(
                    db.committed_view(page)).read(slot)
                if actual != expected:
                    violations.append(Violation(
                        "state-divergence",
                        f"record ({page},{slot}): engine has "
                        f"{actual[:24]!r}, reference {expected[:24]!r}"))
        else:
            for page in range(db.num_data_pages):
                expected = self.reference.committed.get((page, None),
                                                        ZERO_PAGE)
                actual = db.committed_view(page)
                if actual != expected:
                    violations.append(Violation(
                        "state-divergence",
                        f"page {page}: engine has {actual[:24]!r}, "
                        f"reference {expected[:24]!r}"))
        return violations


def _res_name(page: int, slot: Optional[int]) -> str:
    return f"page {page}" if slot is None else f"record ({page},{slot})"


@dataclass
class ConformanceRun:
    """Everything one conformance run learned about one preset."""

    preset: str
    transactions: int
    seed: int
    crash_every: Optional[int]
    history: History
    serializability: SerializabilityReport
    violations: List[Violation]
    barrier_counts: Dict[str, int]
    reads_checked: int
    report_summary: str
    shards: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def cell(self) -> str:
        """Matrix cell label: the preset, suffixed ``@kK`` when sharded."""
        if self.shards > 1:
            return f"{self.preset}@k{self.shards}"
        return self.preset

    @property
    def clean(self) -> bool:
        return not self.violations and self.serializability.clean

    def to_dict(self) -> dict:
        """JSON-ready verdict (the history travels separately)."""
        return {
            "preset": self.preset,
            "cell": self.cell,
            "shards": self.shards,
            "transactions": self.transactions,
            "seed": self.seed,
            "crash_every": self.crash_every,
            "clean": self.clean,
            "events": len(self.history),
            "reads_checked": self.reads_checked,
            "barrier_counts": dict(sorted(self.barrier_counts.items())),
            "serializability": self.serializability.to_dict(),
            "violations": [{"kind": v.kind, "detail": v.detail}
                           for v in self.violations],
            "report": self.report_summary,
        }


_DEFAULT_SPEC = WorkloadSpec(concurrency=4, pages_per_txn=5,
                             update_txn_fraction=0.8,
                             update_probability=0.9,
                             abort_probability=0.05,
                             communality=0.6)

_DEFAULT_OVERRIDES = dict(group_size=5, num_groups=12, buffer_capacity=20)


def run_conformance(preset_name: str, transactions: int = 40, seed: int = 0,
                    spec: Optional[WorkloadSpec] = None,
                    crash_every: Optional[int] = None,
                    overrides: Optional[dict] = None,
                    shards: int = 1,
                    flush_horizon: int = 1,
                    workers: Optional[bool] = None) -> ConformanceRun:
    """Run one seeded workload under full conformance checking.

    Builds a :class:`Database` (or, with ``shards > 1``, a
    :class:`~repro.db.sharded.ShardedDatabase` with the given
    group-commit ``flush_horizon``; with ``workers`` also true, a
    :class:`~repro.db.workers.WorkerShardedDatabase`, so the whole
    harness — lock oracle, differential mirror, invariant barriers,
    final-state sweep — judges the worker-process engine end to end)
    with a history recorder and an attached :class:`InvariantEngine`,
    drives it through a :class:`Simulator` with a
    :class:`DifferentialMirror`, then aggregates: online invariant
    violations, read divergences, final-state divergences, structural
    verification (:func:`verify_database`) and the serializability
    analysis of the recorded history.  ``workers=None`` honors the
    ``REPRO_WORKERS`` environment variable.
    """
    config = preset(preset_name,
                    **(_DEFAULT_OVERRIDES if overrides is None else overrides))
    recorder = HistoryRecorder()
    if shards > 1:
        db = make_sharded(config, shards=shards,
                          flush_horizon=flush_horizon, history=recorder,
                          workers=workers)
    else:
        db = Database(config, history=recorder)
    try:
        engine = InvariantEngine.attach(db)
        simulator = Simulator(db, spec if spec is not None else _DEFAULT_SPEC,
                              seed=seed)
        mirror = DifferentialMirror(record_mode=simulator.record_mode)
        simulator.conformance = mirror
        if simulator.record_mode:
            simulator.seed_records()
            mirror.seed({(page, 0): b"seed"
                         for page in range(db.num_data_pages)})
        report = simulator.run(transactions, crash_every=crash_every)
        violations: List[Violation] = []
        violations.extend(engine.violations)
        violations.extend(mirror.violations)
        violations.extend(mirror.final_state_diff(db))
        violations.extend(Violation("verify", detail)
                          for detail in verify_database(db))
        barrier_counts = dict(engine.barrier_counts)
    finally:
        if hasattr(db, "close"):
            db.close()
    return ConformanceRun(
        preset=preset_name,
        transactions=transactions,
        seed=seed,
        crash_every=crash_every,
        history=recorder.history,
        serializability=analyze(recorder.history),
        violations=violations,
        barrier_counts=barrier_counts,
        reads_checked=mirror.reads_checked,
        report_summary=report.summary(),
        shards=shards,
    )


def extended_matrix_cells() -> List[Tuple[str, int]]:
    """The extended conformance matrix: ``(preset, shards)`` cells.

    The paper's eight single-engine cells, the four RAID-6 cells, and a
    sharded slice — representative presets at K=2 plus one K=4 cell —
    exercising routing, group commit, and per-shard recovery.
    """
    cells: List[Tuple[str, int]] = [(name, 1)
                                    for name in extended_preset_names()]
    cells += [("page-force-rda", 2), ("page-noforce-log", 2),
              ("record-noforce-rda", 2), ("record-noforce-rda-redo", 2),
              ("page-force-rda", 4)]
    return cells


def conformance_matrix(transactions: int = 40, seed: int = 0,
                       crash_every: Optional[int] = None,
                       presets: Optional[List[str]] = None,
                       spec: Optional[WorkloadSpec] = None,
                       extended: bool = False,
                       shards: int = 1,
                       workers: Optional[bool] = None) -> List[ConformanceRun]:
    """Run :func:`run_conformance` over every preset (all four recovery
    classes x RDA on/off x page/record locking).

    With ``extended=True`` the sweep covers
    :func:`extended_matrix_cells` instead: RAID-6 presets and sharded
    cells (group-commit flush horizon 4) on top of the paper's eight.
    Otherwise ``shards`` applies to every cell (K-way
    :class:`~repro.db.sharded.ShardedDatabase` engines when > 1).
    """
    if extended:
        cells = extended_matrix_cells()
    else:
        names = all_preset_names() if presets is None else presets
        cells = [(name, shards) for name in names]
    return [run_conformance(name, transactions=transactions, seed=seed,
                            crash_every=crash_every, spec=spec,
                            shards=shards,
                            flush_horizon=4 if shards > 1 else 1,
                            workers=workers)
            for name, shards in cells]
