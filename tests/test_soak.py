"""Soak test: everything at once, for a while.

One long campaign mixing page traffic, record traffic (on a second
database), crashes, media failures, latent sector corruption, scrubbing
and log trimming — the kitchen sink a long-lived deployment sees.
Asserts full consistency after every incident.  Kept to a few seconds
of runtime; crank the constants for a real soak.
"""

import random

import pytest

from repro.db import Database, preset, verify_database
from repro.sim import TPCB, Simulator, WorkloadSpec


@pytest.mark.soak
class TestPageModeSoak:
    def test_kitchen_sink_campaign(self):
        rng = random.Random(1234)
        db = Database(preset("page-noforce-rda", group_size=5, num_groups=20,
                             buffer_capacity=24, checkpoint_interval=250))
        spec = WorkloadSpec(concurrency=4, pages_per_txn=6, communality=0.6,
                            abort_probability=0.08, skew=0.5)
        sim = Simulator(db, spec, seed=99)
        incidents = {"crash": 0, "media": 0, "latent": 0, "trim": 0}
        for round_ in range(10):
            sim.run(sim.report.transactions + 25)
            incident = rng.choice(["crash", "media", "latent", "trim"])
            incidents[incident] += 1
            if incident == "crash":
                db.crash()
                db.recover()
            elif incident == "media":
                victim = rng.randrange(len(db.array.disks))
                db.media_failure(victim)
                db.media_recover(victim, on_lost_undo="adopt")
            elif incident == "latent":
                page = rng.randrange(db.num_data_pages)
                addr = db.array.geometry.data_address(page)
                if not db.array.disks[addr.disk].failed:
                    db.array.disks[addr.disk].corrupt(addr.slot)
                    assert db.array.scrub_repair() == [page]
            else:
                db.checkpoint()
                db.trim_log()
            problems = verify_database(db)
            assert problems == [], (round_, incident, problems)
        assert sim.report.committed > 150
        assert sum(incidents.values()) == 10

    def test_record_mode_soak_with_tpcb(self):
        db = Database(preset("record-noforce-rda", group_size=5,
                             num_groups=16, buffer_capacity=20,
                             checkpoint_interval=200))
        workload = TPCB(db, seed=77)
        workload.setup()
        rng = random.Random(4321)
        for round_ in range(6):
            workload.run(15)
            incident = rng.choice(["crash", "media", "none"])
            if incident == "crash":
                db.crash()
                db.recover()
            elif incident == "media":
                victim = rng.randrange(len(db.array.disks))
                db.media_failure(victim)
                db.media_recover(victim, on_lost_undo="adopt")
            assert workload.conserved(), (round_, incident, workload.totals())
            assert verify_database(db) == []
        assert workload.committed > 60
