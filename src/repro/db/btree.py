"""A crash-recoverable B-tree index over the transactional record API.

Each tree node occupies one slotted page and is stored as that page's
single record (slot 0), so every structural mutation — inserts, splits,
root growth — flows through :meth:`Database.update_record` and is therefore
locked, logged, and recovered by whichever of the paper's eight
configurations the database runs; aborting a transaction rolls back its
index mutations (including half-done splits), and crash recovery
restores a consistent tree.

Design choices kept deliberately simple and verifiable:

* fixed fan-out by byte budget (keys and values are short byte strings);
* splits propagate upward eagerly during insert (no deferred SMOs);
* the root lives at a fixed page, so the tree is found after a crash
  without a catalog;
* deletion removes the key but does not rebalance (like many production
  trees, space is reclaimed by later inserts; invariants stay intact).

Keys are arbitrary ``bytes`` ordered lexicographically; values are
``bytes`` up to :data:`MAX_VALUE` long.
"""

from __future__ import annotations

import json

from ..errors import ReproError
from .slotted_page import PageFullError

MAX_KEY = 64
MAX_VALUE = 64
NODE_BYTE_BUDGET = 360     # serialized-node budget within one 512B page


class BTreeError(ReproError):
    """Index-level failures (full page pool, oversized keys, ...)."""


def _encode(node: dict) -> bytes:
    doc = {
        "leaf": node["leaf"],
        "keys": [k.hex() for k in node["keys"]],
        "vals": ([v.hex() for v in node["vals"]] if node["leaf"]
                 else node["vals"]),
    }
    return json.dumps(doc, separators=(",", ":")).encode("ascii")


def _decode(blob: bytes) -> dict:
    doc = json.loads(blob.decode("ascii"))
    return {
        "leaf": doc["leaf"],
        "keys": [bytes.fromhex(k) for k in doc["keys"]],
        "vals": ([bytes.fromhex(v) for v in doc["vals"]] if doc["leaf"]
                 else doc["vals"]),
    }


class BTree:
    """A B-tree bound to a database and a fixed pool of pages.

    Args:
        db: the database (record-logging mode).
        pages: page ids the tree may use; ``pages[0]`` is the root.
            Format them first with ``db.format_record_pages``.
        create: initialize an empty tree (root leaf) — do this once,
            inside a transaction that you commit.
    """

    def __init__(self, db, pages, txn_id: int | None = None,
                 create: bool = False) -> None:
        if len(pages) < 1:
            raise BTreeError("a B-tree needs at least one page")
        self.db = db
        self.pages = list(pages)
        self.root_page = self.pages[0]
        if create:
            if txn_id is None:
                raise BTreeError("creating a tree needs a transaction")
            self._write_node(txn_id, self.root_page,
                             {"leaf": True, "keys": [], "vals": []},
                             fresh=True)

    # -- node I/O (everything goes through the record API) ---------------------

    def _read_node(self, txn_id: int, page: int) -> dict:
        return _decode(self.db.read_record(txn_id, page, 0))

    def _write_node(self, txn_id: int, page: int, node: dict,
                    fresh: bool = False) -> None:
        blob = _encode(node)
        if fresh:
            slot = self.db.insert_record(txn_id, page, blob)
            if slot != 0:
                raise BTreeError(f"page {page} was not empty")
        else:
            self.db.update_record(txn_id, page, 0, blob)

    def _allocate_page(self, txn_id: int) -> int:
        """A pool page not yet holding a node."""
        from .slotted_page import SlottedPage
        for page in self.pages:
            sp = SlottedPage.from_bytes(self.db.buffer.get_page(page))
            if sp.record_count == 0:
                return page
        raise BTreeError("B-tree page pool exhausted")

    @staticmethod
    def _node_fits(node: dict) -> bool:
        return len(_encode(node)) <= NODE_BYTE_BUDGET

    # -- search -------------------------------------------------------------------

    def get(self, txn_id: int, key: bytes) -> bytes | None:
        """Value for ``key``, or None."""
        self._check_key(key)
        page = self.root_page
        while True:
            node = self._read_node(txn_id, page)
            if node["leaf"]:
                try:
                    index = node["keys"].index(key)
                except ValueError:
                    return None
                return node["vals"][index]
            page = self._child_for(node, key)

    @staticmethod
    def _child_for(node: dict, key: bytes) -> int:
        index = 0
        while index < len(node["keys"]) and key >= node["keys"][index]:
            index += 1
        return node["vals"][index]

    def range(self, txn_id: int, low: bytes = b"", high: bytes | None = None):
        """Yield ``(key, value)`` pairs with ``low <= key < high`` in order."""
        yield from self._range_walk(txn_id, self.root_page, low, high)

    def _range_walk(self, txn_id, page, low, high):
        node = self._read_node(txn_id, page)
        if node["leaf"]:
            for key, value in zip(node["keys"], node["vals"]):
                if key < low:
                    continue
                if high is not None and key >= high:
                    return
                yield key, value
            return
        children = node["vals"]
        for index, child in enumerate(children):
            upper = node["keys"][index] if index < len(node["keys"]) else None
            lower = node["keys"][index - 1] if index > 0 else b""
            if high is not None and lower >= high:
                return
            if upper is not None and upper <= low:
                continue
            yield from self._range_walk(txn_id, child, low, high)

    # -- insert -----------------------------------------------------------------------

    def _check_key(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise BTreeError("keys must be non-empty bytes")
        if len(key) > MAX_KEY:
            raise BTreeError(f"key longer than {MAX_KEY} bytes")

    def put(self, txn_id: int, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._check_key(key)
        if len(value) > MAX_VALUE:
            raise BTreeError(f"value longer than {MAX_VALUE} bytes")
        split = self._put_into(txn_id, self.root_page, key, bytes(value))
        if split is not None:
            separator, right_page = split
            # grow a new root: move the old root to a fresh page so the
            # root page id stays stable
            old_root = self._read_node(txn_id, self.root_page)
            moved = self._allocate_page(txn_id)
            self._write_node(txn_id, moved, old_root, fresh=True)
            self._write_node(txn_id, self.root_page, {
                "leaf": False, "keys": [separator],
                "vals": [moved, right_page]})

    def _put_into(self, txn_id: int, page: int, key: bytes, value: bytes):
        """Insert below ``page``; returns ``(separator, new_right_page)``
        if this node split, else None."""
        node = self._read_node(txn_id, page)
        if node["leaf"]:
            self._leaf_insert(node, key, value)
        else:
            child = self._child_for(node, key)
            split = self._put_into(txn_id, child, key, value)
            if split is None:
                return None
            separator, right_page = split
            index = 0
            while index < len(node["keys"]) and separator >= node["keys"][index]:
                index += 1
            node["keys"].insert(index, separator)
            node["vals"].insert(index + 1, right_page)
        if self._node_fits(node):
            self._write_node(txn_id, page, node)
            return None
        return self._split(txn_id, page, node)

    @staticmethod
    def _leaf_insert(node: dict, key: bytes, value: bytes) -> None:
        keys = node["keys"]
        index = 0
        while index < len(keys) and keys[index] < key:
            index += 1
        if index < len(keys) and keys[index] == key:
            node["vals"][index] = value
            return
        keys.insert(index, key)
        node["vals"].insert(index, value)

    def _split(self, txn_id: int, page: int, node: dict):
        middle = len(node["keys"]) // 2
        if node["leaf"]:
            separator = node["keys"][middle]
            right = {"leaf": True, "keys": node["keys"][middle:],
                     "vals": node["vals"][middle:]}
            left = {"leaf": True, "keys": node["keys"][:middle],
                    "vals": node["vals"][:middle]}
        else:
            separator = node["keys"][middle]
            right = {"leaf": False, "keys": node["keys"][middle + 1:],
                     "vals": node["vals"][middle + 1:]}
            left = {"leaf": False, "keys": node["keys"][:middle],
                    "vals": node["vals"][:middle + 1]}
        right_page = self._allocate_page(txn_id)
        self._write_node(txn_id, right_page, right, fresh=True)
        self._write_node(txn_id, page, left)
        return separator, right_page

    # -- delete ------------------------------------------------------------------------

    def delete(self, txn_id: int, key: bytes) -> bool:
        """Remove ``key``; returns True if it existed."""
        self._check_key(key)
        page = self.root_page
        while True:
            node = self._read_node(txn_id, page)
            if node["leaf"]:
                if key not in node["keys"]:
                    return False
                index = node["keys"].index(key)
                del node["keys"][index]
                del node["vals"][index]
                self._write_node(txn_id, page, node)
                return True
            page = self._child_for(node, key)

    # -- verification ------------------------------------------------------------------------

    def check_invariants(self, txn_id: int) -> int:
        """Walk the tree asserting order and separator invariants;
        returns the number of keys seen.

        Raises:
            BTreeError: on any violation.
        """
        keys = list(self.range(txn_id))
        flat = [key for key, _ in keys]
        if flat != sorted(flat):
            raise BTreeError("leaf keys out of order")
        if len(set(flat)) != len(flat):
            raise BTreeError("duplicate keys")
        self._check_node(txn_id, self.root_page, b"", None)
        return len(flat)

    def _check_node(self, txn_id, page, low, high) -> None:
        node = self._read_node(txn_id, page)
        for key in node["keys"]:
            if key < low or (high is not None and key >= high):
                raise BTreeError(
                    f"key {key!r} outside separator range on page {page}")
        if node["keys"] != sorted(node["keys"]):
            raise BTreeError(f"node {page} keys unsorted")
        if not node["leaf"]:
            if len(node["vals"]) != len(node["keys"]) + 1:
                raise BTreeError(f"node {page} child count mismatch")
            bounds = [low] + node["keys"] + [high]
            for index, child in enumerate(node["vals"]):
                self._check_node(txn_id, child, bounds[index],
                                 bounds[index + 1])
