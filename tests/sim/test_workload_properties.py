"""Property tests for :class:`repro.sim.workload.WorkloadGenerator`.

The generator realizes the paper's workload knobs (P, s, f_u, p_u,
p_b, C, skew); the stress tier leans on it for every phase, so its
contract is pinned down directly here:

* every script stays inside the page range and has exactly ``s``
  accesses, with updates only in update transactions;
* the script stream is a pure function of (spec, num_pages, seed, the
  ``buffered_pages`` snapshots passed in) — and so are payloads;
* communality steers references into the buffered set, Zipf skew
  concentrates mass on low-ranked pages, and abort draws respect
  ``p_b``'s edge values.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ModelError  # noqa: E402
from repro.sim.workload import WorkloadGenerator, WorkloadSpec  # noqa: E402
from repro.storage.page import PAGE_SIZE  # noqa: E402


@st.composite
def specs(draw):
    return WorkloadSpec(
        concurrency=draw(st.integers(min_value=1, max_value=8)),
        pages_per_txn=draw(st.integers(min_value=1, max_value=12)),
        update_txn_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        update_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        abort_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        communality=draw(st.floats(min_value=0.0, max_value=1.0)),
        skew=draw(st.sampled_from([0.0, 0.5, 1.1])),
    )


def drain(generator, count, buffered=()):
    return [generator.next_script(buffered) for _ in range(count)]


class TestScriptValidity:
    @given(spec=specs(),
           num_pages=st.integers(min_value=1, max_value=64),
           seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60)
    def test_scripts_stay_in_page_range_with_s_accesses(
            self, spec, num_pages, seed):
        generator = WorkloadGenerator(spec, num_pages, seed=seed)
        for script in drain(generator, 8):
            assert len(script.accesses) == spec.pages_per_txn
            for access in script.accesses:
                assert 0 <= access.page < num_pages
                if access.update:
                    assert script.is_update
            if script.wants_abort:
                assert script.is_update

    @given(spec=specs(), seed=st.integers(min_value=0, max_value=2**32),
           buffered=st.lists(st.integers(min_value=0, max_value=19),
                             max_size=10))
    @settings(max_examples=60)
    def test_buffered_snapshot_never_escapes_page_range(
            self, spec, seed, buffered):
        generator = WorkloadGenerator(spec, 20, seed=seed)
        for script in drain(generator, 4, buffered=buffered):
            for access in script.accesses:
                assert 0 <= access.page < 20

    def test_rejects_empty_database(self):
        with pytest.raises(ModelError):
            WorkloadGenerator(WorkloadSpec(), num_pages=0)


class TestDeterminism:
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40)
    def test_script_stream_is_pure_in_the_seed(self, spec, seed):
        streams = []
        for _ in range(2):
            generator = WorkloadGenerator(spec, 32, seed=seed)
            streams.append([
                (script.is_update, script.wants_abort,
                 [(a.page, a.update) for a in script.accesses])
                for script in drain(generator, 6)])
        assert streams[0] == streams[1]

    @given(page=st.integers(min_value=0, max_value=10_000),
           version=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_payload_is_pure_function_of_page_and_version(
            self, page, version):
        first = WorkloadGenerator(WorkloadSpec(), 8, seed=1)
        second = WorkloadGenerator(WorkloadSpec(), 8, seed=99)
        payload = first.payload_for(page, version)
        assert payload == second.payload_for(page, version)
        assert len(payload) == PAGE_SIZE
        assert payload.startswith(f"p{page}v{version}.".encode("ascii"))


class TestDistributionBounds:
    def test_full_communality_draws_only_buffered_pages(self):
        spec = WorkloadSpec(communality=1.0)
        generator = WorkloadGenerator(spec, 100, seed=5)
        buffered = [3, 7, 11]
        for script in drain(generator, 20, buffered=buffered):
            for access in script.accesses:
                assert access.page in buffered

    def test_zero_communality_ignores_buffered_set(self):
        spec = WorkloadSpec(communality=0.0, pages_per_txn=10)
        generator = WorkloadGenerator(spec, 100, seed=5)
        pages = [access.page
                 for script in drain(generator, 50, buffered=[3])
                 for access in script.accesses]
        # uniform over 100 pages: page 3 cannot dominate
        assert pages.count(3) < len(pages) * 0.2

    def test_zipf_skew_concentrates_on_low_ranks(self):
        uniform = WorkloadGenerator(WorkloadSpec(skew=0.0), 64, seed=9)
        skewed = WorkloadGenerator(WorkloadSpec(skew=1.1), 64, seed=9)

        def hot_fraction(generator):
            pages = [access.page for script in drain(generator, 120)
                     for access in script.accesses]
            return sum(1 for page in pages if page < 8) / len(pages)

        assert hot_fraction(skewed) > hot_fraction(uniform) + 0.2

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_abort_probability_edges(self, seed):
        never = WorkloadGenerator(
            WorkloadSpec(abort_probability=0.0), 16, seed=seed)
        always = WorkloadGenerator(
            WorkloadSpec(abort_probability=1.0, update_txn_fraction=1.0),
            16, seed=seed)
        assert not any(s.wants_abort for s in drain(never, 10))
        assert all(s.wants_abort for s in drain(always, 10))

    def test_update_fraction_edges(self):
        readonly = WorkloadGenerator(
            WorkloadSpec(update_txn_fraction=0.0), 16, seed=2)
        for script in drain(readonly, 10):
            assert not script.is_update
            assert not script.update_pages
