"""Transaction manager: id allocation, lifecycle, and the active set.

The manager owns transaction objects and their state transitions; the
*work* of commit and abort (forcing pages, writing EOT records, undo)
is orchestrated by the recovery layer, which calls back into
:meth:`TransactionManager.finish`.
"""

from __future__ import annotations

from ..errors import InvalidTransactionState
from ..obs.tracer import NULL_TRACER
from .transaction import Transaction, TxnState


class TransactionManager:
    """Registry and lifecycle authority for transactions.

    Args:
        tracer: event tracer; each transaction's lifetime becomes a
            detached ``txn`` span (begin → commit/abort) carrying its
            outcome and — when ``stats`` is supplied — the page
            transfers performed while it ran.
        stats: shared :class:`~repro.storage.iostats.IOStats` to bind
            to the transaction spans.
        metrics: optional registry for ``txn.finished{outcome=...}``.
    """

    def __init__(self, tracer=None, stats=None, metrics=None) -> None:
        self._next_id = 1
        self._transactions: dict = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._stats = stats
        self._m_finished = (metrics.counter("txn.finished")
                            if metrics is not None else None)
        self._spans: dict = {}

    def begin(self, txn_id: int | None = None) -> Transaction:
        """Start a new transaction (the BOT event).

        ``txn_id`` pins a caller-assigned id (sharded engines keep one
        global id across shards); the auto-allocator skips past it so
        ids stay unique either way.
        """
        if txn_id is None:
            txn_id = self._next_id
            self._next_id += 1
        else:
            if txn_id in self._transactions:
                raise InvalidTransactionState(
                    f"transaction id {txn_id} already registered")
            self._next_id = max(self._next_id, txn_id + 1)
        txn = Transaction(txn_id=txn_id)
        self._transactions[txn.txn_id] = txn
        if self.tracer.enabled:
            self._spans[txn.txn_id] = self.tracer.start_span(
                "txn", stats=self._stats, txn=txn.txn_id)
        return txn

    def get(self, txn_id: int) -> Transaction:
        """Look up a transaction by id."""
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise InvalidTransactionState(f"unknown transaction {txn_id}") from None

    def require_active(self, txn_id: int) -> Transaction:
        """Look up a transaction and insist it is still running."""
        txn = self.get(txn_id)
        if txn.state is not TxnState.ACTIVE:
            raise InvalidTransactionState(
                f"transaction {txn_id} is {txn.state.value}, not active")
        return txn

    def finish(self, txn_id: int, outcome: TxnState) -> Transaction:
        """Transition an active transaction to COMMITTED or ABORTED."""
        if outcome not in (TxnState.COMMITTED, TxnState.ABORTED):
            raise ValueError("outcome must be COMMITTED or ABORTED")
        txn = self.require_active(txn_id)
        txn.state = outcome
        span = self._spans.pop(txn_id, None)
        if span is not None:
            span.finish(outcome=outcome.value)
        if self._m_finished is not None:
            self._m_finished.labels(outcome=outcome.value).inc()
        return txn

    def active_transactions(self) -> list:
        """Active transactions, in begin order."""
        return [t for t in self._transactions.values() if t.is_active]

    def committed_ids(self) -> set:
        """Ids of committed transactions (used by twin selection during
        recovery)."""
        return {t.txn_id for t in self._transactions.values()
                if t.state is TxnState.COMMITTED}

    def lose_memory(self) -> None:
        """Crash simulation: the in-memory registry vanishes.

        Ids keep increasing across the crash so stamps stay unique.
        """
        self._transactions.clear()
        # in-flight spans die with main memory: no events for them
        self._spans.clear()

    def adopt(self, txn: Transaction) -> None:
        """Re-register a transaction reconstructed from the log."""
        self._transactions[txn.txn_id] = txn
        if txn.txn_id >= self._next_id:
            self._next_id = txn.txn_id + 1
