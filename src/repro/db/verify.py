"""Whole-database consistency verification.

:func:`verify_database` sweeps every invariant the recovery protocols
promise and returns a list of human-readable violations (empty = clean).
Used by the failure campaigns and handy as a post-incident check in
examples and operations:

* **parity**: each group's current twin equals the XOR of its data;
* **twins**: at most one WORKING twin owned by an *active* transaction
  per group; the Dirty_Set agrees with the twin headers it asserts;
* **buffer**: every uncommitted modifier registered in a frame is an
  active transaction;
* **log**: per-transaction chains are well-formed (BOT first, at most
  one EOT, no records after the EOT), and the duplex copies match;
* **records** (record mode): every page parses as a slotted page.
"""

from __future__ import annotations

from ..storage.page import NO_TXN, TwinState
from ..wal.records import (AbortRecord, BOTRecord, CommitRecord)
from .slotted_page import SlottedPage


def verify_database(db) -> list:
    """Run every check against ``db``; returns violation strings.

    A :class:`~repro.db.sharded.ShardedDatabase` is verified shard by
    shard (violations are prefixed with the shard index) plus its
    global commit log's duplex integrity.
    """
    # worker-process facades verify each shard inside its worker (the
    # engines live across a pipe, not in this address space); checked
    # before the shards attribute, which they also expose (as proxies)
    remote = getattr(db, "verify_remote", None)
    if remote is not None:
        return remote()
    shards = getattr(db, "shards", None)
    if shards is not None:
        problems = [f"shard {i}: {problem}"
                    for i, shard in enumerate(shards)
                    for problem in verify_database(shard)]
        problems += _check_log(db.commit_log)
        return problems
    problems = []
    problems += _check_parity(db)
    problems += _check_twins(db)
    problems += _check_buffer(db)
    problems += _check_log(db.undo_log)
    if db.redo_log is not db.undo_log:
        problems += _check_log(db.redo_log)
    if db.config.record_logging:
        problems += _check_slotted_pages(db)
    return problems


def _check_parity(db) -> list:
    bad = db.verify_parity()
    return [f"parity mismatch in group {group}" for group in bad]


def _check_twins(db) -> list:
    if db.rda is None:
        return []
    problems = []
    active = {t.txn_id for t in db.txns.active_transactions()}
    for group in range(db.array.geometry.num_groups):
        headers = [db.array.peek_twin(group, which)[1] for which in range(2)]
        owned = [h for h in headers
                 if h.state is TwinState.WORKING and h.txn_id in active]
        if len(owned) > 1:
            problems.append(
                f"group {group}: two WORKING twins owned by active txns")
        entry = db.rda.dirty_set.get(group)
        if entry is not None:
            header = headers[entry.working_twin]
            if header.txn_id != entry.txn_id:
                problems.append(
                    f"group {group}: Dirty_Set names txn {entry.txn_id} "
                    f"but the twin header says {header.txn_id}")
            if header.state is not TwinState.WORKING:
                problems.append(
                    f"group {group}: Dirty_Set working twin not WORKING "
                    f"({header.state.name})")
        elif owned:
            problems.append(
                f"group {group}: active WORKING twin (txn "
                f"{owned[0].txn_id}) missing from the Dirty_Set")
    return problems


def _check_buffer(db) -> list:
    problems = []
    active = {t.txn_id for t in db.txns.active_transactions()}
    for page in db.buffer.resident_pages():
        for txn_id in db.buffer.modifiers_of(page):
            if txn_id not in active:
                problems.append(
                    f"page {page}: frame names finished txn {txn_id} "
                    "as an uncommitted modifier")
    return problems


def _check_log(log) -> list:
    problems = []
    if not log.verify_duplex():
        problems.append(f"log {log.name}: duplex copies diverge")
    per_txn: dict = {}
    for record in log.records():
        if record.txn_id == 0 or record.txn_id == NO_TXN:
            continue
        state = per_txn.setdefault(record.txn_id,
                                   {"bot": False, "eot": False})
        if isinstance(record, BOTRecord):
            if state["bot"]:
                problems.append(
                    f"log {log.name}: duplicate BOT for txn {record.txn_id}")
            state["bot"] = True
        elif isinstance(record, (CommitRecord, AbortRecord)):
            if state["eot"]:
                problems.append(
                    f"log {log.name}: second EOT for txn {record.txn_id}")
            state["eot"] = True
        elif state["eot"]:
            problems.append(
                f"log {log.name}: record after EOT for txn {record.txn_id}")
    return problems


def _check_slotted_pages(db) -> list:
    problems = []
    for page in range(db.num_data_pages):
        try:
            SlottedPage.from_bytes(db.disk_page(page))
        except Exception as error:  # noqa: BLE001 - any parse failure counts
            problems.append(f"page {page}: unparseable slotted page ({error})")
    return problems
