"""Figure 13: RDA benefit vs pages accessed per transaction.

The paper's final figure: percent throughput increase from RDA recovery
(record logging, ¬FORCE/ACC, high-update, C = 0.9) as s sweeps 5..45.
The published curve runs from ≈6% to ≈70%, monotonically.
"""

import pytest

from repro.model import figure13

from .conftest import write_table


def test_figure13_regeneration(benchmark, results_dir):
    figure = benchmark(figure13)
    write_table(results_dir, "figure13", figure.format_table())

    series = figure.curves["% increase"]
    assert series == sorted(series)                  # monotone in s
    first, last = series[0], series[-1]
    assert first == pytest.approx(6.0, abs=2.0)      # paper: 6.0 at s=5
    assert last == pytest.approx(70.0, abs=6.0)      # paper: 70.0 at s=45

    benchmark.extra_info["gain_at_s5"] = round(first, 2)
    benchmark.extra_info["gain_at_s45"] = round(last, 2)
    benchmark.extra_info["paper_axis"] = "6.0 .. 70.0"


def test_figure13_benefit_tracks_transaction_size(benchmark):
    """Wider sweep: the benefit keeps growing past the paper's range."""

    def evaluate():
        return figure13(sweep=(5, 25, 45, 60)).curves["% increase"]

    series = benchmark(evaluate)
    assert series == sorted(series)
