"""Tests for configuration presets."""

import pytest

from repro.db import DBConfig, all_preset_names, preset
from repro.errors import ModelError


class TestPresets:
    def test_eight_presets(self):
        assert len(all_preset_names()) == 8

    def test_preset_fields(self):
        cfg = preset("page-force-rda")
        assert not cfg.record_logging and cfg.force and cfg.rda
        cfg = preset("record-noforce-log")
        assert cfg.record_logging and not cfg.force and not cfg.rda

    def test_overrides(self):
        cfg = preset("page-force-rda", group_size=8, num_groups=10)
        assert cfg.num_data_pages == 80

    def test_unknown_preset(self):
        with pytest.raises(ModelError):
            preset("page-sometimes-rda")

    def test_algorithm_names_unique(self):
        names = {preset(n).algorithm_name for n in all_preset_names()}
        assert len(names) == 8


class TestValidation:
    def test_group_size(self):
        with pytest.raises(ModelError):
            DBConfig(group_size=1)

    def test_num_groups(self):
        with pytest.raises(ModelError):
            DBConfig(num_groups=0)

    def test_buffer(self):
        with pytest.raises(ModelError):
            DBConfig(buffer_capacity=1)
