"""Cross-validation: the two media-recovery paths must agree.

Restoring a failed disk from the archive + redo log and rebuilding it
from parity are different mechanisms with the same contract; given the
same pre-failure state they must produce byte-identical databases.
"""

import pytest

from repro.db import ArchiveManager, Database, preset
from repro.sim import Simulator, WorkloadSpec

SIZES = dict(group_size=5, num_groups=12, buffer_capacity=16)
SPEC = WorkloadSpec(concurrency=3, pages_per_txn=5, communality=0.5,
                    abort_probability=0.1)


def run_load(db, transactions, seed):
    Simulator(db, SPEC, seed=seed, buffer_feedback=False).run(transactions)
    db.buffer.flush_all_dirty()


@pytest.mark.parametrize("victim", [0, 2, 5])
def test_archive_restore_equals_parity_rebuild(victim):
    seed = 31
    # path A: parity rebuild on the classical array
    parity_db = Database(preset("page-force-log", **SIZES))
    run_load(parity_db, 40, seed)
    parity_db.media_failure(victim)
    parity_db.media_recover(victim)

    # path B: archive + roll-forward on an identical run
    archive_db = Database(preset("page-force-log", **SIZES))
    manager = ArchiveManager(archive_db)
    manager.dump()                        # empty baseline dump
    run_load(archive_db, 40, seed)
    archive_db.media_failure(victim)
    manager.restore_failed_disk(victim)

    for page in range(parity_db.num_data_pages):
        assert parity_db.disk_page(page) == archive_db.disk_page(page), page
    assert parity_db.verify_parity() == []
    assert archive_db.verify_parity() == []


def serial_updates(db, rng_pages, dump_at=None, manager=None):
    """Deterministic serial single-page transactions; optionally dump
    midway (the fuzzy-archive scenario the roll-forward must cover)."""
    from repro.storage import make_page
    for index, page in enumerate(rng_pages):
        if dump_at is not None and index == dump_at:
            manager.dump()
        txn = db.begin()
        db.write_page(txn, page, make_page(bytes([index % 250 + 1])))
        if index % 7 == 3:
            db.abort(txn)
        else:
            db.commit(txn)
    db.buffer.flush_all_dirty()


def test_mid_run_dump_also_agrees():
    import random
    pages = [random.Random(7).randrange(60) for _ in range(40)]

    parity_db = Database(preset("page-force-log", **SIZES))
    serial_updates(parity_db, pages)
    parity_db.media_failure(1)
    parity_db.media_recover(1)

    archive_db = Database(preset("page-force-log", **SIZES))
    manager = ArchiveManager(archive_db)
    serial_updates(archive_db, pages, dump_at=20, manager=manager)
    archive_db.media_failure(1)
    manager.restore_failed_disk(1)

    for page in range(parity_db.num_data_pages):
        assert parity_db.disk_page(page) == archive_db.disk_page(page), page
