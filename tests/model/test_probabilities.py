"""Tests for the model's probability terms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.probabilities import (average_log_entry_length,
                                       concurrent_modifier_fraction,
                                       geometric_chain_term,
                                       logging_probability,
                                       optimal_checkpoint_interval,
                                       replaced_page_modified,
                                       shared_update_pages,
                                       stolen_before_eot)


class TestLoggingProbability:
    """Eq. 5: p_l = 1 - (S/(N K))(1 - (1 - N/S)^K)."""

    def test_zero_pending_pages(self):
        assert logging_probability(0, 5000, 10) == 0.0

    def test_single_page_never_logs(self):
        assert logging_probability(1, 5000, 10) == pytest.approx(0.0, abs=1e-12)

    def test_paper_operating_point(self):
        """High-update FORCE: K = P f_u s p_u / 2 = 21.6 -> p_l ≈ 0.02."""
        p_l = logging_probability(21.6, 5000, 10)
        assert 0.015 < p_l < 0.03

    def test_all_pages_in_one_group(self):
        """K pages into a single group: only one escapes logging, so
        p_l = 1 - 1/K."""
        assert logging_probability(10, 10, 10) == pytest.approx(0.9)

    def test_bad_geometry(self):
        with pytest.raises(ModelError):
            logging_probability(5, 5, 10)

    @given(st.floats(0.1, 500), st.floats(0.1, 500))
    def test_monotone_in_k(self, k1, k2):
        lo, hi = sorted((k1, k2))
        assert logging_probability(lo, 5000, 10) <= \
            logging_probability(hi, 5000, 10) + 1e-12

    @given(st.floats(0.01, 1000))
    def test_bounded(self, k):
        assert 0.0 <= logging_probability(k, 5000, 10) <= 1.0

    def test_more_groups_less_logging(self):
        crowded = logging_probability(50, 1000, 10)
        roomy = logging_probability(50, 10000, 10)
        assert roomy < crowded


class TestReplacedPageModified:
    def test_zero_updates(self):
        assert replaced_page_modified(0.0, 0.9, 0.5) == 0.0

    def test_increases_with_communality(self):
        low = replaced_page_modified(0.8, 0.9, 0.1)
        high = replaced_page_modified(0.8, 0.9, 0.9)
        assert high > low

    def test_c_validation(self):
        with pytest.raises(ModelError):
            replaced_page_modified(0.5, 0.5, 1.0)

    @given(st.floats(0, 1), st.floats(0, 1), st.floats(0, 0.99))
    def test_bounded(self, f_u, p_u, C):
        assert 0.0 <= replaced_page_modified(f_u, p_u, C) <= 1.0


class TestStolenBeforeEOT:
    def test_single_transaction_never_stolen(self):
        assert stolen_before_eot(300, 0.5, 10, 1) == 0.0

    def test_decreases_with_communality(self):
        assert stolen_before_eot(300, 0.9, 10, 6) < \
            stolen_before_eot(300, 0.1, 10, 6)

    def test_buffer_pressure_increases_steals(self):
        assert stolen_before_eot(50, 0.5, 10, 6) > \
            stolen_before_eot(300, 0.5, 10, 6)

    def test_validation(self):
        with pytest.raises(ModelError):
            stolen_before_eot(5, 0.9, 10, 6)

    @given(st.integers(50, 500), st.floats(0, 0.9), st.integers(1, 40),
           st.integers(1, 10))
    def test_bounded(self, B, C, s, P):
        if B > C * s:
            assert 0.0 <= stolen_before_eot(B, C, s, P) <= 1.0


class TestSharedUpdatePages:
    def test_no_sharing_at_zero_communality(self):
        value = shared_update_pages(300, 0.0, 10, 0.9, 6, 0.8)
        assert value == pytest.approx(6 * 0.8 * 10 * 0.9)

    def test_sharing_reduces_distinct_pages(self):
        no_share = shared_update_pages(300, 0.0, 10, 0.9, 6, 0.8)
        shared = shared_update_pages(300, 0.7, 10, 0.9, 6, 0.8)
        assert shared < no_share

    def test_bounded_by_buffer(self):
        assert shared_update_pages(50, 0.9, 40, 1.0, 10, 1.0) <= 50

    def test_appendix_recurrence(self):
        """The closed form must satisfy the paper's recurrence
        S(k) - S(k-1) = s p_u (1 - C S(k-1)/B)."""
        B, C, s, p_u = 300, 0.6, 10, 0.9
        for k in range(1, 6):
            prev = shared_update_pages(B, C, s, p_u, k - 1, 1.0)
            this = shared_update_pages(B, C, s, p_u, k, 1.0)
            assert this - prev == pytest.approx(s * p_u * (1 - C * prev / B))

    def test_validation(self):
        with pytest.raises(ModelError):
            shared_update_pages(0, 0.5, 10, 0.9, 6, 0.8)


class TestSmallHelpers:
    def test_log_entry_length_paper_values(self):
        """High-update: d=3, r=100, s=10, e=10 -> L = 37."""
        assert average_log_entry_length(3, 100, 10, 10) == pytest.approx(37.0)

    def test_log_entry_length_validation(self):
        with pytest.raises(ModelError):
            average_log_entry_length(10, 100, 5, 10)

    def test_chain_term_zero_extremes(self):
        assert geometric_chain_term(0.0, 9) == 0.0
        assert geometric_chain_term(1.0, 9) == 0.0

    def test_chain_term_interior_positive(self):
        assert geometric_chain_term(0.5, 9) > 0.0

    def test_concurrent_modifier_fraction_bounds(self):
        value = concurrent_modifier_fraction(300, 0.5, 10, 0.9, 6, 0.8)
        assert 0.0 <= value <= 1.0

    def test_single_txn_has_no_concurrent_modifiers(self):
        assert concurrent_modifier_fraction(300, 0.5, 10, 0.9, 1, 0.8) == 0.0


class TestOptimalInterval:
    def test_first_order_condition(self):
        """I* balances checkpoint overhead against redo growth."""
        c_E, c_c, T, redo, f_u = 80.0, 500.0, 5e6, 60.0, 0.8
        I = optimal_checkpoint_interval(c_E, c_c, T, redo, f_u)

        def loss(i):
            return (i / (2 * c_E)) * f_u * redo + c_c * T / i

        assert loss(I) < loss(I * 0.9)
        assert loss(I) < loss(I * 1.1)

    def test_cheaper_checkpoints_mean_shorter_interval(self):
        expensive = optimal_checkpoint_interval(80, 1000, 5e6, 60, 0.8)
        cheap = optimal_checkpoint_interval(80, 10, 5e6, 60, 0.8)
        assert cheap < expensive

    def test_validation(self):
        with pytest.raises(ModelError):
            optimal_checkpoint_interval(80, 0, 5e6, 60, 0.8)
