#!/usr/bin/env python3
"""Banking OLTP: record logging, transfers, and crash safety.

The OLTP setting Gray et al. motivate parity striping with: many small
transactions against shared pages.  Accounts live in a heap file over
slotted pages; transfers move money under record locks; the invariant —
**total balance is conserved** — is checked across aborts and a crash.

Run:  python examples/banking_oltp.py
"""

import random

from repro.db import Database, HeapFile, preset

ACCOUNTS = 40
INITIAL_BALANCE = 1_000
TRANSFERS = 120


def encode(balance):
    return f"balance={balance:012d}".encode("ascii")


def decode(record):
    return int(record.split(b"=")[1])


def total_balance(db, heap):
    t = db.begin()
    total = sum(decode(record) for _, record in heap.scan(t))
    db.commit(t)
    return total


def main():
    rng = random.Random(2026)
    db = Database(preset("record-noforce-rda", group_size=5, num_groups=16,
                         buffer_capacity=8, checkpoint_interval=400))
    db.format_record_pages(range(db.num_data_pages))
    heap = HeapFile(db, range(16))

    setup = db.begin()
    rids = [heap.insert(setup, encode(INITIAL_BALANCE))
            for _ in range(ACCOUNTS)]
    db.commit(setup)
    expected_total = ACCOUNTS * INITIAL_BALANCE
    print(f"{ACCOUNTS} accounts x {INITIAL_BALANCE} = {expected_total} total")
    print("configuration:", db.config.algorithm_name)

    committed = aborted = 0
    for i in range(TRANSFERS):
        src, dst = rng.sample(rids, 2)
        amount = rng.randrange(1, 200)
        t = db.begin()
        src_balance = decode(heap.read(t, src))
        dst_balance = decode(heap.read(t, dst))
        heap.update(t, src, encode(src_balance - amount))
        heap.update(t, dst, encode(dst_balance + amount))
        if rng.random() < 0.10:          # teller changes their mind
            db.abort(t)
            aborted += 1
        else:
            db.commit(t)
            committed += 1
        db.checkpointer.note_work(4)
        db.checkpointer.maybe_checkpoint()
        if i == TRANSFERS // 2:
            print("\n-- power failure mid-workload! --")
            in_flight = db.begin()
            victim_src, victim_dst = rng.sample(rids, 2)
            balance = decode(heap.read(in_flight, victim_src))
            heap.update(in_flight, victim_src, encode(balance - 10**9))
            db.crash()
            stats = db.recover()
            print(f"recovered: {len(stats['losers'])} loser(s) rolled back, "
                  f"{stats['redo_applied']} redo record(s), "
                  f"{stats['page_transfers']} page transfers")
            print(f"total after recovery: {total_balance(db, heap)} "
                  f"(expected {expected_total})\n")

    print(f"{committed} transfers committed, {aborted} aborted")
    final = total_balance(db, heap)
    print(f"final total balance: {final} (expected {expected_total})")
    assert final == expected_total, "conservation violated!"
    print("parity scrub:", db.verify_parity() or "clean")
    print(f"page transfers: {db.stats.total}; "
          f"unlogged steals: {db.counters.unlogged_steals}; "
          f"promotions: {db.counters.promotions}")


if __name__ == "__main__":
    main()
