"""Unit tests for counters, gauges, histograms, and the registry."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


def test_counter_increments_and_rejects_decrease():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_are_cached_children():
    c = Counter("wal.records")
    c.labels(type="CommitRecord").inc()
    c.labels(type="CommitRecord").inc()
    c.labels(type="BOTRecord").inc()
    assert c.labels(type="CommitRecord") is c.labels(type="CommitRecord")
    out = {}
    c.collect(out)
    assert out["wal.records{type=CommitRecord}"] == 2
    assert out["wal.records{type=BOTRecord}"] == 1
    assert out["wal.records"] == 0        # parent counts only direct incs


def test_label_keys_are_sorted_in_series_key():
    c = Counter("s")
    c.labels(b=2, a=1).inc()
    out = {}
    c.collect(out)
    assert "s{a=1,b=2}" in out


def test_gauge_moves_both_ways():
    g = Gauge("dirty")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2


def test_histogram_buckets_and_summary():
    h = Histogram("xfers", buckets=(3, 4, 6))
    for value in (3, 4, 4, 5, 100):
        h.observe(value)
    assert h.count == 5
    assert h.min == 3 and h.max == 100
    assert h.mean == pytest.approx(116 / 5)
    out = {}
    h.collect(out)
    doc = out["xfers"]
    assert doc["buckets"] == {"le_3": 1, "le_4": 2, "le_6": 1, "le_inf": 1}


def test_registry_get_or_create_shares_instruments():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_snapshot_is_json_serializable():
    registry = MetricsRegistry()
    registry.counter("ops").inc(7)
    registry.counter("ops").labels(kind="read").inc()
    registry.gauge("depth").set(2)
    registry.histogram("cost").observe(4)
    snap = registry.snapshot()
    assert snap["counters"]["ops"] == 7
    assert snap["counters"]["ops{kind=read}"] == 1
    assert snap["gauges"]["depth"] == 2
    assert snap["histograms"]["cost"]["count"] == 1
    json.dumps(snap)      # must round-trip to JSON without custom encoders


class TestPrometheusExposition:
    def parse(self, text):
        """A tiny text-format parser: {(name, frozen_labels): value}.

        Handles the spec's escapes (backslash, quote, newline) so the
        round-trip test actually exercises them.
        """
        samples = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, rest = line.partition("{")
            if rest:
                labels_text, _, value_text = rest.rpartition("} ")
                labels = {}
                i = 0
                while i < len(labels_text):
                    eq = labels_text.index("=", i)
                    key = labels_text[i:eq]
                    assert labels_text[eq + 1] == '"'
                    j = eq + 2
                    value = []
                    while labels_text[j] != '"':
                        if labels_text[j] == "\\":
                            escaped = labels_text[j + 1]
                            value.append({"\\": "\\", '"': '"',
                                          "n": "\n"}[escaped])
                            j += 2
                        else:
                            value.append(labels_text[j])
                            j += 1
                    labels[key] = "".join(value)
                    i = j + 2           # skip closing quote + comma
                key = (name, frozenset(labels.items()))
            else:
                name, _, value_text = line.partition(" ")
                key = (name.strip(), frozenset())
            samples[key] = float(value_text)
        return samples

    def test_counters_and_gauges_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("wal.records").inc(7)
        registry.counter("wal.records").labels(type="CommitRecord").inc(3)
        registry.gauge("dirty.groups").set(5)
        samples = self.parse(registry.to_prometheus())
        assert samples[("wal_records", frozenset())] == 7
        assert samples[("wal_records",
                        frozenset({("type", "CommitRecord")}))] == 3
        assert samples[("dirty_groups", frozenset())] == 5

    def test_nasty_label_values_survive_round_trip(self):
        registry = MetricsRegistry()
        nasty = 'back\\slash "quoted"\nnewline'
        registry.counter("ops").labels(detail=nasty).inc(9)
        text = registry.to_prometheus()
        # the raw newline must not appear inside the label value
        sample_lines = [l for l in text.splitlines()
                        if l and not l.startswith("#")]
        assert all('\n' not in l for l in sample_lines)
        samples = self.parse(text)
        assert samples[("ops", frozenset({("detail", nasty)}))] == 9

    def test_histogram_exposes_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("cost", buckets=(1, 4, 8))
        for value in (1, 3, 4, 9):
            hist.observe(value)
        samples = self.parse(registry.to_prometheus())
        assert samples[("cost_bucket", frozenset({("le", "1")}))] == 1
        assert samples[("cost_bucket", frozenset({("le", "4")}))] == 3
        assert samples[("cost_bucket", frozenset({("le", "8")}))] == 3
        assert samples[("cost_bucket", frozenset({("le", "+Inf")}))] == 4
        assert samples[("cost_sum", frozenset())] == 17
        assert samples[("cost_count", frozenset())] == 4

    def test_type_lines_precede_samples(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("c.d").set(1)
        registry.histogram("e.f").observe(2)
        lines = registry.to_prometheus().splitlines()
        assert "# TYPE a_b counter" in lines
        assert "# TYPE c_d gauge" in lines
        assert "# TYPE e_f histogram" in lines
        for type_line in [l for l in lines if l.startswith("# TYPE")]:
            name = type_line.split()[2]
            index = lines.index(type_line)
            assert lines[index + 1].startswith(name)

    def test_name_sanitization(self):
        from repro.obs import prometheus_name

        assert prometheus_name("wal.records") == "wal_records"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"

    def test_escape_label_value_order(self):
        from repro.obs import escape_label_value

        assert escape_label_value('a\\b') == 'a\\\\b'
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value('a\nb') == 'a\\nb'
        # backslash first: an escaped quote stays one escape deep
        assert escape_label_value('\\"') == '\\\\\\"'
