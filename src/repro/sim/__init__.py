"""Workload generation, simulation driving, and failure campaigns."""

from .crash import CampaignResult, crash_campaign, media_campaign
from .faultplan import (CrashPointReached, FaultInjector, FaultPlan,
                        FaultSweepReport, PlanOutcome, Violation, WriteRecord,
                        default_fault_workload, record_fault_setup,
                        record_fault_workload, record_schedule, run_plan,
                        run_sweep, shard_aligned_fault_workload,
                        violations_by_kind)
from .metrics import DEFAULT_T, SimulationReport
from .simulator import Simulator, run_workload
from .timed import TimedObserver
from .tpcb import TPCB, TPCBConfig
from .trace import (ReplaySimulator, TracingSimulator, script_from_json,
                    script_to_json)
from .workload import (HIGH_RETRIEVAL, HIGH_UPDATE, Access, TransactionScript,
                       WorkloadGenerator, WorkloadSpec)

__all__ = [
    "CampaignResult",
    "crash_campaign",
    "media_campaign",
    "CrashPointReached",
    "FaultInjector",
    "FaultPlan",
    "FaultSweepReport",
    "PlanOutcome",
    "Violation",
    "WriteRecord",
    "default_fault_workload",
    "record_fault_setup",
    "record_fault_workload",
    "record_schedule",
    "run_plan",
    "run_sweep",
    "shard_aligned_fault_workload",
    "violations_by_kind",
    "DEFAULT_T",
    "SimulationReport",
    "Simulator",
    "run_workload",
    "TimedObserver",
    "TPCB",
    "TPCBConfig",
    "ReplaySimulator",
    "TracingSimulator",
    "script_from_json",
    "script_to_json",
    "HIGH_RETRIEVAL",
    "HIGH_UPDATE",
    "Access",
    "TransactionScript",
    "WorkloadGenerator",
    "WorkloadSpec",
]
