"""Trace aggregation: from an event stream to the paper's cost table.

The analytical model (Section 5) predicts a page-transfer cost per
*operation type*: a small write costs ``a ∈ {3, 4}`` transfers, a write
into a dirty group ``a + 2``, an RDA commit zero, an undo-via-parity
five to six.  :func:`aggregate_events` reduces a recorded trace to
exactly that shape — per event *variant*, the count and the mean
read/write/transfer cost — so a simulated run can be cross-checked
against the model event-by-event instead of per-run.

Event variants: events of the same name are split by the small set of
discriminating attributes in :data:`VARIANT_KEYS` (e.g.
``array.small_write[buffered=False,twins=1]`` vs
``array.small_write[twins=2]``), because the model prices those
variants differently.
"""

from __future__ import annotations

import json

from ..errors import ModelError
from ..model.operations import MODEL_EXPECTATIONS

VARIANT_KEYS = ("mode", "buffered", "twins", "logged", "degraded",
                "outcome", "reason", "cause", "phase")
"""Attribute names that split one event name into model-priced variants,
in the order they appear in the variant suffix."""

# MODEL_EXPECTATIONS lives in repro.model.operations (the numeric bands
# feed the drift detector too); imported here for existing call sites.


def model_expectation(key: str) -> str:
    """The model's predicted transfer count for an event variant
    (``""`` when the model does not price it)."""
    for prefix, prediction in MODEL_EXPECTATIONS:
        if key.startswith(prefix):
            return prediction
    return ""


def event_key(name: str, attrs: dict) -> str:
    """Aggregation key: the event name plus its discriminating attrs."""
    variants = [f"{k}={attrs[k]}" for k in VARIANT_KEYS if k in attrs]
    if not variants:
        return name
    return f"{name}[{','.join(variants)}]"


def load_trace(path) -> list:
    """Parse a JSONL trace file into event dicts.

    Raises:
        ModelError: on a malformed line (truncated file, non-JSON).
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as error:
                raise ModelError(
                    f"{path}:{lineno}: malformed trace line: {error}"
                ) from None
            if not isinstance(event, dict) or "name" not in event:
                raise ModelError(
                    f"{path}:{lineno}: trace line is not an event object")
            events.append(event)
    return events


def aggregate_events(events) -> dict:
    """Reduce events to per-variant cost rows.

    Returns ``{variant_key: {"count", "reads", "writes", "transfers",
    "mean_reads", "mean_writes", "mean_transfers", "dur_ms",
    "model"}}``; the transfer fields stay ``None`` for event types that
    never carried a cost (pure markers like ``txn.begin``).
    """
    rows: dict = {}

    def add(key, count, reads=None, writes=None, transfers=None,
            dur_ms=None):
        row = rows.get(key)
        if row is None:
            row = {"count": 0, "reads": None, "writes": None,
                   "transfers": None, "dur_ms": None}
            rows[key] = row
        row["count"] += count
        for field, value in (("reads", reads), ("writes", writes),
                             ("transfers", transfers), ("dur_ms", dur_ms)):
            if value is not None:
                row[field] = value if row[field] is None else row[field] + value
        return row

    for event in events:
        attrs = event.get("attrs", {})
        name = event["name"]
        if name == "array.small_write_batch":
            # one coalesced window event stands in for per-page
            # small-write events; expand it back into the model-priced
            # variants (batched ops are always single-twin, and cost
            # exactly 3 buffered / 4 unbuffered transfers)
            buffered = attrs.get("buffered_pages", 0)
            plain = attrs.get("pages", 0) - buffered
            if buffered:
                add("array.small_write[buffered=True,twins=1]", buffered,
                    reads=buffered, writes=2 * buffered,
                    transfers=3 * buffered)
            if plain:
                add("array.small_write[buffered=False,twins=1]", plain,
                    reads=2 * plain, writes=2 * plain, transfers=4 * plain)
            first = attrs.get("first_steals", 0)
            if first:
                # the recovery policy's per-window bookkeeping rides on
                # this event; each first steal stands in for one legacy
                # rda.group_dirty marker
                add("rda.group_dirty", first)
            add(name, 1, dur_ms=attrs.get("dur_ms"))
            continue
        if name == "rda.commit":
            # each dirty group flipped at this commit stands in for one
            # legacy rda.twin_flip event (zero transfers by definition)
            flips = attrs.get("groups", 0)
            if flips:
                add("rda.twin_flip", flips, reads=0, writes=0, transfers=0)
            add(event_key(name, attrs), 1,
                reads=attrs.get("reads", 0), writes=attrs.get("writes", 0),
                transfers=attrs.get("transfers"))
            continue
        if name == "rda.steal_batch":
            # the coalesced policy event; first steals each stand in
            # for one legacy rda.group_dirty marker
            first = attrs.get("first_steals", 0)
            if first:
                add("rda.group_dirty", first)
            add(name, 1)
            continue
        add(event_key(name, attrs), 1,
            reads=attrs.get("reads", 0) if "transfers" in attrs else None,
            writes=attrs.get("writes", 0) if "transfers" in attrs else None,
            transfers=attrs.get("transfers") if "transfers" in attrs else None,
            dur_ms=attrs.get("dur_ms"))
    for key, row in rows.items():
        for field in ("reads", "writes", "transfers"):
            total = row[field]
            row[f"mean_{field}"] = (round(total / row["count"], 3)
                                    if total is not None else None)
        row["model"] = model_expectation(key)
    return rows


def aggregate_trace_file(path) -> dict:
    """:func:`load_trace` + :func:`aggregate_events`."""
    return aggregate_events(load_trace(path))


def unpriced_ops(rows: dict) -> list:
    """Variant keys that carried transfer costs the model knows nothing
    about (``model == ""``): candidates for a new
    :data:`~repro.model.operations.OPERATION_COSTS` row.  Rows the
    model *explicitly* declines to price (``"-"``) are not returned —
    only silent gaps.  Sorted by total transfers, heaviest first."""
    return sorted((key for key, row in rows.items()
                   if row.get("transfers") is not None and not row["model"]),
                  key=lambda key: (-(rows[key]["transfers"] or 0), key))


def format_cost_table(rows: dict) -> str:
    """Render aggregated rows as the per-event-type cost table."""
    header = (f"{'event':<48} {'count':>7} {'reads':>7} {'writes':>7} "
              f"{'mean xfer':>9}  {'model':<8}")
    lines = [header, "-" * len(header)]
    for key in sorted(rows, key=lambda k: (-(rows[k]['transfers'] or 0), k)):
        row = rows[key]

        def fmt(value):
            return f"{value:.2f}" if value is not None else "-"

        lines.append(
            f"{key:<48} {row['count']:>7} {fmt(row['mean_reads']):>7} "
            f"{fmt(row['mean_writes']):>7} {fmt(row['mean_transfers']):>9}  "
            f"{row['model']:<8}")
    missing = unpriced_ops(rows)
    if missing:
        # previously these rows rendered with an empty model column and
        # nothing flagged the gap; make the accounting hole explicit
        lines.append(f"warning: {len(missing)} op class(es) carry transfer "
                     f"costs the model does not know: {', '.join(missing)}")
    return "\n".join(lines)
