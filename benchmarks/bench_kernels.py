"""Microbenchmarks for the vectorized page-kernel tiers.

Measures every kernel operation (whole-page XOR, batched k-page XOR
reduction, GF(256) scalar-times-page, batched Q-syndrome accumulation,
two-erasure solve) on each registered tier, plus two end-to-end
episodes that dominate the paper's recovery costs:

* a full twin-RAID-5 media **rebuild** (degraded reads + parity
  recomputation for every slot of a failed disk), and
* a **steal → abort → undo-via-parity** episode (the Section 4.2 path:
  unlogged write into the free twin, then
  ``D_old = P_w ⊕ P_c ⊕ D_new``).

Results go to ``benchmarks/results/kernels_perf.json`` and are mirrored
to ``BENCH_kernels.json`` at the repository root so later PRs have a
perf trajectory to regress against.  The run **fails** (non-zero exit /
test failure) if the stdlib tier is not at least
:data:`REQUIRED_STDLIB_SPEEDUP`× faster than the pure-loop reference on
whole-page XOR and GF(256) page-multiply.

Run standalone (``python benchmarks/bench_kernels.py [--quick]``) or
via pytest (``pytest benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import RDAManager                              # noqa: E402
from repro.obs import NullSink, Tracer                         # noqa: E402
from repro.storage import (ParityHeader, TwinState, make_page,  # noqa: E402
                           make_twin_raid5)
from repro.storage import kernels                              # noqa: E402
from repro.storage.gf256 import solve_two_erasures             # noqa: E402
from repro.storage.page import PAGE_SIZE                       # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "kernels_perf.json"
ROOT_TRAJECTORY_PATH = (pathlib.Path(__file__).parent.parent
                        / "BENCH_kernels.json")

REQUIRED_STDLIB_SPEEDUP = 10.0
"""The stdlib tier must beat the reference loops by at least this factor
on whole-page XOR and GF(256) page-multiply (acceptance criterion)."""

MAX_TRACER_OVERHEAD = 1.05
"""An enabled tracer with a null sink may slow the steal-abort-undo
episode by at most 5% over the untraced run (acceptance criterion of
the observability layer)."""

GROUP = 8          # pages per batched reduction
TARGET_SECONDS = 0.08   # calibration budget per measurement
QUICK_TARGET_SECONDS = 0.02


def _pages(count: int) -> list:
    return [make_page(bytes([3 * i + 1, 7 * i + 5])) for i in range(count)]


def _time_ns(fn, target_seconds: float) -> float:
    """Median-of-3 ns per call, reps auto-calibrated to the budget."""
    fn()  # warm up (table faults, allocator)
    start = time.perf_counter_ns()
    fn()
    once = max(time.perf_counter_ns() - start, 1)
    reps = max(1, min(200_000, int(target_seconds * 1e9 / once)))
    samples = []
    for _ in range(3):
        start = time.perf_counter_ns()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter_ns() - start) / reps)
    return sorted(samples)[1]


def _micro_cases():
    """name -> (pages touched per op, fn(kernel) -> op)."""
    a, b = _pages(2)
    group = _pages(GROUP)
    pairs = [(kernels.MUL_TABLES[2][1 + i % 254], page)
             for i, page in enumerate(group)]
    p_star, q_star = _pages(2)

    return {
        "xor_page_pair": (2, lambda k: lambda: k.xor(a, b)),
        "xor_reduce_8": (GROUP, lambda k: lambda: k.xor_accumulate(group, PAGE_SIZE)),
        "gf256_page_mul": (1, lambda k: lambda: k.gf_scale(0x1D, a)),
        "q_syndrome_8": (GROUP, lambda k: lambda: k.gf_scale_accumulate(pairs, PAGE_SIZE)),
        "two_erasure_solve": (2, lambda k: lambda: solve_two_erasures(1, 3, p_star, q_star)),
    }


def _loaded_twin_array(tracer=None):
    array = make_twin_raid5(8, 16, tracer=tracer)
    for g in range(array.geometry.num_groups):
        array.full_stripe_write(
            g, [make_page(bytes([g % 200 + 1, i + 1]))
                for i in range(array.geometry.group_size)])
    return array


def _rebuild_episode() -> None:
    array = _loaded_twin_array()
    array.fail_disk(3)
    array.rebuild_disk(3)


def _steal_abort_undo_episode(tracer=None) -> None:
    array = _loaded_twin_array(tracer=tracer)
    rda = RDAManager(array)
    for txn_id, page in ((7, 0), (8, 9), (9, 18)):
        rda.write_uncommitted(page, make_page(0xAB), txn_id)
        rda.abort_txn(txn_id)


def measure_tracer_overhead(target_seconds: float, attempts: int = 3) -> float:
    """Ratio of the null-sink-traced steal-abort-undo episode to the
    untraced one, minimum over ``attempts`` paired runs (the minimum is
    the noise-robust estimator for a lower-bounded timing)."""
    tracer = Tracer(NullSink())
    best = None
    for _ in range(attempts):
        untraced = _time_ns(_steal_abort_undo_episode, target_seconds)
        traced = _time_ns(lambda: _steal_abort_undo_episode(tracer),
                          target_seconds)
        ratio = traced / untraced
        if best is None or ratio < best:
            best = ratio
        if best < MAX_TRACER_OVERHEAD:
            break
    return best


EPISODES = {
    "rebuild_twin_raid5_8x16": _rebuild_episode,
    "steal_abort_undo_x3": _steal_abort_undo_episode,
}


def run(quick: bool = False) -> dict:
    """Measure everything; returns the results document."""
    target = QUICK_TARGET_SECONDS if quick else TARGET_SECONDS
    tiers = kernels.available_tiers()

    micro = {}
    for name, (pages_per_op, make_op) in _micro_cases().items():
        micro[name] = {}
        for tier in tiers:
            # two_erasure_solve goes through the public API, so pin the
            # active tier; raw kernel ops take the tier object directly
            with kernels.use_kernel(tier):
                ns = _time_ns(make_op(kernels.KERNELS[tier]), target)
            micro[name][tier] = {
                "ns_per_op": round(ns, 1),
                "ns_per_page": round(ns / pages_per_op, 1),
            }

    episodes = {}
    for name, episode in EPISODES.items():
        episodes[name] = {}
        for tier in tiers:
            with kernels.use_kernel(tier):
                episodes[name][tier] = {
                    "ms_per_episode": round(_time_ns(episode, target) / 1e6, 3),
                }

    speedups = {}
    for tier in tiers:
        if tier == "reference":
            continue
        speedups[tier] = {
            name: round(micro[name]["reference"]["ns_per_op"]
                        / max(micro[name][tier]["ns_per_op"], 0.1), 1)
            for name in micro
        }

    stdlib_ok = (speedups["stdlib"]["xor_page_pair"] >= REQUIRED_STDLIB_SPEEDUP
                 and speedups["stdlib"]["gf256_page_mul"] >= REQUIRED_STDLIB_SPEEDUP)

    tracer_overhead = measure_tracer_overhead(target, attempts=5)

    return {
        "schema": "repro-kernels-bench/v1",
        "page_size": PAGE_SIZE,
        "group_pages": GROUP,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy_available": "numpy" in tiers,
        "default_tier": kernels.active_tier(),
        "tiers": list(tiers),
        "micro_ns": micro,
        "episodes": episodes,
        "speedup_vs_reference": speedups,
        "tracer_overhead": {
            "episode": "steal_abort_undo_x3",
            "null_sink_ratio": round(tracer_overhead, 4),
            "max_allowed": MAX_TRACER_OVERHEAD,
        },
        "acceptance": {
            "required_stdlib_speedup": REQUIRED_STDLIB_SPEEDUP,
            "stdlib_beats_reference": stdlib_ok,
            "tracer_overhead_ok": tracer_overhead < MAX_TRACER_OVERHEAD,
        },
    }


def write_results(doc: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    for path in (RESULTS_PATH, ROOT_TRAJECTORY_PATH):
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_kernel_perf_regression():
    """pytest entry: quick run, still enforcing the 10x floor."""
    doc = run(quick=True)
    write_results(doc)
    assert doc["acceptance"]["stdlib_beats_reference"], (
        "stdlib kernel tier no longer beats the reference loops by "
        f"{REQUIRED_STDLIB_SPEEDUP}x: {doc['speedup_vs_reference']['stdlib']}")
    assert doc["acceptance"]["tracer_overhead_ok"], (
        "null-sink tracer slows the steal-abort-undo episode by more "
        f"than {MAX_TRACER_OVERHEAD}x: {doc['tracer_overhead']}")


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    doc = run(quick=quick)
    write_results(doc)
    print(json.dumps(doc, indent=2))
    print(f"\n[written to {RESULTS_PATH} and {ROOT_TRAJECTORY_PATH}]")
    if not doc["acceptance"]["stdlib_beats_reference"]:
        print("FAIL: stdlib tier below the required speedup floor",
              file=sys.stderr)
        return 1
    if not doc["acceptance"]["tracer_overhead_ok"]:
        print("FAIL: null-sink tracer overhead above the 5% budget",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
