"""Tests for the simulation driver and failure campaigns."""

import pytest

from repro.db import Database, preset
from repro.sim import (SimulationReport, Simulator, WorkloadSpec,
                       crash_campaign, media_campaign, run_workload)


def make_db(name, **kw):
    defaults = dict(group_size=5, num_groups=12, buffer_capacity=20)
    defaults.update(kw)
    return Database(preset(name, **defaults))


SPEC = WorkloadSpec(concurrency=4, pages_per_txn=5, communality=0.6,
                    abort_probability=0.1)


class TestSimulatorBasics:
    @pytest.mark.parametrize("name", ["page-force-rda", "page-force-log",
                                      "page-noforce-rda", "page-noforce-log"])
    def test_runs_to_completion(self, name):
        db = make_db(name, checkpoint_interval=None)
        report = run_workload(db, SPEC, transactions=60, seed=1)
        assert report.transactions >= 60
        assert report.committed > 0
        assert report.page_transfers > 0
        assert db.verify_parity() == []

    def test_deterministic(self):
        a = run_workload(make_db("page-force-rda"), SPEC, 40, seed=5)
        b = run_workload(make_db("page-force-rda"), SPEC, 40, seed=5)
        assert a.committed == b.committed
        assert a.page_transfers == b.page_transfers

    def test_abort_probability_drives_aborts(self):
        spec = WorkloadSpec(concurrency=2, pages_per_txn=4,
                            update_txn_fraction=1.0, abort_probability=0.5)
        report = run_workload(make_db("page-force-rda"), spec, 60, seed=2)
        assert report.aborted >= 10

    def test_throughput_definition(self):
        report = SimulationReport(committed=10, page_transfers=1000)
        assert report.throughput(interval=100_000) == 1000.0
        assert report.cost_per_transaction() == 100.0

    def test_rda_logs_fewer_before_images(self):
        rda = run_workload(make_db("page-force-rda"), SPEC, 60, seed=3)
        log = run_workload(make_db("page-force-log"), SPEC, 60, seed=3)
        assert rda.extra["before_images_logged"] < \
            log.extra["before_images_logged"]
        assert rda.unlogged_steal_fraction > 0.5
        assert log.unlogged_steal_fraction == 0.0

    def test_checkpoints_fire(self):
        db = make_db("page-noforce-rda", checkpoint_interval=40)
        report = run_workload(db, SPEC, 50, seed=4)
        assert report.checkpoints >= 1


class TestRecordModeDriving:
    @pytest.mark.parametrize("name", ["record-force-rda", "record-noforce-log"])
    def test_record_mode_runs(self, name):
        db = make_db(name, checkpoint_interval=300)
        sim = Simulator(db, SPEC, seed=2)
        assert sim.record_mode
        sim.seed_records()
        report = sim.run(40)
        assert report.committed > 0
        assert db.verify_parity() == []

    def test_record_mode_crash_cycle(self):
        db = make_db("record-noforce-rda", checkpoint_interval=200)
        sim = Simulator(db, SPEC, seed=3)
        sim.seed_records()
        report = sim.run(40, crash_every=15)
        assert report.crashes >= 1
        assert db.verify_parity() == []

    def test_page_mode_flag_off(self):
        assert not Simulator(make_db("page-force-rda"), SPEC).record_mode


class TestCrashDuringLoad:
    @pytest.mark.parametrize("name", ["page-force-rda", "page-noforce-rda",
                                      "page-force-log", "page-noforce-log"])
    def test_crash_every_n(self, name):
        db = make_db(name, checkpoint_interval=100)
        report = run_workload(db, SPEC, 60, seed=6, crash_every=20)
        assert report.crashes >= 2
        assert db.verify_parity() == []

    def test_crash_campaign_clean(self):
        db = make_db("page-noforce-rda", checkpoint_interval=80)
        result = crash_campaign(db, SPEC, cycles=3,
                                transactions_per_cycle=20, seed=7)
        assert result.cycles == 3
        assert result.clean, result.violations

    def test_media_campaign_every_disk(self):
        db = make_db("page-force-rda")
        result = media_campaign(db, SPEC, transactions_per_disk=8, seed=8)
        assert result.cycles == len(db.array.disks)
        assert result.clean, result.violations
        assert result.rebuilt_slots > 0

    def test_media_campaign_baseline_array(self):
        db = make_db("page-force-log")
        result = media_campaign(db, SPEC, transactions_per_disk=8, seed=9)
        assert result.cycles == len(db.array.disks)
        assert result.clean, result.violations


class TestMeasuredShape:
    """The simulator's qualitative agreement with the paper."""

    def test_rda_beats_baseline_force(self):
        spec = WorkloadSpec(concurrency=4, pages_per_txn=8,
                            update_txn_fraction=0.8, update_probability=0.9,
                            communality=0.7, abort_probability=0.01)
        rda = run_workload(make_db("page-force-rda", num_groups=20), spec,
                           100, seed=11)
        log = run_workload(make_db("page-force-log", num_groups=20), spec,
                           100, seed=11)
        assert rda.throughput() > log.throughput()

    def test_noforce_beats_force(self):
        rda_force = run_workload(make_db("page-force-rda"), SPEC, 80, seed=12)
        rda_lazy = run_workload(
            make_db("page-noforce-rda", checkpoint_interval=500), SPEC, 80,
            seed=12)
        assert rda_lazy.throughput() > rda_force.throughput()
