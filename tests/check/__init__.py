"""Tests for the conformance subsystem (repro.check)."""
