"""Tests for workload trace record/replay."""

import pytest

from repro.db import Database, preset
from repro.errors import ModelError
from repro.sim import WorkloadSpec
from repro.sim.trace import (ReplaySimulator, TracingSimulator,
                             script_from_json, script_to_json)
from repro.sim.workload import Access, TransactionScript

SPEC = WorkloadSpec(concurrency=3, pages_per_txn=4, communality=0.5,
                    abort_probability=0.1)


def make_db():
    return Database(preset("page-force-rda", group_size=5, num_groups=12,
                           buffer_capacity=16))


class TestSerialization:
    def test_roundtrip(self):
        script = TransactionScript(
            accesses=[Access(3, True), Access(7, False)],
            is_update=True, wants_abort=False)
        again = script_from_json(script_to_json(script))
        assert again == script

    def test_malformed_line(self):
        with pytest.raises(ModelError):
            script_from_json("{not json")
        with pytest.raises(ModelError):
            script_from_json('{"accesses": "nope"}')


class TestRecordReplay:
    def test_replay_reproduces_final_state(self, tmp_path):
        trace_path = tmp_path / "workload.jsonl"
        recorder_db = make_db()
        recorder = TracingSimulator(recorder_db, SPEC, seed=21)
        recorded = recorder.run(40)
        count = recorder.dump_trace(trace_path)
        assert count >= 40

        replay_db = make_db()
        replayer = ReplaySimulator.from_file(replay_db, SPEC, trace_path)
        replayed = replayer.run(40)

        assert replayed.committed == recorded.committed
        assert replayed.aborted == recorded.aborted
        for page in range(recorder_db.num_data_pages):
            recorder_db.buffer.flush_all_dirty()
            replay_db.buffer.flush_all_dirty()
            assert recorder_db.disk_page(page) == replay_db.disk_page(page)

    def test_replay_stops_at_trace_end(self, tmp_path):
        trace_path = tmp_path / "short.jsonl"
        recorder = TracingSimulator(make_db(), SPEC, seed=2)
        recorder.run(10)
        recorder.dump_trace(trace_path)
        replayer = ReplaySimulator.from_file(make_db(), SPEC, trace_path)
        report = replayer.run(1000)         # asks for more than exists
        assert report.transactions == len(replayer._scripts)
        assert replayer.remaining == 0

    def test_replay_across_configurations(self, tmp_path):
        """A trace recorded on one preset replays on another — the
        portable-workload use case."""
        trace_path = tmp_path / "portable.jsonl"
        recorder = TracingSimulator(make_db(), SPEC, seed=5)
        recorded = recorder.run(30)
        recorder.dump_trace(trace_path)
        other_db = Database(preset("page-noforce-log", group_size=5,
                                   num_groups=12, buffer_capacity=16,
                                   checkpoint_interval=None))
        replayed = ReplaySimulator.from_file(other_db, SPEC,
                                             trace_path).run(30)
        assert replayed.committed == recorded.committed
        assert other_db.verify_parity() == []
