"""X9: access skew vs the one-unlogged-page-per-group rule.

Eq. 5 assumes the K pending pages land on parity groups uniformly at
random.  Real OLTP is skewed; a hot spot concentrates steals into few
groups, so more of them collide on the single unlogged slot and must
log after all.  The live system measures how the unlogged-steal fraction
(1 - p_l) degrades as Zipf skew rises — a threat-to-validity probe the
paper's model cannot express.
"""

from repro.db import Database, preset
from repro.sim import Simulator, WorkloadSpec

from .conftest import write_table

SKEWS = (0.0, 0.8, 1.6)


def measured_unlogged_fraction(skew: float, seed: int = 41) -> float:
    db = Database(preset("page-force-rda", group_size=5, num_groups=40,
                         buffer_capacity=30))
    spec = WorkloadSpec(concurrency=5, pages_per_txn=6,
                        update_txn_fraction=0.9, update_probability=0.9,
                        abort_probability=0.01, communality=0.3, skew=skew)
    Simulator(db, spec, seed=seed).run(250)
    return db.counters.unlogged_fraction


def test_skew_degrades_unlogged_fraction(benchmark, results_dir):
    def campaign():
        return [(skew, measured_unlogged_fraction(skew)) for skew in SKEWS]

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)
    fractions = [f for _, f in rows]
    # uniform access keeps nearly all steals unlogged; heavy skew
    # noticeably erodes the benefit
    assert fractions[0] > 0.85
    assert fractions[-1] < fractions[0]
    write_table(results_dir, "skew_unlogged",
                "X9: unlogged-steal fraction (1 - p_l) vs Zipf skew\n"
                + "\n".join(f"skew {skew:3.1f}: {fraction:6.3f}"
                            for skew, fraction in rows))
    benchmark.extra_info["fractions"] = {str(s): round(f, 3)
                                         for s, f in rows}
