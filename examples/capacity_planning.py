#!/usr/bin/env python3
"""Capacity planning with the model: what would this deployment do?

Answers the questions an operator sizing an RDA system would ask,
using the analytical model plus the queueing and reliability
extensions:

1. how many transactions/second can N disks sustain, with and without
   RDA, at a given communality?
2. what response time at 70% of that ceiling?
3. what parity-group size balances the logging probability against the
   storage bill?
4. how long until the farm loses data, per redundancy tier?

Run:  python examples/capacity_planning.py
"""

from repro.model import (logging_probability, max_txn_rate,
                         paper_motivation_table, txn_response_ms)
from repro.model.page_logging import force_toc
from repro.model.params import high_update
from repro.model.sensitivity import sweep

DISKS = 11          # one N=10 group plus parity
SERVICE_MS = 18.0   # mean per-transfer service time


def main():
    params = high_update(C=0.8)
    base = force_toc(params, rda=False)
    rda = force_toc(params, rda=True)

    print("=== 1. sustainable throughput (page logging, FORCE/TOC, C=0.8) ===")
    for label, result in (("WAL", base), ("RDA", rda)):
        ceiling = max_txn_rate(result.c_E, DISKS, SERVICE_MS)
        print(f"  {label}: c_E = {result.c_E:6.1f} transfers/txn "
              f"-> ceiling {ceiling:6.1f} txn/s on {DISKS} disks")

    print("\n=== 2. response time at 70% of the WAL ceiling ===")
    rate = max_txn_rate(base.c_E, DISKS, SERVICE_MS) * 0.7
    for label, result in (("WAL", base), ("RDA", rda)):
        latency = txn_response_ms(rate, result.c_E, DISKS, SERVICE_MS)
        print(f"  {label}: {latency:7.0f} ms per transaction at {rate:.1f} txn/s")

    print("\n=== 3. choosing the parity-group size N ===")
    print(f"  {'N':>4} | {'p_l':>7} | {'RDA gain':>8} | {'overhead':>8}")
    result = sweep(force_toc, "N", (4, 10, 25, 50), C=0.8)
    for n, gain in zip(result.values, result.gains):
        point = params.with_(N=n)
        p_l = logging_probability(
            point.P * point.f_u * point.s * point.p_u / 2, point.S, n)
        print(f"  {n:4d} | {p_l:7.4f} | {gain:8.1%} | {2 / (n + 2):8.1%}")

    print("\n=== 4. time to data loss (200-disk farm, MTTR 24 h) ===")
    for scheme, mttdl, overhead in paper_motivation_table():
        print(f"  {scheme:>20}: {mttdl / 24 / 365:10.1f} years "
              f"at {overhead:5.1%} overhead")


if __name__ == "__main__":
    main()
