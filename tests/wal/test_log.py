"""Tests for the duplexed log manager."""

import pytest

from repro.errors import LogCorruptionError, UnrecoverableDataError
from repro.storage.iostats import IOStats
from repro.wal import (BOTRecord, CommitRecord, LogManager, NULL_LSN,
                       PageBeforeImage)


@pytest.fixture
def log():
    return LogManager(name="test", page_size=128, transfers_per_log_page=1)


class TestAppend:
    def test_lsns_increase(self, log):
        first = log.append(BOTRecord(txn_id=1))
        second = log.append(CommitRecord(txn_id=1))
        assert second == first + 1
        assert log.last_lsn == second

    def test_get_by_lsn(self, log):
        lsn = log.append(BOTRecord(txn_id=1))
        assert log.get(lsn).txn_id == 1

    def test_get_bad_lsn(self, log):
        with pytest.raises(LogCorruptionError):
            log.get(99)

    def test_chain_links_same_transaction(self, log):
        a = log.append(BOTRecord(txn_id=1))
        log.append(BOTRecord(txn_id=2))
        c = log.append(PageBeforeImage(txn_id=1, page_id=5, image=b"x"))
        assert log.get(c).prev_lsn == a
        assert log.get(a).prev_lsn == NULL_LSN

    def test_records_of_follows_chain_newest_first(self, log):
        log.append(BOTRecord(txn_id=1))
        log.append(BOTRecord(txn_id=2))
        log.append(PageBeforeImage(txn_id=1, page_id=5, image=b"x"))
        log.append(CommitRecord(txn_id=1))
        chain = log.records_of(1)
        assert [type(r).__name__ for r in chain] == [
            "CommitRecord", "PageBeforeImage", "BOTRecord"]

    def test_scan_filter(self, log):
        log.append(BOTRecord(txn_id=1))
        log.append(PageBeforeImage(txn_id=1, page_id=5, image=b"x"))
        assert len(list(log.scan(PageBeforeImage))) == 1
        assert len(list(log.scan())) == 2


class TestAccounting:
    def test_transfers_charged_per_filled_page_per_copy(self):
        stats = IOStats()
        log = LogManager(page_size=64, transfers_per_log_page=1, stats=stats)
        # append until more than one log page fills
        while log.size_bytes < 130:
            log.append(BOTRecord(txn_id=1))
        # two filled pages on each of two mirror copies
        assert stats.writes == 4

    def test_force_charges_partial_page(self):
        stats = IOStats()
        log = LogManager(page_size=1024, transfers_per_log_page=1, stats=stats)
        log.append(BOTRecord(txn_id=1))
        assert stats.writes == 0
        log.force()
        assert stats.writes == 2    # one partial page, both copies
        assert log.forced_lsn == log.last_lsn

    def test_force_idempotent(self):
        stats = IOStats()
        log = LogManager(page_size=1024, transfers_per_log_page=1, stats=stats)
        log.append(BOTRecord(txn_id=1))
        log.force()
        log.force()
        assert stats.writes == 2

    def test_single_copy_halves_cost(self):
        stats = IOStats()
        log = LogManager(page_size=1024, transfers_per_log_page=1, stats=stats,
                         duplex=False)
        log.append(BOTRecord(txn_id=1))
        log.force()
        assert stats.writes == 1

    def test_transfer_multiplier(self):
        """Logs on a RAID array pay the small-write protocol too."""
        stats = IOStats()
        log = LogManager(page_size=1024, transfers_per_log_page=4, stats=stats)
        log.append(BOTRecord(txn_id=1))
        log.force()
        assert stats.writes == 8


class TestDuplexIntegrity:
    def test_copies_identical(self, log):
        log.append(BOTRecord(txn_id=1))
        assert log.verify_duplex()

    def test_damage_detected(self, log):
        log.append(BOTRecord(txn_id=1))
        log.damage_copy(0, 0)
        assert not log.verify_duplex()

    def test_damage_beyond_end_rejected(self, log):
        with pytest.raises(ValueError):
            log.damage_copy(0, 10_000)


class TestCrashRestart:
    def test_after_crash_recovers_records(self, log):
        log.append(BOTRecord(txn_id=1))
        log.append(PageBeforeImage(txn_id=1, page_id=3, image=b"img"))
        log.append(CommitRecord(txn_id=1))
        count = log.after_crash()
        assert count == 3
        assert [r.txn_id for r in log.records()] == [1, 1, 1]
        chain = log.records_of(1)
        assert len(chain) == 3

    def test_after_crash_lsns_continue(self, log):
        log.append(BOTRecord(txn_id=1))
        log.after_crash()
        assert log.append(BOTRecord(txn_id=2)) == 2

    def test_after_crash_uses_healthy_copy(self, log):
        log.append(BOTRecord(txn_id=1))
        log.damage_copy(0, 0)
        assert log.after_crash() == 1

    def test_after_crash_all_copies_corrupt(self, log):
        """Every copy dying on a CRC error (not a clean torn tail) must
        refuse loudly: acknowledged records past the damage may be gone,
        so adopting the longest prefix would be silent data loss."""
        log.append(BOTRecord(txn_id=1))
        log.damage_copy(0, 0)
        log.damage_copy(1, 0)
        with pytest.raises(UnrecoverableDataError):
            log.after_crash()

    def test_torn_single_copy_healed_from_duplex_mate(self, log):
        """A torn write to ONE duplex copy is healed from the other: the
        survivor parses cleanly and restart adopts its full prefix."""
        log.append(BOTRecord(txn_id=1))
        log.append(CommitRecord(txn_id=1))
        log.force()
        # tear the tail of copy 0 mid-record (CRC now fails there)
        log.damage_copy(0, log.size_bytes - 2)
        assert log.after_crash() == 2
        assert [type(r).__name__ for r in log.records()] == [
            "BOTRecord", "CommitRecord"]

    def test_torn_both_copies_detected_not_silent(self, log):
        """Tearing the SAME forced record on both copies is detected as
        unrecoverable corruption, never silently truncated away."""
        log.append(BOTRecord(txn_id=1))
        log.append(CommitRecord(txn_id=1))
        log.force()
        log.damage_copy(0, log.size_bytes - 2)
        log.damage_copy(1, log.size_bytes - 2)
        with pytest.raises(UnrecoverableDataError):
            log.after_crash()

    def test_empty_log_restart(self, log):
        assert log.after_crash() == 0
        assert log.last_lsn == NULL_LSN

    def test_torn_record_does_not_poison_later_appends(self):
        """Regression: a crash can truncate mid-record; the surviving
        fragment must be rewound at restart, or records appended after
        recovery become unparseable at the NEXT crash."""
        log = LogManager(page_size=64, transfers_per_log_page=1)
        log.append(BOTRecord(txn_id=1))
        log.force()                     # one whole durable record
        # fill past the next page boundary so truncation tears a record
        while log.size_bytes <= 128:
            log.append(PageBeforeImage(txn_id=1, page_id=1, image=b"x" * 30))
        log.crash()                     # tears the record at the boundary
        survivors = log.after_crash()
        post = log.append(CommitRecord(txn_id=2))
        log.force()
        log.crash()
        assert log.after_crash() == survivors + 1
        assert log.get(post).txn_id == 2

    def test_short_forced_log_survives_two_crashes(self):
        """Regression: the durability watermark after a rewind must
        round up, or a sub-page log evaporates at the second crash."""
        log = LogManager(page_size=2020, transfers_per_log_page=1)
        log.append(CommitRecord(txn_id=1))
        log.force()
        log.crash()
        assert log.after_crash() == 1
        log.crash()
        assert log.after_crash() == 1
        assert [r.txn_id for r in log.records()] == [1]
