"""Golden-value regression pins for the analytical model.

The shape tests assert the paper's claims; these pin the *implemented*
model's exact outputs (loose tolerance) so accidental equation edits
show up even when the shapes still hold.  If a deliberate model change
moves these, update them alongside the DESIGN/EXPERIMENTS notes.
"""

import pytest

from repro.model import page_logging, record_logging
from repro.model.params import high_retrieval, high_update

GOLDEN = [
    # (model, env, C, rda, expected throughput)
    (page_logging.force_toc, high_update, 0.0, False, 48851),
    (page_logging.force_toc, high_update, 0.9, False, 53561),
    (page_logging.force_toc, high_update, 0.9, True, 76445),
    (page_logging.force_toc, high_retrieval, 0.9, False, 265510),
    (page_logging.force_toc, high_retrieval, 0.9, True, 355724),
    (page_logging.noforce_acc, high_update, 0.0, False, 47858),
    (page_logging.noforce_acc, high_update, 0.9, False, 70806),
    (page_logging.noforce_acc, high_update, 0.9, True, 71301),
    (record_logging.force_toc, high_update, 0.0, False, 149727),
    (record_logging.force_toc, high_update, 0.9, True, 208630),
    (record_logging.noforce_acc, high_update, 0.9, False, 651924),
    (record_logging.noforce_acc, high_update, 0.9, True, 747139),
    (record_logging.noforce_acc, high_retrieval, 0.9, True, 591338),
]


@pytest.mark.parametrize("model,env,C,rda,expected", GOLDEN)
def test_golden_throughput(model, env, C, rda, expected):
    result = model(env(C=C), rda=rda)
    assert result.throughput == pytest.approx(expected, rel=0.01)


def test_golden_p_l_values():
    from repro.model import logging_probability
    assert logging_probability(21.6, 5000, 10) == pytest.approx(0.0203,
                                                                abs=0.001)
    assert logging_probability(3.6, 5000, 10) == pytest.approx(0.0026,
                                                               abs=0.001)


def test_golden_figure13_curve():
    from repro.model import figure13
    series = figure13(sweep=(5, 25, 45)).curves["% increase"]
    assert series[0] == pytest.approx(6.5, abs=0.5)
    assert series[1] == pytest.approx(38.9, abs=1.5)
    assert series[2] == pytest.approx(70.0, abs=2.0)
