"""Observability: structured event tracing and metrics.

The paper's argument is an *accounting* argument — every cost is a
countable page-transfer event.  This package makes those events
first-class:

* :class:`~repro.obs.tracer.Tracer` emits typed, timestamped events to a
  pluggable sink (:class:`~repro.obs.tracer.JsonlSink`,
  :class:`~repro.obs.tracer.RingBufferSink`,
  :class:`~repro.obs.tracer.NullSink`), with *spans* for multi-step
  operations (recovery phases, checkpoints, rebuilds) that carry their
  :class:`~repro.storage.iostats.IOStats` delta — so each traced
  operation knows its page-transfer cost;
* :class:`~repro.obs.metrics.MetricsRegistry` holds counters, gauges and
  histograms with labeled children and a JSON-friendly ``snapshot()``;
* :mod:`repro.obs.inspect` aggregates a trace file into a per-event-type
  cost table comparable against the analytical model's predicted
  transfer counts (``python -m repro inspect-trace``).

Everything is dependency-free and near-zero overhead when disabled: the
shared :data:`NULL_TRACER` refuses work after one attribute check, so
uninstrumented-feeling hot paths stay hot.
"""

from .inspect import (aggregate_events, aggregate_trace_file, event_key,
                      format_cost_table, load_trace, model_expectation)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (NULL_TRACER, BufferedJsonlSink, JsonlSink,
                     LabelledTracer, NullSink, RingBufferSink, Span, Tracer)

__all__ = [
    "NULL_TRACER",
    "Tracer",
    "LabelledTracer",
    "Span",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "BufferedJsonlSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "aggregate_events",
    "aggregate_trace_file",
    "event_key",
    "format_cost_table",
    "load_trace",
    "model_expectation",
]
