"""Sharded-engine benchmark: throughput and log transfers vs K and H.

Runs the same seeded workload over a K-way
:class:`~repro.db.sharded.ShardedDatabase` for every combination of
shard count K and group-commit flush horizon H, and measures the
quantity group commit exists to amortize: **log transfers per
committed transaction** (transfers on the negative-id log devices —
the shards' duplexed WALs plus the global commit log).

With per-commit forcing (H=1) every commit flushes a partial log page
to both mirrors of every log it touched; at H>1 the shared
:class:`~repro.wal.group_commit.GroupCommitCoordinator` batches those
forces so H commits' records ride the same page flushes.  The
acceptance criterion is the PR's headline: **at every K >= 2, H=8
spends fewer log transfers per committed transaction than H=1.**

The **worker cells** rerun the K sweep with each shard in its own OS
process (:class:`~repro.db.workers.WorkerShardedDatabase`).  Like the
rest of this reproduction, throughput there is scored in *simulated
disk time*: each shard owns an independent array whose arms run in
parallel, so the disk-time critical path of a run is the busiest
shard's transfer count plus the global commit log's (the one stream
every commit serializes through — the coordinator barrier).  Committed
transactions per 1k critical-path transfers must rise monotonically
K=1 -> 2 -> 4, and the fanned-out restart's critical-path transfers
must shrink as K grows (the recovery-time-vs-workers curve).  Host
wall-clock is recorded alongside for transparency, but is not judged:
on a single-core CI box K processes merely time-slice and the pipe
round-trips dominate, which says nothing about the array model.

Results go to ``benchmarks/results/shards_perf.json`` and are mirrored
to ``BENCH_shards.json`` at the repository root so later PRs have a
trajectory to regress against.

Run standalone (``python benchmarks/bench_shards.py [--quick]``) or
via pytest (``pytest benchmarks/bench_shards.py``).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.db import (ShardedDatabase, WorkerShardedDatabase,  # noqa: E402
                      preset)
from repro.sim import Simulator, WorkloadSpec                  # noqa: E402
from repro.storage import make_page                            # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "shards_perf.json"
ROOT_TRAJECTORY_PATH = (pathlib.Path(__file__).parent.parent
                        / "BENCH_shards.json")

PRESET = "page-force-rda"
SHARD_COUNTS = (1, 2, 4)
FLUSH_HORIZONS = (1, 8)
TRANSACTIONS = 400
QUICK_TRANSACTIONS = 150

# 24 groups x (5-1) data pages = 96 data pages, divisible by every K
OVERRIDES = dict(group_size=5, num_groups=24, buffer_capacity=32)

SPEC = WorkloadSpec(concurrency=4, pages_per_txn=4,
                    update_txn_fraction=0.9, update_probability=0.9,
                    abort_probability=0.02, communality=0.4)


def run_cell(shards: int, horizon: int, transactions: int) -> dict:
    """One (K, H) cell: drive the workload, return the measurements."""
    db = ShardedDatabase(preset(PRESET, **OVERRIDES), shards=shards,
                         flush_horizon=horizon)
    simulator = Simulator(db, SPEC, seed=7)
    started = time.perf_counter()
    report = simulator.run(transactions)
    elapsed = time.perf_counter() - started
    stats = db.statistics()
    committed = max(1, report.committed)
    log_transfers = db.stats.log_transfers
    return {
        "shards": shards,
        "flush_horizon": horizon,
        "committed": report.committed,
        "aborted": report.aborted,
        "page_transfers": db.stats.total,
        "log_transfers": log_transfers,
        "log_transfers_per_commit": round(log_transfers / committed, 3),
        "transfers_per_commit": round(db.stats.total / committed, 3),
        "deferred_forces": stats["deferred_forces"],
        "batched_flushes": stats["batched_flushes"],
        "unlogged_steal_fraction": round(
            stats["unlogged_steals"]
            / max(1, stats["unlogged_steals"] + stats["logged_steals"]), 3),
        "wall_seconds": round(elapsed, 4),
        "txns_per_second": round(report.committed / max(elapsed, 1e-9), 1),
    }


WORKER_HORIZON = 8
RECOVERY_PAGES = 96     # every data page: committed writes + a loser


def run_worker_cell(shards: int, transactions: int) -> dict:
    """One worker-mode K cell: throughput sweep, then a loaded restart.

    The judged numbers are in simulated disk time: the critical path of
    a run is ``max`` over shards of that shard's array transfers plus
    the global commit log's (the serial barrier).  Wall seconds ride
    along unjudged — see the module docstring.
    """
    db = WorkerShardedDatabase(preset(PRESET, **OVERRIDES), shards=shards,
                               flush_horizon=WORKER_HORIZON)
    try:
        simulator = Simulator(db, SPEC, seed=7)
        started = time.perf_counter()
        report = simulator.run(transactions)
        elapsed = time.perf_counter() - started
        per_shard = [snap["reads"] + snap["writes"] for snap in db._snaps()]
        gcommit = db._commit_stats.total
        critical = max(per_shard) + gcommit
        committed = max(1, report.committed)

        # the recovery-time-vs-workers leg: a full-array restart
        # (committed writes everywhere, a loser in flight) fanned out
        # across K concurrently-recovering workers
        winner = db.begin()
        for page in range(RECOVERY_PAGES):
            db.write_page(winner, page, make_page(b"w%d" % (page % 10)))
        db.commit(winner)
        loser = db.begin()
        for page in range(RECOVERY_PAGES):
            db.write_page(loser, page, make_page(b"doomed"))
        db.crash()
        before = [snap["reads"] + snap["writes"] for snap in db._snaps()]
        gcommit_before = db._commit_stats.total
        started = time.perf_counter()
        recovery = db.recover()
        recovery_wall = time.perf_counter() - started
        after = [snap["reads"] + snap["writes"] for snap in db._snaps()]
        recovery_critical = (max(b - a for a, b in zip(before, after))
                             + db._commit_stats.total - gcommit_before)
    finally:
        db.close()
    return {
        "shards": shards,
        "flush_horizon": WORKER_HORIZON,
        "workers": True,
        "committed": report.committed,
        "aborted": report.aborted,
        "per_shard_transfers": per_shard,
        "commit_log_transfers": gcommit,
        "critical_path_transfers": critical,
        "txns_per_1k_critical_transfers": round(committed / (critical / 1000),
                                                1),
        "wall_seconds": round(elapsed, 4),
        "txns_per_second_wall": round(report.committed
                                      / max(elapsed, 1e-9), 1),
        "recovery": {
            "page_transfers": recovery["page_transfers"],
            "critical_path_transfers": recovery_critical,
            "wall_ms": round(recovery_wall * 1e3, 3),
        },
    }


def run(quick: bool = False) -> dict:
    transactions = QUICK_TRANSACTIONS if quick else TRANSACTIONS
    cells = [run_cell(shards, horizon, transactions)
             for shards in SHARD_COUNTS
             for horizon in FLUSH_HORIZONS]
    by_key = {(c["shards"], c["flush_horizon"]): c for c in cells}
    # headline: at K>=2 the batched horizon must beat per-commit forcing
    group_commit_wins = {
        f"k{shards}": (by_key[(shards, 8)]["log_transfers_per_commit"]
                       < by_key[(shards, 1)]["log_transfers_per_commit"])
        for shards in SHARD_COUNTS if shards >= 2
    }
    worker_cells = [run_worker_cell(shards, transactions)
                    for shards in SHARD_COUNTS]
    throughputs = [c["txns_per_1k_critical_transfers"] for c in worker_cells]
    recovery_paths = [c["recovery"]["critical_path_transfers"]
                      for c in worker_cells]
    worker_monotone = all(lo < hi for lo, hi in zip(throughputs,
                                                    throughputs[1:]))
    restart_shrinks = all(hi > lo for hi, lo in zip(recovery_paths,
                                                    recovery_paths[1:]))
    return {
        "benchmark": "sharded engine: throughput and log transfers vs K, H",
        "preset": PRESET,
        "overrides": OVERRIDES,
        "transactions": transactions,
        "seed": 7,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cells": cells,
        "worker_cells": worker_cells,
        "acceptance": {
            "criterion": "log transfers per committed txn: H=8 < H=1 "
                         "at every K >= 2; worker cells: committed txns "
                         "per 1k critical-path transfers rises "
                         "monotonically K=1 -> 4 and the parallel "
                         "restart's critical path shrinks",
            "group_commit_reduces_log_transfers": group_commit_wins,
            "worker_throughput_monotone": worker_monotone,
            "worker_restart_critical_path_shrinks": restart_shrinks,
            "ok": (all(group_commit_wins.values()) and worker_monotone
                   and restart_shrinks),
        },
    }


def write_results(doc: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    for path in (RESULTS_PATH, ROOT_TRAJECTORY_PATH):
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_group_commit_amortizes_log_forces():
    """pytest entry: quick run, still enforcing the amortization win
    plus the worker-mode scaling criteria."""
    doc = run(quick=True)
    write_results(doc)
    assert doc["acceptance"]["ok"], (
        "sharded bench acceptance failed (group-commit amortization, "
        "worker throughput monotonicity, or parallel-restart critical "
        f"path): {doc['acceptance']}")


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    doc = run(quick=quick)
    write_results(doc)
    print(json.dumps(doc, indent=2))
    print(f"\n[written to {RESULTS_PATH} and {ROOT_TRAJECTORY_PATH}]")
    if not doc["acceptance"]["ok"]:
        print("FAIL: group commit did not reduce log transfers per commit",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
