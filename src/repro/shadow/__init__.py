"""Shadow paging: the ATOMIC-propagation baseline (paper Section 2).

Lorie-style shadow paging is the classic alternative to logging the
paper contrasts with: updates go to freshly allocated physical pages and
a page table swap commits them atomically, so no UNDO/REDO log is
needed — at the cost of a large page table and the *disk scrambling*
problem (logically sequential pages drift apart physically, destroying
sequential locality).  This package implements it over the same
simulated arrays so the trade-off can be measured.
"""

from .store import ShadowPagedStore

__all__ = ["ShadowPagedStore"]
