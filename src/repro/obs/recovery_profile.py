"""Phase-level recovery profiling: MTTR and availability accounting.

The paper's argument is that RDA buys *availability* — recovery after a
crash is faster because parity substitutes for undo logging.  This
module measures exactly that quantity.  A :class:`RecoveryProfile` is a
tracer observer (:meth:`~repro.obs.tracer.Tracer.add_observer`) that
watches the restart phase spans the recovery paths already emit —
``recovery.phase`` with ``phase ∈ {analysis, media_scan, parity_resync,
parity_undo, redo, undo, restore}``, ``recovery.restart``,
``recovery.media`` — and folds them into per-crash-cycle *and*
run-aggregate breakdowns: wall time, page vs log transfers, and work
counts (pages repaired, records applied) per phase, per shard when the
events carry a ``shard`` label.

Two usage modes, freely combined:

* **observer-only** — attach to a tracer and drive the database
  directly; ``db.crash`` opens a cycle, the unlabeled
  ``recovery.restart`` span-end closes it (shard restarts are labeled
  and never close a cycle — the sharded facade's own restart span
  does).
* **explicit marks** — a driver (the :class:`~repro.sim.simulator.
  Simulator`) brackets each crash/restart with :meth:`begin_cycle` /
  :meth:`end_cycle`, which measures crash-to-ready MTTR with a real
  clock and merges the recovery statistics dict.

``finalize(run_wall_ms)`` closes the books; :meth:`to_dict` renders the
``recovery_profile`` schema stored in ``SimulationReport.
extra["recovery_profile"]`` (documented in docs/observability.md).
"""

from __future__ import annotations

from time import perf_counter

RESTART_PHASE_ORDER = ("analysis", "media_scan", "parity_resync",
                       "parity_undo", "redo", "undo", "restore",
                       "media_rebuild")
"""Canonical phase ordering for display (execution order at restart)."""

_WORK_ATTRS = ("winners", "losers", "applied", "sectors", "pages", "groups")
"""Span attributes that count *work* (not transfers); accumulated into
each phase's ``work`` sub-dict."""

_CYCLE_STATS = ("sectors_repaired", "parity_resynced", "parity_undone_pages",
                "redo_applied", "log_undo_applied", "page_transfers")
"""Numeric fields copied from a ``db.recover()`` statistics dict."""


def _new_phase() -> dict:
    return {"count": 0, "wall_ms": 0.0, "reads": 0, "writes": 0,
            "transfers": 0, "page_transfers": 0, "log_transfers": 0,
            "work": {}}


def _merge_phase(slot: dict, attrs: dict) -> None:
    slot["count"] += 1
    slot["wall_ms"] += attrs.get("dur_ms") or 0.0
    reads = attrs.get("reads", 0)
    writes = attrs.get("writes", 0)
    transfers = attrs.get("transfers", reads + writes)
    log = attrs.get("log_transfers", 0)
    slot["reads"] += reads
    slot["writes"] += writes
    slot["transfers"] += transfers
    slot["log_transfers"] += log
    slot["page_transfers"] += transfers - log
    for key in _WORK_ATTRS:
        if key in attrs:
            slot["work"][key] = slot["work"].get(key, 0) + attrs[key]


def _merge_phases(target: dict, source: dict) -> None:
    for phase, data in source.items():
        slot = target.setdefault(phase, _new_phase())
        for key in ("count", "wall_ms", "reads", "writes", "transfers",
                    "page_transfers", "log_transfers"):
            slot[key] += data[key]
        for key, value in data["work"].items():
            slot["work"][key] = slot["work"].get(key, 0) + value


def _round_phases(phases: dict) -> dict:
    ordered = sorted(
        phases,
        key=lambda p: (RESTART_PHASE_ORDER.index(p)
                       if p in RESTART_PHASE_ORDER else len(RESTART_PHASE_ORDER),
                       p))
    out = {}
    for phase in ordered:
        data = dict(phases[phase])
        data["wall_ms"] = round(data["wall_ms"], 3)
        out[phase] = data
    return out


class _Cycle:
    """One crash → ready interval under accumulation."""

    __slots__ = ("index", "t0", "ts0", "mttr_ms", "restart_ms", "phases",
                 "shards", "stats", "explicit")

    def __init__(self, index: int, t0=None, ts0=None,
                 explicit: bool = False) -> None:
        self.index = index
        self.t0 = t0                  # wall clock at begin_cycle
        self.ts0 = ts0                # trace timestamp of db.crash (s)
        self.mttr_ms = None
        self.restart_ms = 0.0         # summed recovery.restart durations
        self.phases: dict = {}
        self.shards: dict = {}
        self.stats: dict = {}
        self.explicit = explicit

    def to_dict(self) -> dict:
        out = {
            "mttr_ms": (round(self.mttr_ms, 3)
                        if self.mttr_ms is not None else None),
            "restart_ms": round(self.restart_ms, 3),
            "phases": _round_phases(self.phases),
        }
        if self.shards:
            out["shards"] = {str(shard): _round_phases(phases)
                             for shard, phases in sorted(self.shards.items())}
        if self.stats:
            out["stats"] = dict(self.stats)
        return out


class RecoveryProfile:
    """Accumulates per-phase recovery costs, MTTR and availability
    across a run's crash/restart cycles.

    Args:
        recovery_class: label for the configuration under test
            (``db.config.algorithm_name``); carried into the output so
            profiles from different classes stay distinguishable.
        clock: injectable time source for the explicit-marks mode.
    """

    def __init__(self, recovery_class: str = "", clock=perf_counter) -> None:
        self.recovery_class = recovery_class
        self._clock = clock
        self.cycles: list = []
        self._open: _Cycle | None = None
        self._run_wall_ms = 0.0

    # -- explicit cycle marks (driver-side) ----------------------------------

    def begin_cycle(self) -> None:
        """Mark the crash: MTTR counts from here to :meth:`end_cycle`."""
        self._open = _Cycle(len(self.cycles), t0=self._clock(),
                            explicit=True)

    def end_cycle(self, stats: dict | None = None) -> None:
        """Mark ready-for-traffic; ``stats`` is the ``db.recover()``
        return value (its scalar fields join the cycle record)."""
        cycle = self._open if self._open is not None else \
            _Cycle(len(self.cycles), explicit=True)
        if cycle.t0 is not None:
            cycle.mttr_ms = (self._clock() - cycle.t0) * 1e3
        if stats:
            for key in _CYCLE_STATS:
                if key in stats:
                    cycle.stats[key] = stats[key]
            for side in ("winners", "losers"):
                if side in stats:
                    cycle.stats[side] = len(stats[side])
        self.cycles.append(cycle)
        self._open = None

    # -- observer entry point ------------------------------------------------

    def observe(self, event: dict) -> None:
        """Tracer-observer hook: consume one emitted event."""
        name = event.get("name")
        if name == "db.crash":
            attrs = event.get("attrs") or {}
            if self._open is None and "shard" not in attrs:
                self._open = _Cycle(len(self.cycles), ts0=event.get("ts"))
            return
        if name == "recovery.phase":
            self._merge_event(event, phase=None)
            return
        if name == "recovery.media":
            self._merge_event(event, phase="media_rebuild")
            return
        if name == "recovery.restart":
            attrs = event.get("attrs") or {}
            cycle = self._ensure_cycle(event)
            cycle.restart_ms += attrs.get("dur_ms") or 0.0
            if "shard" not in attrs and not cycle.explicit:
                # observer-only mode: the unlabeled (engine- or
                # facade-level) restart end is the ready point
                if cycle.ts0 is not None and event.get("ts") is not None:
                    cycle.mttr_ms = (event["ts"] - cycle.ts0) * 1e3
                else:
                    cycle.mttr_ms = attrs.get("dur_ms")
                self.cycles.append(cycle)
                self._open = None

    def _ensure_cycle(self, event: dict) -> _Cycle:
        if self._open is None:
            self._open = _Cycle(len(self.cycles), ts0=event.get("ts"))
        return self._open

    def _merge_event(self, event: dict, phase) -> None:
        attrs = event.get("attrs") or {}
        if phase is None:
            phase = attrs.get("phase")
            if phase is None:
                return
        cycle = self._ensure_cycle(event)
        _merge_phase(cycle.phases.setdefault(phase, _new_phase()), attrs)
        shard = attrs.get("shard")
        if shard is not None:
            _merge_phase(
                cycle.shards.setdefault(shard, {}).setdefault(phase,
                                                              _new_phase()),
                attrs)

    def attach(self, tracer) -> "RecoveryProfile":
        """Convenience: ``tracer.add_observer(self.observe)``; returns
        self for chaining."""
        tracer.add_observer(self.observe)
        return self

    # -- wrap-up -------------------------------------------------------------

    def note_run_wall_ms(self, wall_ms: float) -> None:
        """Add driver wall time to the availability denominator."""
        self._run_wall_ms += wall_ms

    def finalize(self, run_wall_ms: float | None = None) -> None:
        """Close any dangling cycle and (optionally) record run wall
        time for the availability ratio."""
        if self._open is not None:
            self.cycles.append(self._open)
            self._open = None
        if run_wall_ms is not None:
            self.note_run_wall_ms(run_wall_ms)

    @property
    def crashes(self) -> int:
        """Completed crash/restart cycles profiled so far."""
        return len(self.cycles)

    def to_dict(self) -> dict:
        """The ``recovery_profile`` document (see docs/observability.md)."""
        phases: dict = {}
        shards: dict = {}
        for cycle in self.cycles:
            _merge_phases(phases, cycle.phases)
            for shard, per_shard in cycle.shards.items():
                _merge_phases(shards.setdefault(shard, {}), per_shard)
        mttrs = [c.mttr_ms for c in self.cycles if c.mttr_ms is not None]
        recovery_ms = sum(mttrs)
        availability = None
        if self._run_wall_ms > 0:
            availability = max(0.0, 1.0 - recovery_ms / self._run_wall_ms)
        out = {
            "recovery_class": self.recovery_class,
            "crashes": len(self.cycles),
            "mttr_ms": {
                "mean": round(recovery_ms / len(mttrs), 3) if mttrs else None,
                "max": round(max(mttrs), 3) if mttrs else None,
                "total": round(recovery_ms, 3),
                "per_cycle": [round(m, 3) for m in mttrs],
            },
            "availability": (round(availability, 6)
                             if availability is not None else None),
            "run_wall_ms": round(self._run_wall_ms, 3),
            "recovery_ms": round(recovery_ms, 3),
            "phases": _round_phases(phases),
            "cycles": [cycle.to_dict() for cycle in self.cycles],
        }
        if shards:
            out["shards"] = {str(shard): _round_phases(per_shard)
                             for shard, per_shard in sorted(shards.items())}
        return out


def format_recovery_profile(profile: dict) -> str:
    """Render a :meth:`RecoveryProfile.to_dict` document as the
    human-readable breakdown ``repro simulate`` prints."""
    mttr = profile.get("mttr_ms", {})
    availability = profile.get("availability")
    head = (f"{profile.get('crashes', 0)} crash/restart cycles, "
            f"MTTR mean {mttr.get('mean')} ms / max {mttr.get('max')} ms")
    if availability is not None:
        head += f", availability {availability:.4%}"
    lines = [head]
    phases = profile.get("phases", {})
    if phases:
        lines.append(f"  {'phase':<14} {'count':>5} {'wall ms':>9} "
                     f"{'xfers':>7} {'log':>5}  work")
        for phase, data in phases.items():
            work = ",".join(f"{k}={v}" for k, v in sorted(
                data.get("work", {}).items()))
            lines.append(
                f"  {phase:<14} {data['count']:>5} {data['wall_ms']:>9.3f} "
                f"{data['transfers']:>7} {data['log_transfers']:>5}  {work}")
    return "\n".join(lines)
