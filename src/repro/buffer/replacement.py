"""Replacement policies for the buffer pool.

Two classic policies are provided behind one small interface:

* :class:`LRUPolicy` — least recently used, the discipline assumed by
  the paper's model (a page referenced by a transaction tends to stay
  buffered until EOT unless stolen under memory pressure);
* :class:`ClockPolicy` — second-chance approximation, cheaper bookkeeping.

A policy ranks candidate frame indices; the pool supplies which frames
are *evictable* (unpinned, and not uncommitted-dirty under NO-STEAL).
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import BufferFullError


class ReplacementPolicy:
    """Interface: track touches, pick a victim among evictable frames."""

    def touch(self, frame_index: int) -> None:
        """Note a reference to the frame (hit or load)."""
        raise NotImplementedError

    def forget(self, frame_index: int) -> None:
        """The frame was freed; drop any bookkeeping."""
        raise NotImplementedError

    def choose_victim(self, evictable) -> int:
        """Pick a frame index from the non-empty iterable ``evictable``.

        Raises:
            BufferFullError: if ``evictable`` is empty.
        """
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently touched evictable frame."""

    def __init__(self) -> None:
        self._order: OrderedDict = OrderedDict()

    def touch(self, frame_index: int) -> None:
        self._order.pop(frame_index, None)
        self._order[frame_index] = True

    def forget(self, frame_index: int) -> None:
        self._order.pop(frame_index, None)

    def choose_victim(self, evictable) -> int:
        candidates = set(evictable)
        if not candidates:
            raise BufferFullError("no evictable frame (all pinned or protected)")
        never_touched = candidates - self._order.keys()
        if never_touched:
            return min(never_touched)
        for frame_index in self._order:
            if frame_index in candidates:
                return frame_index
        raise AssertionError("unreachable: every candidate is tracked")

    def iter_order(self):
        """Tracked frame indices, least recently used first.

        The pool's eviction fast path walks this instead of building the
        full evictable-candidate list: every in-use frame is tracked
        (``touch`` immediately follows every load), so the first frame
        in LRU order that passes the evictability predicate is exactly
        the frame :meth:`choose_victim` would have picked.
        """
        return iter(self._order)


class ClockPolicy(ReplacementPolicy):
    """Second-chance: sweep a hand, clearing reference bits, and evict
    the first evictable frame whose bit is already clear."""

    def __init__(self) -> None:
        self._referenced: dict = {}
        self._hand = 0

    def touch(self, frame_index: int) -> None:
        self._referenced[frame_index] = True

    def forget(self, frame_index: int) -> None:
        self._referenced.pop(frame_index, None)

    def choose_victim(self, evictable) -> int:
        candidates = sorted(set(evictable))
        if not candidates:
            raise BufferFullError("no evictable frame (all pinned or protected)")
        # two full sweeps guarantee a pick: the first clears bits
        ring = [i for i in candidates if i >= self._hand] + \
               [i for i in candidates if i < self._hand]
        for _ in range(2):
            for frame_index in ring:
                if self._referenced.get(frame_index, False):
                    self._referenced[frame_index] = False
                else:
                    self._hand = frame_index + 1
                    return frame_index
        self._hand = ring[0] + 1
        return ring[0]


def make_policy(name: str) -> ReplacementPolicy:
    """Factory: ``"lru"`` or ``"clock"``."""
    policies = {"lru": LRUPolicy, "clock": ClockPolicy}
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; "
                         f"choose from {sorted(policies)}") from None
