"""Regression: record-granularity undo on pages shared between
transactions must not trample each other's effects.

Record locking lets two transactions hold records on the *same* page,
but the RDA steal path protects stolen pages at page granularity (the
parity twins restore a whole-page before-image).  Two historical bugs:

1. Promoting an unlogged steal to logged undo wrote a *page-level*
   before-image even in record mode; the later abort restored the whole
   page, resurrecting records another transaction had deleted and
   committed in between.

2. An abort's corrected-page flush performed a committed write onto a
   page while *another* transaction's unlogged steal was outstanding on
   it, silently invalidating that steal's parity-undo baseline; the
   second abort (or restart) then rewound the page to the stale
   baseline, losing the first abort's corrections.

Both fixes route shared-page conflicts through steal promotion: the
outstanding steal's per-slot before-entries become durable log undo,
the parity group is cleaned, and every undo is applied record-by-record
against the page's *current* contents.
"""

import pytest

from repro.db import Database, preset


def _seeded_db():
    db = Database(preset("record-noforce-rda"))
    seeder = db.begin()
    for page in range(db.num_data_pages):
        for i in range(2):
            db.insert_record(seeder, page, b"seed%d" % i)
    db.commit(seeder)
    return db


def _read_slots(db):
    reader = db.begin()
    state = {}
    for slot in (0, 1):
        try:
            state[slot] = db.read_record(reader, 0, slot)
        except KeyError:
            state[slot] = None
    db.commit(reader)
    return state


def _shared_page_conflict(db):
    """t2 deletes slot 0, is stolen via checkpoint; t3 deletes slot 1
    on the same page, forcing promotion; second checkpoint steals
    again.  Returns (t2, t3)."""
    t2 = db.begin()
    db.delete_record(t2, 0, 0)
    t3 = db.begin()
    db.checkpoint()                   # steals t2's page unlogged
    db.delete_record(t3, 0, 1)        # same page: promotes t2's steal
    db.checkpoint()                   # steals again for t3
    return t2, t3


def test_committed_delete_survives_other_txn_abort():
    """Bug 1: aborting t2 must not resurrect t3's committed delete on
    the shared page."""
    db = _seeded_db()
    t2, t3 = _shared_page_conflict(db)
    db.commit(t3)
    db.abort(t2)
    assert _read_slots(db) == {0: b"seed0", 1: None}
    db.buffer.flush_all_dirty()
    assert db.verify_parity() == []


def test_abort_abort_restores_both_records():
    """Bug 2: t2's abort flush must not invalidate t3's parity-undo
    baseline; after both aborts both seeds are back."""
    db = _seeded_db()
    t2, t3 = _shared_page_conflict(db)
    db.abort(t2)
    db.abort(t3)
    assert _read_slots(db) == {0: b"seed0", 1: b"seed1"}
    db.buffer.flush_all_dirty()
    assert db.verify_parity() == []


def test_abort_update_then_abort_delete():
    """Bug 2 with an update instead of a delete as the first change."""
    db = _seeded_db()
    t2 = db.begin()
    db.update_record(t2, 0, 0, b"\x00")
    t3 = db.begin()
    db.checkpoint()
    db.delete_record(t3, 0, 1)
    db.checkpoint()
    db.abort(t2)
    db.abort(t3)
    assert _read_slots(db) == {0: b"seed0", 1: b"seed1"}
    db.buffer.flush_all_dirty()
    assert db.verify_parity() == []


def test_crash_between_aborts_recovers_both_records():
    """The crash window after the first abort: restart undo of the
    still-active t3 must not rewind t2's durable abort corrections."""
    db = _seeded_db()
    t2, t3 = _shared_page_conflict(db)
    db.abort(t2)
    db.crash()
    db.recover()
    assert _read_slots(db) == {0: b"seed0", 1: b"seed1"}
    db.buffer.flush_all_dirty()
    assert db.verify_parity() == []
