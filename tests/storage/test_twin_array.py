"""Tests for the twin-parity array: the mechanical substrate of RDA recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnrecoverableDataError
from repro.storage import (DirtyGroupInfo, ParityHeader, TwinState, TwinUpdate,
                           make_page, make_twin_parity_striped, make_twin_raid5,
                           select_current_twin, xor_pages)
from repro.storage.page import NO_TXN, PAGE_SIZE


@pytest.fixture(params=["raid5", "parity_striped"])
def array(request):
    maker = make_twin_raid5 if request.param == "raid5" else make_twin_parity_striped
    return maker(4, 8)


def load(array):
    """Bulk-load every group; returns {page: payload}."""
    payloads = {}
    for g in range(array.geometry.num_groups):
        group_payloads = [make_page(bytes([g + 1, i + 1]))
                          for i in range(array.geometry.group_size)]
        array.full_stripe_write(g, group_payloads)
        for page, payload in zip(array.geometry.group_pages(g), group_payloads):
            payloads[page] = payload
    return payloads


def working_header(array, txn_id, dirty_index):
    return ParityHeader(timestamp=array.next_timestamp(), txn_id=txn_id,
                        dirty_page_index=dirty_index, state=TwinState.WORKING)


class TestFullStripe:
    def test_load_consistent(self, array):
        load(array)
        assert array.scrub() == []

    def test_twin_states_after_load(self, array):
        load(array)
        _, h0 = array.peek_twin(0, 0)
        _, h1 = array.peek_twin(0, 1)
        assert h0.state is TwinState.COMMITTED
        assert h1.state is TwinState.OBSOLETE
        assert h0.timestamp > h1.timestamp

    def test_wrong_payload_count(self, array):
        with pytest.raises(ValueError):
            array.full_stripe_write(0, [make_page(1)])


class TestSelectCurrentTwin:
    def test_committed_beats_obsolete(self):
        headers = (ParityHeader(5, state=TwinState.COMMITTED),
                   ParityHeader(9, state=TwinState.OBSOLETE))
        assert select_current_twin(headers) == 0

    def test_working_trusted_at_runtime(self):
        headers = (ParityHeader(5, state=TwinState.COMMITTED),
                   ParityHeader(9, txn_id=7, state=TwinState.WORKING))
        assert select_current_twin(headers) == 1

    def test_working_needs_commit_proof_during_recovery(self):
        headers = (ParityHeader(5, state=TwinState.COMMITTED),
                   ParityHeader(9, txn_id=7, state=TwinState.WORKING))
        assert select_current_twin(headers, committed_txns=set()) == 0
        assert select_current_twin(headers, committed_txns={7}) == 1

    def test_invalid_never_wins(self):
        headers = (ParityHeader(5, state=TwinState.COMMITTED),
                   ParityHeader(9, state=TwinState.INVALID))
        assert select_current_twin(headers) == 0

    def test_timestamp_breaks_committed_tie(self):
        headers = (ParityHeader(5, state=TwinState.COMMITTED),
                   ParityHeader(9, state=TwinState.COMMITTED))
        assert select_current_twin(headers) == 1

    def test_fallback_when_nothing_valid(self):
        headers = (ParityHeader(2, state=TwinState.OBSOLETE),
                   ParityHeader(1, state=TwinState.OBSOLETE))
        assert select_current_twin(headers) == 0


class TestSmallWrite:
    def test_single_twin_update_costs_four(self, array):
        load(array)
        header = working_header(array, txn_id=1, dirty_index=0)
        with array.stats.window() as w:
            array.small_write(0, make_page(b"new"),
                              [TwinUpdate(source=0, target=1, header=header)])
        assert w.total == 4

    def test_single_twin_update_with_buffered_old_costs_three(self, array):
        payloads = load(array)
        header = working_header(array, 1, 0)
        with array.stats.window() as w:
            array.small_write(0, make_page(b"new"),
                              [TwinUpdate(0, 1, header)],
                              old_data=payloads[0])
        assert w.total == 3

    def test_both_twin_update_costs_six(self, array):
        """The model's `a + 2` term: a write into a dirty group updates
        both twins (paper Section 5.2.1)."""
        load(array)
        updates = [TwinUpdate(0, 0, ParityHeader(timestamp=array.next_timestamp(),
                                                 state=TwinState.COMMITTED)),
                   TwinUpdate(1, 1, working_header(array, 1, 0))]
        with array.stats.window() as w:
            array.small_write(1, make_page(b"x"), updates)
        assert w.total == 6

    def test_undo_identity_on_disk(self, array):
        """D_old = P_working ⊕ P_committed ⊕ D_new with real twin I/O."""
        payloads = load(array)
        page = 2
        group = array.geometry.group_of(page)
        header = working_header(array, 9, array.geometry.index_in_group(page))
        array.small_write(page, make_page(b"uncommitted"),
                          [TwinUpdate(0, 1, header)])
        (p0, h0), (p1, h1) = array.read_twins(group)
        assert h1.state is TwinState.WORKING
        before = xor_pages(p1, p0, array.read_page(page))
        assert before == payloads[page]

    def test_working_twin_in_place_resteal(self, array):
        """Same page re-stolen: update the working twin from itself."""
        payloads = load(array)
        page = 2
        group = array.geometry.group_of(page)
        idx = array.geometry.index_in_group(page)
        array.small_write(page, make_page(b"v1"),
                          [TwinUpdate(0, 1, working_header(array, 9, idx))])
        array.small_write(page, make_page(b"v2"),
                          [TwinUpdate(1, 1, working_header(array, 9, idx))])
        (p0, _), (p1, _) = array.read_twins(group)
        assert xor_pages(p1, p0, array.read_page(page)) == payloads[page]

    def test_empty_updates_rejected(self, array):
        with pytest.raises(ValueError):
            array.small_write(0, make_page(1), [])

    def test_wrong_size_rejected(self, array):
        with pytest.raises(ValueError):
            array.small_write(0, b"small", [TwinUpdate(0, 1, ParityHeader())])

    def test_rewrite_twin_header_costs_one(self, array):
        load(array)
        with array.stats.window() as w:
            array.rewrite_twin_header(0, 1, ParityHeader(state=TwinState.INVALID))
        assert w.total == 1
        _, header = array.peek_twin(0, 1)
        assert header.state is TwinState.INVALID


class TestTimestamps:
    def test_monotonic(self, array):
        stamps = [array.next_timestamp() for _ in range(5)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 5

    def test_observe_advances(self, array):
        array.observe_timestamp(100)
        assert array.next_timestamp() == 101

    def test_observe_never_regresses(self, array):
        first = array.next_timestamp()
        array.observe_timestamp(0)
        assert array.next_timestamp() == first + 1


class TestStaleWorkingHeaders:
    """Commit never rewrites the superseded twin, so clean groups can
    show TWO WORKING headers on disk; timestamp order must win."""

    def _two_working_twins(self, array):
        """Alternate steals into both twins, as commits would leave them."""
        load(array)
        page = 0
        # steal into twin 1 (txn 1 'commits': header stays WORKING on disk)
        array.small_write(page, make_page(b"v1"),
                          [TwinUpdate(0, 1, working_header(array, 1, 0))])
        # next transaction steals into twin 0, seeded from twin 1
        array.small_write(page, make_page(b"v2"),
                          [TwinUpdate(1, 0, working_header(array, 2, 0))])
        return page

    def test_reconstruction_uses_newest_working_twin(self, array):
        page = self._two_working_twins(array)
        victim = array.geometry.data_address(page).disk
        array.fail_disk(victim)
        assert array.read_page(page) == make_page(b"v2")

    def test_scrub_accepts_two_working_twins(self, array):
        self._two_working_twins(array)
        assert array.scrub() == []


class TestDegradedAndRebuild:
    def test_degraded_read_clean_group(self, array):
        payloads = load(array)
        victim = array.geometry.data_address(0).disk
        array.fail_disk(victim)
        assert array.read_page(0) == payloads[0]

    def test_degraded_read_dirty_group_sees_new_data(self, array):
        """Reconstruction must use the WORKING twin (it matches the
        on-disk data including the stolen page)."""
        load(array)
        page = 0
        group = array.geometry.group_of(page)
        idx = array.geometry.index_in_group(page)
        array.small_write(page, make_page(b"stolen"),
                          [TwinUpdate(0, 1, working_header(array, 3, idx))])
        victim = array.geometry.data_address(page).disk
        array.fail_disk(victim)
        assert array.read_page(page) == make_page(b"stolen")
        # group mates still reconstructable too
        mate = next(p for p in array.geometry.group_pages(group) if p != page)
        mate_disk = array.geometry.data_address(mate).disk
        array.disks[victim].revive()
        array.fail_disk(mate_disk)
        assert array.read_page(mate) == make_page(bytes([group + 1, 2]))

    def test_rebuild_clean_disk(self, array):
        payloads = load(array)
        array.fail_disk(0)
        report = array.rebuild_disk(0)
        assert report.lost_undo_groups == ()
        assert array.scrub() == []
        for page, payload in payloads.items():
            assert array.read_page(page) == payload

    def test_rebuild_lost_working_twin(self, array):
        """Failing the disk holding the WORKING twin of a dirty group:
        rebuild recomputes it from data; undo capability survives."""
        payloads = load(array)
        page = 0
        group = array.geometry.group_of(page)
        idx = array.geometry.index_in_group(page)
        stamp_header = working_header(array, 3, idx)
        array.small_write(page, make_page(b"stolen"),
                          [TwinUpdate(0, 1, stamp_header)])
        working_disk = array.geometry.parity_addresses(group)[1].disk
        array.fail_disk(working_disk)
        info = {group: DirtyGroupInfo(txn_id=3, dirty_page_index=idx,
                                      working_timestamp=stamp_header.timestamp,
                                      working_twin=1)}
        array.rebuild_disk(working_disk, dirty_info=info)
        (p0, h0), (p1, h1) = array.read_twins(group)
        # find the rebuilt working twin and check undo still works
        if h0.state is TwinState.WORKING:
            working_payload, committed_payload = p0, p1
        else:
            working_payload, committed_payload = p1, p0
        before = xor_pages(working_payload, committed_payload, array.read_page(page))
        assert before == payloads[page]

    def test_rebuild_lost_committed_twin_raises(self, array):
        load(array)
        page = 0
        group = array.geometry.group_of(page)
        idx = array.geometry.index_in_group(page)
        header = working_header(array, 3, idx)
        array.small_write(page, make_page(b"stolen"), [TwinUpdate(0, 1, header)])
        committed_disk = array.geometry.parity_addresses(group)[0].disk
        array.fail_disk(committed_disk)
        info = {group: DirtyGroupInfo(3, idx, header.timestamp, 1)}
        with pytest.raises(UnrecoverableDataError):
            array.rebuild_disk(committed_disk, dirty_info=info)

    def test_rebuild_lost_committed_twin_adopt(self, array):
        load(array)
        page = 0
        group = array.geometry.group_of(page)
        idx = array.geometry.index_in_group(page)
        header = working_header(array, 3, idx)
        array.small_write(page, make_page(b"stolen"), [TwinUpdate(0, 1, header)])
        committed_disk = array.geometry.parity_addresses(group)[0].disk
        array.fail_disk(committed_disk)
        info = {group: DirtyGroupInfo(3, idx, header.timestamp, 1)}
        report = array.rebuild_disk(committed_disk, dirty_info=info,
                                    on_lost_undo="adopt")
        assert group in report.lost_undo_groups
        # the adopted twin matches current data: array is media-consistent
        assert array.scrub() == []

    def test_rebuild_rejects_bad_policy(self, array):
        with pytest.raises(ValueError):
            array.rebuild_disk(0, on_lost_undo="ignore")


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_twin_undo_identity_random(data):
    """Property: after a random prefix of committed writes, a steal +
    arbitrarily many re-steals of one page is always undoable from the
    twins alone."""
    array = make_twin_raid5(data.draw(st.integers(2, 5), label="N"),
                            data.draw(st.integers(2, 5), label="G"))
    for g in range(array.geometry.num_groups):
        array.full_stripe_write(
            g, [make_page(bytes([g, i])) for i in range(array.geometry.group_size)])
    page = data.draw(st.integers(0, array.num_data_pages - 1), label="page")
    group = array.geometry.group_of(page)
    idx = array.geometry.index_in_group(page)
    before_image = array.peek_page(page)

    # committed writes to OTHER pages of the same group, applied in place
    # to the committed twin (twin 0 after full_stripe_write)
    others = [p for p in array.geometry.group_pages(group) if p != page]
    for other in data.draw(st.lists(st.sampled_from(others), max_size=4),
                           label="pre"):
        array.small_write(other, data.draw(
            st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE)),
            [TwinUpdate(0, 0, ParityHeader(timestamp=array.next_timestamp(),
                                           state=TwinState.COMMITTED))])
    before_image = array.peek_page(page)

    versions = data.draw(st.lists(
        st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE), min_size=1,
        max_size=4), label="versions")
    source = 0
    for payload in versions:
        header = ParityHeader(timestamp=array.next_timestamp(), txn_id=1,
                              dirty_page_index=idx, state=TwinState.WORKING)
        array.small_write(page, payload, [TwinUpdate(source, 1, header)])
        source = 1
    (p0, _), (p1, _) = array.read_twins(group)
    assert xor_pages(p1, p0, array.read_page(page)) == before_image
