"""Crashes *during* recovery: restart must be idempotent from any point.

A power failure can hit the recovery pass itself.  Recovery derives its
work list purely from durable state (log + twin headers) and applies
absolute images, so being interrupted before any write and restarted —
any number of times — must converge to the same committed state.
"""

import pytest

from repro.db import Database, preset, verify_database
from repro.storage import make_page

PRESETS = ["page-force-rda", "page-force-log",
           "page-noforce-rda", "page-noforce-log"]


class MidRecoveryCrash(Exception):
    pass


def crashing_hook(at_write: int):
    """Raise at the N-th recovery write."""
    counter = {"n": 0}

    def hook(label):
        counter["n"] += 1
        if counter["n"] == at_write:
            raise MidRecoveryCrash(label)

    return hook


def build_scenario(name):
    db = Database(preset(name, group_size=4, num_groups=8,
                         buffer_capacity=6))
    winner = db.begin()
    db.write_page(winner, 0, make_page(b"win"))
    db.commit(winner)
    loser = db.begin()
    for page in (1, 5, 9):               # three different groups
        db.write_page(loser, page, make_page(b"lose"))
    db.buffer.flush_pages_of(loser)      # stolen to disk
    db.crash()
    return db


def assert_final_state(db):
    t = db.begin()
    assert db.read_page(t, 0) == make_page(b"win")
    for page in (1, 5, 9):
        assert db.read_page(t, page) == bytes(512)
    db.commit(t)
    assert verify_database(db) == []


@pytest.mark.parametrize("name", PRESETS)
@pytest.mark.parametrize("crash_at", [1, 2, 3])
def test_recovery_survives_interruption(name, crash_at):
    db = build_scenario(name)
    with pytest.raises(MidRecoveryCrash):
        db.recover(fault_hook=crashing_hook(crash_at))
    db.crash()                 # the machine went down mid-recovery
    db.recover()               # second attempt runs to completion
    assert_final_state(db)


@pytest.mark.parametrize("name", ["page-force-rda", "page-noforce-log"])
def test_recovery_survives_repeated_interruption(name):
    db = build_scenario(name)
    for attempt in (1, 2):     # die at progressively later points
        with pytest.raises(MidRecoveryCrash):
            db.recover(fault_hook=crashing_hook(attempt))
        db.crash()
    db.recover()
    assert_final_state(db)


def test_hook_not_called_on_clean_recovery():
    db = Database(preset("page-force-rda", group_size=4, num_groups=8,
                         buffer_capacity=6))
    db.crash()
    calls = []
    db.recover(fault_hook=calls.append)
    assert calls == ["abort records"]      # no data writes needed
