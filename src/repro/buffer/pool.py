"""The buffer pool.

Implements the buffer-management half of the Haerder/Reuter taxonomy the
paper builds on (Section 2):

* **STEAL / NO-STEAL** — whether a page modified by an *uncommitted*
  transaction may be evicted (written back) to make room.  RDA recovery
  exists precisely to make STEAL cheap: the parity twins replace the
  UNDO log record the steal would otherwise require.
* **FORCE / NO-FORCE** — whether a committing transaction's pages are
  flushed at EOT (:meth:`BufferPool.flush_pages_of`).

The pool is storage-agnostic: misses call ``fetch_fn(page_id)`` and
write-backs call ``writeback_fn(page_id, payload, modifiers)``.  The
recovery layer supplies a ``writeback_fn`` that decides between UNDO
logging and parity protection — the paper's central decision point.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..errors import BufferFullError, PageNotPinnedError
from ..obs.tracer import NULL_TRACER
from .frame import Frame
from .replacement import LRUPolicy, make_policy


@dataclass
class BufferStats:
    """Hit/miss/steal counters; the empirical side of the model's
    communality ``C`` and steal probability ``p_s``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    steals: int = 0

    @property
    def references(self) -> int:
        """Total page references."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of references served from the buffer (≈ C)."""
        if self.references == 0:
            return 0.0
        return self.hits / self.references


class BufferPool:
    """Fixed-capacity page buffer with pluggable policy and disciplines.

    Args:
        capacity: number of frames (the model's ``B``).
        fetch_fn: ``page_id -> bytes`` used on a miss.
        writeback_fn: ``(page_id, payload, modifiers: frozenset) -> None``
            used when a dirty frame is evicted or flushed.  ``modifiers``
            is the set of transactions with uncommitted changes to the
            page at write-back time — non-empty means this is a *steal*.
        policy: ``"lru"`` (default) or ``"clock"``.
        steal: allow eviction of uncommitted-dirty frames (STEAL).
        tracer: event tracer (eviction/steal events only; hits and
            misses are counted, not traced).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self, capacity: int, fetch_fn, writeback_fn,
                 policy: str = "lru", steal: bool = True,
                 tracer=None, metrics=None) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        self.capacity = capacity
        self._fetch = fetch_fn
        self._writeback = writeback_fn
        self._policy = make_policy(policy)
        self.steal = steal
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if metrics is not None:
            self._m_hits = metrics.counter("buffer.hits")
            self._m_misses = metrics.counter("buffer.misses")
            self._m_evictions = metrics.counter("buffer.evictions")
            self._m_steals = metrics.counter("buffer.steals")
        else:
            self._m_hits = self._m_misses = None
            self._m_evictions = self._m_steals = None
        self._frames = [Frame() for _ in range(capacity)]
        self._table: dict = {}
        self.stats = BufferStats()
        # free-frame min-heap: the legacy linear probe always picked the
        # lowest-indexed free frame, and a heap preserves that choice in
        # O(log B) instead of O(B) per miss
        self._free_heap = list(range(capacity))
        # txn id -> resident page ids it has uncommitted changes to;
        # turns flush_pages_of/clear_modifier from full-pool scans into
        # per-transaction lookups
        self._txn_pages: dict = {}
        # memoized sorted(self._table); dropped whenever residency changes
        self._resident_cache = None
        self._writeback_batch = None
        # write-behind propagation gate (REDO-only recovery class):
        # when set, a dirty frame may only be written back if
        # filter(page_id, frame) is True — pages whose redo chain is
        # not yet durable stay in the buffer
        self._writeback_filter = None

    # -- lookups -----------------------------------------------------------------

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._table

    def resident_pages(self) -> list:
        """Sorted ids of pages currently buffered."""
        cached = self._resident_cache
        if cached is None:
            cached = self._resident_cache = sorted(self._table)
        return list(cached)

    def is_dirty(self, page_id: int) -> bool:
        """True if the page is buffered and dirty."""
        index = self._table.get(page_id)
        return index is not None and self._frames[index].dirty

    def modifiers_of(self, page_id: int):
        """Frozen set of uncommitted modifiers of a buffered page."""
        index = self._table.get(page_id)
        if index is None:
            return frozenset()
        return frozenset(self._frames[index].modifiers)

    # -- the main interface ------------------------------------------------------------

    def get_page(self, page_id: int) -> bytes:
        """Return the page's current contents, loading it on a miss."""
        index = self._table.get(page_id)
        if index is not None:            # hit path, inlined
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            self._policy.touch(index)
            return self._frames[index].payload
        return self._frame_for(page_id).payload

    def put_page(self, page_id: int, payload: bytes,
                 txn_id: int | None = None) -> None:
        """Replace the page's contents in the buffer.

        ``txn_id`` registers an uncommitted modifier; pass None for
        changes that are already durable-equivalent (e.g. recovery
        writes).  The page is loaded first if absent so its frame exists.
        """
        index = self._table.get(page_id)
        if index is not None:
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            self._policy.touch(index)
            frame = self._frames[index]
        else:
            frame = self._frame_for(page_id, load=False)
        frame.payload = bytes(payload)
        frame.dirty = True
        if txn_id is not None:
            frame.modifiers.add(txn_id)
            pages = self._txn_pages.get(txn_id)
            if pages is None:
                self._txn_pages[txn_id] = {page_id}
            else:
                pages.add(page_id)

    def pin(self, page_id: int) -> bytes:
        """Load (if needed) and pin the page; returns its contents."""
        frame = self._frame_for(page_id)
        frame.pin_count += 1
        return frame.payload

    def unpin(self, page_id: int) -> None:
        """Release one pin."""
        index = self._table.get(page_id)
        if index is None or self._frames[index].pin_count == 0:
            raise PageNotPinnedError(f"page {page_id} is not pinned")
        self._frames[index].pin_count -= 1

    # -- flushing and invalidation ------------------------------------------------------

    def set_batch_writeback(self, writeback_batch_fn) -> None:
        """Enable commit-window batching: ``flush_pages_of`` and
        ``flush_all_dirty`` hand the whole window of dirty pages —
        ``[(page_id, payload, modifiers), ...]`` in frame order — to
        ``writeback_batch_fn`` in one call.  The callee writes each page
        back and calls :meth:`mark_clean` per page as it goes, so frame
        state tracks the write schedule exactly as on the per-page path.
        """
        self._writeback_batch = writeback_batch_fn

    def set_writeback_filter(self, filter_fn) -> None:
        """Install the write-behind propagation gate: ``filter_fn(page_id,
        frame) -> bool`` is consulted before any dirty frame is written
        back (eviction, flush, checkpoint).  A refused frame is skipped —
        it stays dirty and resident; eviction picks another victim.  The
        REDO-only recovery class uses this to replace the steal/undo
        contract: a page may reach disk only once its redo chain is
        durable."""
        self._writeback_filter = filter_fn

    def mark_clean(self, page_id: int) -> None:
        """The page was just written back (batched path): its frame
        stays resident and becomes clean."""
        index = self._table.get(page_id)
        if index is None:
            return
        frame = self._frames[index]
        frame.dirty = False
        if frame.modifiers:
            self._drop_modifiers(frame)

    def _drop_modifiers(self, frame: Frame) -> None:
        for txn_id in frame.modifiers:
            pages = self._txn_pages.get(txn_id)
            if pages is not None:
                pages.discard(frame.page_id)
                if not pages:
                    del self._txn_pages[txn_id]
        frame.modifiers.clear()

    def flush_page(self, page_id: int) -> bool:
        """Write back the page if buffered and dirty; returns True if a
        write-back happened.  The frame stays resident and becomes clean."""
        index = self._table.get(page_id)
        if index is None:
            return False
        frame = self._frames[index]
        if not frame.dirty:
            return False
        if self._writeback_filter is not None \
                and not self._writeback_filter(page_id, frame):
            return False
        self._writeback(page_id, frame.payload, frozenset(frame.modifiers))
        frame.dirty = False
        if frame.modifiers:
            self._drop_modifiers(frame)
        return True

    def flush_pages_of(self, txn_id: int) -> list:
        """FORCE discipline: write back every page the transaction has
        modified (and not yet stolen).  Returns the page ids flushed."""
        pages = self._txn_pages.get(txn_id)
        if not pages:
            return []
        table = self._table
        flushed = sorted(pages, key=table.__getitem__)   # frame order
        gate = self._writeback_filter
        if self._writeback_batch is not None:
            entries = []
            for page_id in flushed:
                frame = self._frames[table[page_id]]
                if frame.dirty and (gate is None or gate(page_id, frame)):
                    entries.append((page_id, frame.payload,
                                    frozenset(frame.modifiers)))
            if entries:
                self._writeback_batch(entries)
            return flushed
        for page_id in flushed:
            self.flush_page(page_id)
        return flushed

    def flush_all_dirty(self) -> list:
        """Checkpoint helper: write back every dirty frame (frames the
        write-behind gate refuses are skipped and stay dirty)."""
        gate = self._writeback_filter
        if self._writeback_batch is not None:
            entries = []
            flushed = []
            for frame in self._frames:
                if frame.in_use and frame.dirty \
                        and (gate is None or gate(frame.page_id, frame)):
                    entries.append((frame.page_id, frame.payload,
                                    frozenset(frame.modifiers)))
                    flushed.append(frame.page_id)
            if entries:
                self._writeback_batch(entries)
            return flushed
        flushed = []
        for frame in list(self._frames):
            if frame.in_use and frame.dirty \
                    and (gate is None or gate(frame.page_id, frame)):
                self.flush_page(frame.page_id)
                flushed.append(frame.page_id)
        return flushed

    def clear_modifier(self, txn_id: int) -> None:
        """Commit bookkeeping: the transaction's buffered changes are no
        longer *uncommitted* (frames stay dirty for later write-back)."""
        pages = self._txn_pages.pop(txn_id, None)
        if not pages:
            return
        for page_id in pages:
            index = self._table.get(page_id)
            if index is not None:
                self._frames[index].modifiers.discard(txn_id)

    def invalidate(self, page_id: int) -> None:
        """Drop the buffered copy without writing it back.

        Used on abort for pages whose only uncommitted version lives in
        the buffer: the on-disk copy *is* the before-image.
        """
        index = self._table.pop(page_id, None)
        if index is None:
            return
        self._resident_cache = None
        self._policy.forget(index)
        frame = self._frames[index]
        if frame.modifiers:
            self._drop_modifiers(frame)
        frame.clear()
        heapq.heappush(self._free_heap, index)

    def invalidate_all(self) -> None:
        """Simulate losing main memory in a crash."""
        for page_id in list(self._table):
            self.invalidate(page_id)
        self.stats = BufferStats()

    def dirty_pages(self) -> list:
        """Sorted ids of dirty buffered pages."""
        return sorted(f.page_id for f in self._frames if f.in_use and f.dirty)

    # -- internals ----------------------------------------------------------------------

    def _frame_for(self, page_id: int, load: bool = True) -> Frame:
        index = self._table.get(page_id)
        if index is not None:
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            self._policy.touch(index)
            return self._frames[index]
        self.stats.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        index = self._free_frame()
        frame = self._frames[index]
        frame.page_id = page_id
        frame.payload = self._fetch(page_id) if load else b""
        frame.dirty = False
        frame.pin_count = 0
        frame.modifiers = set()
        self._table[page_id] = index
        self._resident_cache = None
        self._policy.touch(index)
        return frame

    def _free_frame(self) -> int:
        heap = self._free_heap
        while heap:
            index = heapq.heappop(heap)
            if not self._frames[index].in_use:
                return index
        return self._evict()

    def _evictable(self) -> list:
        gate = self._writeback_filter
        out = []
        for index, frame in enumerate(self._frames):
            if not frame.in_use or frame.pin_count > 0:
                continue
            if frame.uncommitted and frame.dirty and not self.steal:
                continue
            if frame.dirty and gate is not None \
                    and not gate(frame.page_id, frame):
                continue
            out.append(index)
        return out

    def _choose_victim(self) -> int:
        policy = self._policy
        if type(policy) is LRUPolicy:
            # every in-use frame is LRU-tracked (touch follows every
            # load), so the first tracked frame passing the predicate
            # is the same victim choose_victim would pick — without
            # materializing the candidate list
            steal = self.steal
            gate = self._writeback_filter
            for index in policy.iter_order():
                frame = self._frames[index]
                if frame.pin_count > 0:
                    continue
                if frame.dirty and not steal and frame.modifiers:
                    continue
                if frame.dirty and gate is not None \
                        and not gate(frame.page_id, frame):
                    continue
                return index
            raise BufferFullError(
                "buffer full: every frame is pinned"
                + ("" if steal else " or protected by NO-STEAL")
                + ("" if gate is None else " or held by the write-behind gate")
            )
        candidates = self._evictable()
        if not candidates:
            raise BufferFullError(
                "buffer full: every frame is pinned"
                + ("" if self.steal else " or protected by NO-STEAL")
            )
        return policy.choose_victim(candidates)

    def _evict(self) -> int:
        index = self._choose_victim()
        frame = self._frames[index]
        self.stats.evictions += 1
        stolen = frame.dirty and frame.uncommitted
        if self._m_evictions is not None:
            self._m_evictions.inc()
            if stolen:
                self._m_steals.inc()
        if self.tracer.enabled:
            self.tracer.emit("buffer.evict", page=frame.page_id,
                             dirty=frame.dirty, steal=stolen)
        if frame.dirty:
            self.stats.dirty_evictions += 1
            if frame.uncommitted:
                self.stats.steals += 1
            self._writeback(frame.page_id, frame.payload,
                            frozenset(frame.modifiers))
        del self._table[frame.page_id]
        self._resident_cache = None
        self._policy.forget(index)
        if frame.modifiers:
            self._drop_modifiers(frame)
        frame.clear()
        return index
