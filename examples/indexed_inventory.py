#!/usr/bin/env python3
"""An indexed inventory: B-tree + heap records, surviving every failure.

A small warehouse application: SKUs live in a heap file, a B-tree maps
SKU codes to record ids.  The workload interleaves restocks, lookups and
range reports; mid-way the process crashes, later a disk dies — the
index and the heap stay mutually consistent throughout, courtesy of RDA
recovery underneath.

Run:  python examples/indexed_inventory.py
"""

import random

from repro.db import BTree, Database, HeapFile, preset


def rid_bytes(rid):
    return f"{rid[0]}:{rid[1]}".encode()


def rid_parse(blob):
    page, slot = blob.decode().split(":")
    return int(page), int(slot)


def main():
    rng = random.Random(99)
    db = Database(preset("record-noforce-rda", group_size=5, num_groups=20,
                         buffer_capacity=30, checkpoint_interval=400))
    db.format_record_pages(range(db.num_data_pages))
    index_pages = list(range(0, 24))
    heap_pages = list(range(24, 60))
    txn = db.begin()
    index = BTree(db, index_pages, txn_id=txn, create=True)
    db.commit(txn)
    heap = HeapFile(db, heap_pages)

    print("stocking 40 SKUs...")
    txn = db.begin()
    for number in range(40):
        sku = f"SKU-{number:04d}".encode()
        rid = heap.insert(txn, b"qty=100")
        index.put(txn, sku, rid_bytes(rid))
    db.commit(txn)

    print("running 60 operations with one crash in the middle...")
    for step in range(60):
        txn = db.begin()
        sku = f"SKU-{rng.randrange(40):04d}".encode()
        rid = rid_parse(index.get(txn, sku))
        qty = int(heap.read(txn, rid).split(b"=")[1])
        heap.update(txn, rid, b"qty=%03d" % max(0, qty - rng.randrange(5)))
        if rng.random() < 0.1:
            db.abort(txn)
        else:
            db.commit(txn)
        if step == 30:
            print("  ...crash!")
            doomed = db.begin()
            index.put(doomed, b"SKU-9999", b"junk")
            db.crash()
            stats = db.recover()
            print(f"  recovered ({stats['page_transfers']} transfers); "
                  f"ghost SKU present: "
                  f"{index.get(db.begin(), b'SKU-9999') is not None}")

    print("disk failure...")
    db.media_failure(3)
    db.media_recover(3)

    txn = db.begin()
    count = index.check_invariants(txn)
    report = [(k.decode(), rid_parse(v))
              for k, v in index.range(txn, b"SKU-0000", b"SKU-0005")]
    db.commit(txn)
    print(f"index intact: {count} SKUs; sample range report: {report[:3]}")
    print("parity scrub:", db.verify_parity() or "clean")


if __name__ == "__main__":
    main()
