"""Online invariant engine: the paper's safety rules, checked live.

Rules subscribe to *barriers* — protocol points where the paper's
correctness argument makes a claim about durable state:

``steal``
    A buffer-pool writeback of uncommitted data just finished
    (:meth:`Database._writeback`).
``twin_write``
    A twin-parity small write just landed (inside a steal; the
    Dirty_Set may not reflect it yet, so only stateless-against-the-
    Dirty_Set rules subscribe here).
``flip``
    A commit just flipped one group's current-parity bit
    (:meth:`RDAManager.commit_txn`).
``commit`` / ``abort``
    End of transaction, after all EOT processing.
``checkpoint``
    An ACC checkpoint completed.
``restart``
    Crash recovery finished (also invoked by ``faultplan`` after every
    surviving replayed restart).

Each rule also carries a deliberate **mutant**: a minimal corruption
of live state that the rule — and only the protocol property it
states — must catch.  Tests apply the mutant and assert the rule
fires; a rule whose mutant goes unnoticed is dead weight.

Checks use uncounted peeks (``peek_twin`` / ``peek_page`` /
``group_data_payloads``) so enabling the engine does not perturb the
transfer accounting the simulator reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.faultplan import Violation
from ..storage.page import TwinState, compute_parity, xor_pages
from ..storage.twin_array import select_current_twin
from ..wal import PageBeforeImage, RecordBeforeEntry

BARRIERS = ("steal", "twin_write", "flip", "commit", "abort",
            "checkpoint", "restart")


class MutantError(RuntimeError):
    """A mutant's precondition is not met (e.g. no dirty group yet)."""


class InvariantRule:
    """Base class: subclasses define ``name``, ``barriers``, ``check``
    and ``mutate``."""

    name = "abstract"
    barriers: Tuple[str, ...] = ()

    def check(self, db, barrier: str, ctx: dict) -> List[Violation]:
        raise NotImplementedError

    def mutate(self, db) -> str:
        """Corrupt live state such that ``check`` must report a
        violation at the next subscribed barrier.  Returns a
        description of the corruption.  Raises :class:`MutantError`
        when the database is not in a state the mutant can corrupt."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _first_dirty_entry(db):
        if db.rda is None or not db.rda.dirty_set.entries():
            raise MutantError("no dirty parity group to corrupt")
        return db.rda.dirty_set.entries()[0]


class TwinParityIdentityRule(InvariantRule):
    """Paper Section 4.2: for every dirty group, the working twin is
    the parity of the current data, and the twin XOR identity
    ``D_old = P_w XOR P_c XOR D_new`` reproduces the stolen page's
    before-image.  At a flip, the current-twin choice must equal pure
    timestamp ordering over valid twins (Section 4.1)."""

    name = "twin-parity-identity"
    barriers = ("steal", "twin_write", "flip", "commit", "checkpoint",
                "restart")

    def check(self, db, barrier: str, ctx: dict) -> List[Violation]:
        if db.rda is None:
            return []
        violations: List[Violation] = []
        for entry in db.rda.dirty_set.entries():
            p_w, h_w = db.array.peek_twin(entry.group, entry.working_twin)
            p_c, _h_c = db.array.peek_twin(entry.group,
                                           1 - entry.working_twin)
            data = db.array.group_data_payloads(entry.group)
            if p_w != compute_parity(data):
                violations.append(Violation(
                    "twin-parity-identity",
                    f"group {entry.group}: working twin is not the parity "
                    f"of the group data ({barrier})"))
            if h_w.state is not TwinState.WORKING \
                    or h_w.txn_id != entry.txn_id \
                    or h_w.dirty_page_index != entry.page_index:
                violations.append(Violation(
                    "twin-parity-identity",
                    f"group {entry.group}: working-twin header "
                    f"{h_w} disagrees with Dirty_Set entry {entry} "
                    f"({barrier})"))
            captured = db._before_images.get((entry.txn_id, entry.page_id))
            if captured is not None:
                derived = xor_pages(p_w, p_c, data[entry.page_index])
                if derived != captured:
                    violations.append(Violation(
                        "twin-parity-identity",
                        f"group {entry.group}: P_w XOR P_c XOR D_new does "
                        f"not reproduce the before-image of page "
                        f"{entry.page_id} ({barrier})"))
        if barrier == "flip":
            violations.extend(self._check_flip(db, ctx))
        return violations

    def _check_flip(self, db, ctx: dict) -> List[Violation]:
        group, txn = ctx["group"], ctx["txn"]
        (p0, h0) = db.array.peek_twin(group, 0)
        (p1, h1) = db.array.peek_twin(group, 1)
        committed = db.txns.committed_ids() | {txn}
        expected = select_current_twin((h0, h1), committed)
        actual = db.rda.current_twin(group)
        violations: List[Violation] = []
        if actual != expected:
            violations.append(Violation(
                "twin-flip-order",
                f"group {group}: commit of txn {txn} flipped to twin "
                f"{actual}, but timestamp ordering selects {expected}"))
        current_payload = (p0, p1)[actual]
        if current_payload != compute_parity(
                db.array.group_data_payloads(group)):
            violations.append(Violation(
                "twin-flip-order",
                f"group {group}: current twin after flip is not the "
                f"parity of the group data"))
        return violations

    def mutate(self, db) -> str:
        entry = self._first_dirty_entry(db)
        committed = 1 - entry.working_twin
        payload, header = db.array.peek_twin(entry.group, committed)
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        db.array.write_twin(entry.group, committed, corrupted, header)
        return (f"XOR-corrupted committed twin of group {entry.group} "
                f"(breaks the before-image identity)")


class DirtySetBoundRule(InvariantRule):
    """Paper Figure 3: at most one unlogged uncommitted page per parity
    group — durably, at most one WORKING twin owned by an active
    transaction, and the Dirty_Set agrees with the on-disk headers."""

    name = "dirty-set-bound"
    barriers = ("steal", "commit", "abort", "checkpoint", "restart")

    def check(self, db, barrier: str, ctx: dict) -> List[Violation]:
        if db.rda is None:
            return []
        violations: List[Violation] = []
        active = {t.txn_id for t in db.txns.active_transactions()}
        geometry = db.array.geometry
        for group in range(geometry.num_groups):
            headers = [db.array.peek_twin(group, which)[1]
                       for which in (0, 1)]
            working = [which for which in (0, 1)
                       if headers[which].state is TwinState.WORKING
                       and headers[which].txn_id in active]
            if len(working) > 1:
                violations.append(Violation(
                    "dirty-set-bound",
                    f"group {group}: both twins WORKING for active "
                    f"transactions ({barrier})"))
            entry = db.rda.dirty_set.get(group)
            if entry is None:
                if working and barrier != "steal":
                    # mid-steal the twin lands before mark_dirty; at
                    # every other barrier an active WORKING twin must
                    # have a Dirty_Set entry
                    violations.append(Violation(
                        "dirty-set-bound",
                        f"group {group}: WORKING twin {working[0]} "
                        f"(txn {headers[working[0]].txn_id}) has no "
                        f"Dirty_Set entry ({barrier})"))
                continue
            header = headers[entry.working_twin]
            if header.state is not TwinState.WORKING \
                    or header.txn_id != entry.txn_id:
                violations.append(Violation(
                    "dirty-set-bound",
                    f"group {group}: Dirty_Set entry {entry} not backed "
                    f"by a WORKING twin header ({barrier})"))
        return violations

    def mutate(self, db) -> str:
        entry = self._first_dirty_entry(db)
        other = 1 - entry.working_twin
        _payload, header = db.array.peek_twin(entry.group, other)
        db.array.rewrite_twin_header(entry.group, other, header.with_(
            state=TwinState.WORKING, txn_id=entry.txn_id,
            dirty_page_index=entry.page_index))
        return (f"stamped both twins of group {entry.group} WORKING "
                f"for active txn {entry.txn_id}")


class WalBeforeDataRule(InvariantRule):
    """WAL before data: a logged steal's before-image records must be
    durable (appended and forced) before the data page overwrite; an
    unlogged steal must instead be covered by a Dirty_Set entry —
    undo information always exists *somewhere* before data lands."""

    name = "wal-before-data"
    barriers = ("steal",)

    def check(self, db, barrier: str, ctx: dict) -> List[Violation]:
        page = ctx["page"]
        txns = ctx["txns"]
        if not ctx["logged"]:
            entry = (db.rda.dirty_set.get(db.array.geometry.group_of(page))
                     if db.rda is not None else None)
            if entry is None or entry.page_id != page \
                    or entry.txn_id not in txns:
                return [Violation(
                    "wal-before-data",
                    f"unlogged steal of page {page} (txns {sorted(txns)}) "
                    f"left no Dirty_Set cover")]
            return []
        violations: List[Violation] = []
        # durable_lsn, not forced_lsn: a group-commit log with a
        # batched force pending drains at crash, covering its tail
        forced = db.undo_log.durable_lsn
        for txn_id in sorted(txns):
            pending = [e for e in db._pending_undo.get(txn_id, [])
                       if e.page_id == page]
            if pending:
                violations.append(Violation(
                    "wal-before-data",
                    f"logged steal of page {page}: txn {txn_id} still has "
                    f"{len(pending)} undo records deferred in memory"))
                continue
            records = [r for r in db.undo_log.records_of(txn_id)
                       if isinstance(r, (PageBeforeImage, RecordBeforeEntry))
                       and r.page_id == page]
            if not records:
                violations.append(Violation(
                    "wal-before-data",
                    f"logged steal of page {page}: no before-image record "
                    f"for txn {txn_id} in the undo log"))
            elif any(r.lsn > forced for r in records):
                violations.append(Violation(
                    "wal-before-data",
                    f"logged steal of page {page}: txn {txn_id} has undo "
                    f"records beyond the forced LSN ({forced})"))
        return violations

    def mutate(self, db) -> str:
        db.undo_log.force = lambda: None
        return "disabled undo_log.force (steals land before their undo)"


class LsnMonotonicityRule(InvariantRule):
    """Log sequence numbers strictly increase, the forced horizon never
    exceeds the tail, and the base LSN matches the first record —
    restart analysis depends on all three."""

    name = "lsn-monotonicity"
    barriers = ("commit", "checkpoint", "restart")

    def check(self, db, barrier: str, ctx: dict) -> List[Violation]:
        violations: List[Violation] = []
        logs = [db.undo_log]
        if db.redo_log is not db.undo_log:
            logs.append(db.redo_log)
        for log in logs:
            records = log.records()
            lsns = [record.lsn for record in records]
            if any(b <= a for a, b in zip(lsns, lsns[1:])):
                violations.append(Violation(
                    "lsn-monotonicity",
                    f"{log.name} log: LSNs not strictly increasing "
                    f"({barrier})"))
            if log.forced_lsn > log.last_lsn:
                violations.append(Violation(
                    "lsn-monotonicity",
                    f"{log.name} log: forced LSN {log.forced_lsn} beyond "
                    f"tail {log.last_lsn} ({barrier})"))
            if records and lsns[0] != log.base_lsn:
                violations.append(Violation(
                    "lsn-monotonicity",
                    f"{log.name} log: base LSN {log.base_lsn} disagrees "
                    f"with first record {lsns[0]} ({barrier})"))
        return violations

    def mutate(self, db) -> str:
        records = db.undo_log.records()
        if len(records) < 2:
            raise MutantError("undo log needs two records to reorder")
        records[-1].lsn = records[0].lsn
        return "rewound the last undo-log record's LSN"


class WriteBehindRule(InvariantRule):
    """REDO-only write-behind propagation: with no undo log, a page may
    reach disk only once the redo chain that rebuilds it is durable.
    Concretely: no steal ever logs undo records (the class has nowhere
    to put them), the *pure* class never steals at all (the hybrid's
    steals must ride twin-parity cover, which :class:`WalBeforeDataRule`
    checks), and every on-disk page-LSN marker sits at or below the
    redo log's durable horizon."""

    name = "write-behind"
    barriers = ("steal", "commit", "abort", "checkpoint", "restart")

    def check(self, db, barrier: str, ctx: dict) -> List[Violation]:
        if not getattr(db.config, "redo_only", False):
            return []
        violations: List[Violation] = []
        if barrier == "steal":
            if ctx.get("logged"):
                violations.append(Violation(
                    "write-behind",
                    f"steal of page {ctx['page']} logged undo records "
                    f"under a REDO-only configuration"))
            if db.rda is None:
                violations.append(Violation(
                    "write-behind",
                    f"page {ctx['page']} stolen under the pure REDO-only "
                    f"class (uncommitted data must never reach disk)"))
        durable = db.redo_log.durable_lsn
        for page, lsn in sorted(db._durable_page_lsn.items()):
            if lsn > durable:
                violations.append(Violation(
                    "write-behind",
                    f"page {page} reached disk with chain head {lsn} "
                    f"beyond the durable redo horizon {durable} "
                    f"({barrier})"))
        return violations

    def mutate(self, db) -> str:
        if not getattr(db.config, "redo_only", False):
            raise MutantError(
                "write-behind only governs REDO-only configurations")
        if not db._durable_page_lsn:
            raise MutantError("no committed page has reached disk yet")
        page = next(iter(db._durable_page_lsn))
        db._durable_page_lsn[page] = db.redo_log.durable_lsn + 1_000_000
        return (f"forged page {page}'s on-disk chain head beyond the "
                f"durable redo horizon")


def default_rules() -> List[InvariantRule]:
    return [TwinParityIdentityRule(), DirtySetBoundRule(),
            WalBeforeDataRule(), LsnMonotonicityRule(), WriteBehindRule()]


class InvariantEngine:
    """Dispatches barrier notifications to the subscribed rules and
    accumulates violations."""

    def __init__(self, db, rules: Optional[List[InvariantRule]] = None):
        self.db = db
        self.rules = default_rules() if rules is None else list(rules)
        self.violations: List[Violation] = []
        self.barrier_counts: Dict[str, int] = {}

    @classmethod
    def attach(cls, db, rules: Optional[List[InvariantRule]] = None
               ) -> "InvariantEngine":
        """Create an engine and wire it into the database's barrier
        seams (``db.invariants``, the RDA flip hook and the twin-array
        write hook).

        On a :class:`~repro.db.sharded.ShardedDatabase` one child
        engine is wired per shard; they share the returned engine's
        violation list and barrier counts, so ``clean`` and
        ``assert_clean`` judge the whole facade.
        """
        # worker-process facades wire an engine inside each worker and
        # return a facade-side collector over them (the shard engines
        # are not in this address space)
        remote = getattr(db, "attach_invariants", None)
        if remote is not None:
            return remote(rules)
        engine = cls(db, rules)
        db.invariants = engine
        shards = getattr(db, "shards", None)
        if shards is not None:
            for shard in shards:
                child = cls(shard, engine.rules)
                child.violations = engine.violations
                child.barrier_counts = engine.barrier_counts
                shard.invariants = child
                if shard.rda is not None:
                    shard.rda.barrier_hook = child.barrier
                    shard.array.barrier_hook = child.barrier
            return engine
        if db.rda is not None:
            db.rda.barrier_hook = engine.barrier
            db.array.barrier_hook = engine.barrier
        return engine

    @property
    def clean(self) -> bool:
        return not self.violations

    def barrier(self, name: str, **ctx) -> List[Violation]:
        """Evaluate every rule subscribed to ``name``; returns (and
        accumulates) the violations found."""
        if name not in BARRIERS:
            raise ValueError(f"unknown barrier {name!r}")
        self.barrier_counts[name] = self.barrier_counts.get(name, 0) + 1
        found: List[Violation] = []
        for rule in self.rules:
            if name in rule.barriers:
                found.extend(rule.check(self.db, name, ctx))
        self.violations.extend(found)
        return found

    def assert_clean(self) -> None:
        if self.violations:
            raise AssertionError(
                f"{len(self.violations)} invariant violations, first: "
                f"{self.violations[0]}")


def check_restart(db) -> List[Violation]:
    """One-shot restart-barrier evaluation on a freshly recovered
    database (used by the fault-injection harness after every
    surviving replayed restart).  A sharded facade is checked shard by
    shard."""
    remote = getattr(db, "check_restart_remote", None)
    if remote is not None:
        return remote()
    shards = getattr(db, "shards", None)
    if shards is not None:
        found: List[Violation] = []
        for shard in shards:
            found.extend(check_restart(shard))
        return found
    engine = InvariantEngine(db)
    return engine.barrier("restart")
