"""Pooled page buffers: reusable slabs for the batched hot path.

The per-write cost of the array layer is dominated not by XOR math but
by allocation churn: every small write used to build several throwaway
``bytes`` objects (old image, delta, new parity).  This module keeps a
pool of reusable ``bytearray`` slabs, sized in whole pages, that the
batched write paths check out, fill via ``memoryview`` slicing, hand to
the kernel tier for one in-place batched XOR, and give back.

A slab is always a multiple of :data:`~repro.storage.page.PAGE_SIZE`
bytes.  Checkout returns the slab *unzeroed* — callers overwrite every
byte they read back, so clearing would be wasted work.

The module-level :data:`POOL` is shared by the array layers
(``array.py``, ``twin_array.py``, ``raid6.py`` and the parity-striping
factories build on those); tests may construct private pools.
"""

from __future__ import annotations

from contextlib import contextmanager

from .page import PAGE_SIZE


class PagePool:
    """A free list of reusable page-sized ``bytearray`` slabs.

    Slabs are binned by size (in bytes); ``checkout`` pops a recycled
    slab of the exact size when one is free and allocates otherwise.

    Attributes:
        in_use: slabs currently checked out (leak tripwire — must
            return to its pre-run value after every simulate run).
        high_water: maximum simultaneous checkouts seen.
        checkouts: total checkout calls.
        reuses: checkouts satisfied from the free list.
    """

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        self.page_size = page_size
        self._free: dict = {}        # size -> list of free bytearrays
        self.in_use = 0
        self.high_water = 0
        self.checkouts = 0
        self.reuses = 0

    def checkout(self, pages: int) -> bytearray:
        """A slab of ``pages * page_size`` bytes (contents undefined)."""
        size = pages * self.page_size
        self.checkouts += 1
        self.in_use += 1
        if self.in_use > self.high_water:
            self.high_water = self.in_use
        bin_ = self._free.get(size)
        if bin_:
            self.reuses += 1
            return bin_.pop()
        return bytearray(size)

    def giveback(self, slab: bytearray) -> None:
        """Return a slab to the pool for reuse."""
        self.in_use -= 1
        self._free.setdefault(len(slab), []).append(slab)

    @contextmanager
    def borrow(self, pages: int):
        """``with pool.borrow(n) as slab:`` — checkout with guaranteed
        giveback."""
        slab = self.checkout(pages)
        try:
            yield slab
        finally:
            self.giveback(slab)

    def free_count(self) -> int:
        """Slabs sitting in the free lists."""
        return sum(len(bin_) for bin_ in self._free.values())

    def clear(self) -> None:
        """Drop all pooled slabs (does not affect checked-out ones)."""
        self._free.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PagePool(page_size={self.page_size}, in_use={self.in_use}, "
                f"free={self.free_count()}, high_water={self.high_water})")


POOL = PagePool()
"""Process-wide pool shared by the array layers' batched write paths."""
