"""Fixed-size pages, XOR algebra, and parity-page headers.

The unit of I/O throughout the library is a *page* of :data:`PAGE_SIZE`
bytes, matching the paper's cost unit (the page transfer).  Parity pages
additionally carry a small header used by the twin-page scheme of
Section 4.2 of the paper:

* a **timestamp** that orders the two parity twins (algorithm
  ``Current_Parity``, Figure 7),
* the **transaction id** of the updater while the twin is *working*,
* the **index of the dirty data page** within the parity group (so crash
  recovery knows which page to reconstruct), and
* the twin **state** (committed / obsolete / working / invalid,
  Figure 8).

Headers pack to :data:`HEADER_SIZE` bytes with :func:`pack_header` /
:func:`unpack_header`; the simulated disks store them out-of-band next to
the page payload so that parity XOR stays a whole-page operation (a real
implementation would reserve the first bytes of the parity sector; the
separation only simplifies the simulation and is noted in DESIGN.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from enum import Enum

from . import kernels as _kernels

PAGE_SIZE = 512
"""Bytes per page.  Small enough to keep full-array tests fast, large
enough that XOR bugs cannot hide in a couple of bytes."""

ZERO_PAGE = bytes(PAGE_SIZE)
"""The all-zero page: parity identity element and initial disk contents."""

HEADER_SIZE = 28
"""Packed size of :class:`ParityHeader` (struct ``<qqiiI``)."""

_HEADER_STRUCT = struct.Struct("<qqiiI")

NO_TXN = -1
"""Sentinel transaction id for headers not owned by any transaction."""

NO_PAGE = -1
"""Sentinel dirty-page index for groups with no unlogged dirty page."""


class TwinState(Enum):
    """Lifecycle of one parity twin (paper Figure 8).

    COMMITTED  holds the parity of the last committed state of the group.
    OBSOLETE   the other twin; its contents are stale.
    WORKING    holds parity reflecting an update by an active transaction.
    INVALID    the updating transaction aborted; contents are meaningless.
    """

    COMMITTED = 0
    OBSOLETE = 1
    WORKING = 2
    INVALID = 3


@dataclass(frozen=True)
class ParityHeader:
    """Metadata carried by each parity twin.

    Attributes:
        timestamp: monotonically increasing stamp; the twin with the
            larger committed timestamp is the current parity.
        txn_id: owner transaction while ``state`` is WORKING, else
            :data:`NO_TXN`.
        dirty_page_index: index (0..N-1) within the parity group of the
            single page written back without UNDO logging, else
            :data:`NO_PAGE`.
        state: the :class:`TwinState` of this twin.
    """

    timestamp: int = 0
    txn_id: int = NO_TXN
    dirty_page_index: int = NO_PAGE
    state: TwinState = TwinState.OBSOLETE

    def with_(self, **changes) -> "ParityHeader":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def pack_header(header: ParityHeader) -> bytes:
    """Serialize a :class:`ParityHeader` to :data:`HEADER_SIZE` bytes."""
    return _HEADER_STRUCT.pack(
        header.timestamp,
        header.txn_id,
        header.dirty_page_index,
        header.state.value,
        0xDBA5C0DE,
    )


def unpack_header(blob: bytes) -> ParityHeader:
    """Deserialize bytes produced by :func:`pack_header`.

    Raises:
        ValueError: if the magic trailer is wrong or the blob is short.
    """
    if len(blob) != HEADER_SIZE:
        raise ValueError(f"parity header must be {HEADER_SIZE} bytes, got {len(blob)}")
    timestamp, txn_id, dirty_index, state_value, magic = _HEADER_STRUCT.unpack(blob)
    if magic != 0xDBA5C0DE:
        raise ValueError("bad parity-header magic; header corrupt")
    return ParityHeader(
        timestamp=timestamp,
        txn_id=txn_id,
        dirty_page_index=dirty_index,
        state=TwinState(state_value),
    )


def xor_pages(*pages: bytes) -> bytes:
    """XOR any number of pages together.

    With zero arguments this returns the zero page (the XOR identity),
    which makes parity computation over an empty set well defined.

    The reduction happens in one batched kernel call (see
    :mod:`repro.storage.kernels`), so a k-page rebuild accumulation
    costs one vector op, not k-1 pairwise passes.

    Raises:
        ValueError: if any operand is not exactly :data:`PAGE_SIZE` bytes.
    """
    for page in pages:
        if len(page) != PAGE_SIZE:
            raise ValueError(f"xor_pages operand has {len(page)} bytes, want {PAGE_SIZE}")
    if not pages:
        return ZERO_PAGE
    return _kernels.get_kernel().xor_accumulate(pages, PAGE_SIZE)


def xor_into(accumulator: bytearray, page: bytes) -> None:
    """XOR ``page`` into ``accumulator`` in place (hot path for rebuilds)."""
    if len(page) != PAGE_SIZE or len(accumulator) != PAGE_SIZE:
        raise ValueError("xor_into operands must be full pages")
    _kernels.get_kernel().xor_inplace(accumulator, page)


def xor_blocks(a, b) -> bytes:
    """XOR two equal-length multi-page blobs in one kernel call.

    The commit-window batching primitive: a window's K old images and K
    new images are laid side by side in pooled slabs (see
    :mod:`repro.storage.pagebuf`) and all K per-page deltas come back
    from a single vector op.  Operands may be ``bytes``, ``bytearray``
    or ``memoryview``; the length must be a whole number of pages.

    Raises:
        ValueError: on length mismatch or a partial-page length.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError(f"xor_blocks operands differ: {n} vs {len(b)} bytes")
    if n % PAGE_SIZE:
        raise ValueError(f"xor_blocks length {n} is not a whole number of pages")
    return _kernels.get_kernel().xor_blocks(a, b)


def make_page(fill: bytes | str | int = b"") -> bytes:
    """Build a :data:`PAGE_SIZE` page from a short fill pattern.

    Accepts bytes, a str (UTF-8 encoded), or a single int byte value.
    The pattern is repeated to fill the page; an empty pattern yields the
    zero page.  Intended for tests and examples.
    """
    if isinstance(fill, int):
        if not 0 <= fill <= 255:
            raise ValueError("int fill must be a byte value 0..255")
        return bytes([fill]) * PAGE_SIZE
    if isinstance(fill, str):
        fill = fill.encode("utf-8")
    if not fill:
        return ZERO_PAGE
    reps = -(-PAGE_SIZE // len(fill))
    return (fill * reps)[:PAGE_SIZE]


def compute_parity(data_pages: list) -> bytes:
    """Parity of a whole group: XOR of all its data pages."""
    return xor_pages(*data_pages)


def reconstruct_before_image(working_parity: bytes, committed_parity: bytes,
                             new_data: bytes) -> bytes:
    """The paper's undo identity:  D_old = (P ⊕ P') ⊕ D_new.

    ``working_parity`` is the twin reflecting the uncommitted update and
    ``committed_parity`` the twin holding the last committed parity of the
    group.  Because the working parity was derived from the committed one
    by XORing out the old data and XORing in the new, their XOR is exactly
    ``D_old ⊕ D_new``; XORing the new data recovers the before-image.
    """
    return xor_pages(working_parity, committed_parity, new_data)
