"""The REDO-only recovery class end to end.

Covers the fifth recovery class on both presets: the pure page-mode
class (``page-noforce-redo``, no steals at all) and the RDA+REDO
hybrid (``record-noforce-rda-redo``, twin-covered steals with
**un-steal** instead of promotion).  The invariants under test:

* no undo is ever logged — per-page chains hold committed work only;
* the write-behind gate keeps uncommitted data off the disk (pure
  class) or behind a parity twin (hybrid);
* the durable page marker advances on *every* committed write-back
  path — per-page and batched — and bounds both restart replay and
  chain-walk trimming;
* a latent sector repair schedules single-page recovery: the page's
  retained chain is replayed even though its marker said up-to-date;
* the exhaustive crash-point fault sweep (clean / torn / latent)
  recovers at every point once buffer pressure puts data writes into
  the schedule.
"""

import pytest

from repro.db import Database, preset, verify_database
from repro.db.slotted_page import SlottedPage
from repro.errors import BufferFullError, RecoveryError
from repro.sim import (default_fault_workload, record_fault_setup,
                       record_fault_workload, run_sweep)
from repro.storage import make_page
from repro.storage.page import ZERO_PAGE
from repro.wal.records import CheckpointRecord

SIZES = dict(group_size=5, num_groups=12, buffer_capacity=8)


def pure_db(**overrides):
    config = dict(SIZES, **overrides)
    return Database(preset("page-noforce-redo", **config))


def hybrid_db(**overrides):
    """A seeded hybrid database: every page holds ``b"seed"`` in slot 0,
    committed group by group so seeding survives a small buffer."""
    config = dict(SIZES, **overrides)
    db = Database(preset("record-noforce-rda-redo", **config))
    db.format_record_pages(range(db.num_data_pages))
    geometry = db.array.geometry
    for group in range(db.config.num_groups):
        txn = db.begin()
        for page in geometry.group_pages(group):
            db.insert_record(txn, page, b"seed")
        db.commit(txn)
    db.checkpoint()
    return db


def slot0(page_bytes: bytes) -> bytes:
    return SlottedPage.from_bytes(page_bytes).read(0)


class TestPureClass:
    def test_commit_crash_recover(self):
        db = pure_db()
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"durable"))
        db.commit(txn)
        db.crash()
        stats = db.recover()
        assert stats["log_undo_applied"] == 0       # REDO-only: no undo
        t = db.begin()
        assert db.read_page(t, 0) == make_page(b"durable")
        assert verify_database(db) == []

    def test_uncommitted_data_never_reaches_disk(self):
        db = pure_db()
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"volatile"))
        db.buffer.flush_all_dirty()                 # the gate holds it
        assert db.disk_page(0) == ZERO_PAGE
        db.crash()
        db.recover()
        t = db.begin()
        assert db.read_page(t, 0) == ZERO_PAGE

    def test_no_chained_records_for_losers(self):
        """Chains hold committed work only: an aborted transaction
        leaves at most an abort record, never redo entries."""
        db = pure_db()
        txn = db.begin()
        db.write_page(txn, 3, make_page(b"doomed"))
        db.abort(txn)
        assert [r for r in db.redo_log.records()
                if r.txn_id == txn and r.page_chained] == []

    def test_gate_fills_the_buffer_rather_than_steal(self):
        db = pure_db(buffer_capacity=4)
        txn = db.begin()
        for page in range(4):
            db.write_page(txn, page, make_page(b"held"))
        with pytest.raises(BufferFullError):
            db.write_page(txn, 4, make_page(b"one too many"))

    def test_steal_undo_request_is_a_bug(self):
        db = pure_db()
        with pytest.raises(RecoveryError):
            db.policy.logging.append_steal_undo(db, 1, 0)

    def test_durable_marker_advances_and_survives_crash(self):
        db = pure_db()
        txn = db.begin()
        db.write_page(txn, 0, make_page(b"v1"))
        db.commit(txn)
        db.checkpoint()                             # committed write-back
        head = db.redo_log.page_chain_head(0)
        assert db._durable_page_lsn[0] == head
        db.crash()
        assert db._durable_page_lsn[0] == head      # it models on-disk state
        stats = db.recover()
        assert stats["redo_applied"] == 0           # nothing past the marker


class TestHybrid:
    def steal_page0(self, db):
        """Dirty page 0 under one transaction, then flood other groups
        so the pool steals it through the parity twins."""
        owner = db.begin()
        db.update_record(owner, 0, 0, b"stolen")
        flood = db.begin()
        geometry = db.array.geometry
        for group in (2, 3, 4):
            for page in geometry.group_pages(group)[:2]:
                db.update_record(flood, page, 0, b"flood")
        db.commit(flood)
        return owner

    def test_commit_crash_recover(self):
        db = hybrid_db()
        txn = db.begin()
        db.update_record(txn, 0, 0, b"final")
        db.commit(txn)
        db.crash()
        stats = db.recover()
        assert stats["log_undo_applied"] == 0
        t = db.begin()
        assert db.read_record(t, 0, 0) == b"final"
        assert verify_database(db) == []

    def test_covered_steal_and_abort_rewind(self):
        db = hybrid_db(buffer_capacity=5)
        owner = self.steal_page0(db)
        assert db.rda.dirty_set.is_dirty(0)         # page 0's group
        assert slot0(db.disk_page(0)) == b"stolen"
        db.abort(owner)                             # twins rewind the disk
        assert slot0(db.disk_page(0)) == b"seed"
        assert not db.rda.dirty_set.is_dirty(0)
        assert verify_database(db) == []

    def test_unsteal_on_page_sharing(self):
        db = hybrid_db(buffer_capacity=5)
        owner = self.steal_page0(db)
        sharer = db.begin()
        db.insert_record(sharer, 0, b"also here")   # second modifier
        assert db.counters.promotions >= 1          # un-stolen, not logged
        assert slot0(db.disk_page(0)) == b"seed"    # disk rewound
        assert not db.rda.dirty_set.is_dirty(0)
        db.commit(owner)
        db.commit(sharer)
        db.crash()
        db.recover()
        t = db.begin()
        assert db.read_record(t, 0, 0) == b"stolen"
        assert verify_database(db) == []

    def test_batched_writeback_advances_marker(self):
        """Regression: the batched RDA write-back path must advance the
        durable page marker exactly like the per-page path, or trim
        never frees the chains and restart replays them forever."""
        db = hybrid_db()
        txn = db.begin()
        pages = [0, 5, 10]
        for page in pages:
            db.update_record(txn, page, 0, b"batched")
        db.commit(txn)
        db.checkpoint()                 # flush_all_dirty -> write_back_run
        for page in pages:
            assert db._durable_page_lsn[page] == \
                db.redo_log.page_chain_head(page)
        db.crash()
        stats = db.recover()
        assert stats["redo_applied"] == 0

    def test_trim_drops_reflected_chains(self):
        db = hybrid_db()
        txn = db.begin()
        db.update_record(txn, 0, 0, b"v2")
        db.commit(txn)
        db.checkpoint()                 # marker catches up to the head
        assert db.trim_log() > 0
        db.crash()
        db.recover()
        t = db.begin()
        assert db.read_record(t, 0, 0) == b"v2"
        assert verify_database(db) == []

    def test_trim_retains_unreflected_chains(self):
        """A committed chain whose page has not reached disk yet must
        survive trimming — it is the only copy of the committed data."""
        db = hybrid_db()
        txn = db.begin()
        db.update_record(txn, 0, 0, b"log only")
        db.commit(txn)                  # ¬FORCE: page still dirty
        head = db.redo_log.page_chain_head(0)
        checkpoints = [r.lsn for r in db.redo_log.scan(CheckpointRecord)]
        if checkpoints and min(checkpoints) > head:
            db.trim_log()
            assert db.redo_log.base_lsn <= head
        db.crash()
        db.recover()
        t = db.begin()
        assert db.read_record(t, 0, 0) == b"log only"


class TestSinglePageRecovery:
    @pytest.mark.parametrize("name", ["page-noforce-redo",
                                      "record-noforce-rda-redo"])
    def test_latent_sector_replays_the_chain(self, name):
        if name == "record-noforce-rda-redo":
            db = hybrid_db()
            txn = db.begin()
            db.update_record(txn, 0, 0, b"repairme")
            db.commit(txn)
        else:
            db = pure_db()
            txn = db.begin()
            db.write_page(txn, 0, make_page(b"repairme"))
            db.commit(txn)
        db.checkpoint()                 # page durable, marker at head
        addr = db.array.geometry.data_address(0)
        db.array.disks[addr.disk].corrupt(addr.slot)
        db.crash()
        stats = db.recover()
        assert stats["sectors_repaired"] == 1
        # the repair popped the marker, so restart replayed the page's
        # retained chain even though the marker had said "up to date"
        assert stats["redo_applied"] >= 1
        t = db.begin()
        if db.config.record_logging:
            assert db.read_record(t, 0, 0) == b"repairme"
        else:
            assert db.read_page(t, 0) == make_page(b"repairme")
        assert verify_database(db) == []


class TestFaultSweeps:
    """Exhaustive crash points under buffer pressure, so the schedule
    contains data writes (a pressureless REDO-only run is log-only)."""

    def test_pure_class_sweep_clean(self):
        def factory():
            return Database(preset("page-noforce-redo", group_size=4,
                                   num_groups=8, buffer_capacity=4,
                                   checkpoint_interval=2))
        ops = default_fault_workload(transactions=3, group_size=4)
        report = run_sweep(factory, ops)
        assert any(w.kind == "data" for w in report.schedule)
        assert report.clean, [str(v) for v in report.violations]
        assert report.counts["recovered"] == len(report.results)

    def test_hybrid_sweep_clean(self):
        def factory():
            return Database(preset("record-noforce-rda-redo", group_size=4,
                                   num_groups=10, buffer_capacity=4,
                                   checkpoint_interval=6))
        ops = record_fault_workload(transactions=3, group_size=4)
        report = run_sweep(factory, ops, setup=record_fault_setup(ops))
        assert any(w.kind == "data" for w in report.schedule)
        assert report.clean, [str(v) for v in report.violations]
        assert report.counts["recovered"] == len(report.results)
